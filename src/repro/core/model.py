"""Facade tying the GPRS Markov model together.

:class:`GprsMarkovModel` drives the complete analysis pipeline of the paper for
one parameter configuration:

1. balance the incoming handover flows with the Erlang-loss fixed point
   (Eqs. (4)-(5)),
2. assemble the sparse generator matrix from the transition rules of Table 1,
3. solve ``pi Q = 0`` numerically,
4. evaluate the performance measures of Eqs. (6)-(11).

The intermediate artefacts (state space, generator, stationary distribution,
handover rates) remain accessible for inspection, testing and the ablation
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.generator import build_generator
from repro.core.handover import HandoverBalance, balance_handover_rates
from repro.core.measures import GprsPerformanceMeasures, compute_measures
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.template import GeneratorTemplate
from repro.markov.solvers import SolverError, SteadyStateResult, solve_steady_state
from repro.obs.metrics import current_registry
from repro.obs.trace import current_tracer

__all__ = ["GprsMarkovModel", "GprsModelSolution", "build_solver_scaffold"]


@dataclass(frozen=True)
class GprsModelSolution:
    """Complete solution of the model for one parameter configuration.

    Attributes
    ----------
    parameters:
        The configuration that was solved.
    measures:
        All performance measures of Eqs. (6)-(11).
    handover:
        The balanced handover rates.
    steady_state:
        Metadata of the numerical solution (method, iterations, residual); the
        stationary vector itself is ``steady_state.distribution``.
    """

    parameters: GprsModelParameters
    measures: GprsPerformanceMeasures
    handover: HandoverBalance
    steady_state: SteadyStateResult


def build_solver_scaffold(
    params: GprsModelParameters,
    solver: str = "auto",
    space: GprsStateSpace | None = None,
) -> tuple[GprsStateSpace, GeneratorTemplate, object | None]:
    """Build the reusable ``(space, template, context)`` triple of one shape.

    This is the scaffolding that warm sweeps share across points (and the
    network layer across cells and outer iterations): the enumerated state
    space, the frozen generator template, and -- only when ``solver`` will
    actually resolve to the structured solver -- the
    :class:`~repro.core.structured_solver.StructuredSolveContext` (generic and
    direct solves would ignore it).  Centralised here so the auto-threshold
    rule can never diverge between consumers.
    """
    if space is None:
        space = GprsStateSpace(
            gsm_channels=params.gsm_channels,
            buffer_size=params.buffer_size,
            max_sessions=params.max_gprs_sessions,
        )
    template = GeneratorTemplate.build(params, space)
    context = None
    if solver == "structured" or (
        solver == "auto" and space.size > GprsMarkovModel._STRUCTURED_THRESHOLD
    ):
        from repro.core.structured_solver import StructuredSolveContext

        context = StructuredSolveContext.build(params, space)
    return space, template, context


class GprsMarkovModel:
    """The continuous-time Markov chain model of one GPRS cell.

    Parameters
    ----------
    parameters:
        Full model configuration (see :class:`~repro.core.parameters.GprsModelParameters`).
    solver_method:
        Steady-state solver.  ``"structured"`` uses the fibre/phase iteration
        of :mod:`repro.core.structured_solver` which exploits the GPRS chain
        structure and scales to the full paper-size state spaces;
        ``"gth"``, ``"direct"``, ``"power"`` and ``"gauss-seidel"`` use the
        generic solvers of :mod:`repro.markov.solvers`.  ``"auto"`` picks the
        generic direct solver for small chains and the structured solver for
        large ones (falling back to the generic path if the structured
        iteration fails to converge).
    solver_tol:
        Convergence tolerance of iterative solvers.
    initial_distribution:
        Optional warm-start guess for the stationary vector (flat state
        ordering), typically the solution of an adjacent point of an
        arrival-rate sweep, or a ``(j, n)`` stack of several previous
        solutions (most recent last) from which the structured solver builds
        a residual-minimising extrapolated seed.  Iterative solvers start
        from it instead of the cold seed; if the warm solve fails to
        converge the model automatically retries cold, so a stale guess can
        cost time but never correctness.  Direct solvers ignore it.
    initial_handover_rates:
        Optional ``(gsm, gprs)`` seed for the handover-balance fixed point
        (or a :class:`~repro.core.handover.HandoverBalance` to copy the rates
        from); the balanced result is identical up to the fixed-point
        tolerance but reached in fewer iterations.
    generator_template:
        Optional prebuilt :class:`~repro.core.template.GeneratorTemplate`
        sharing this configuration's fixed part; the generator is then
        produced by rewriting the template's ``data`` array instead of
        re-enumerating and re-sorting all transitions.
    state_space:
        Optional pre-enumerated state space matching the configuration
        (shared across the points of a sweep).
    structured_context:
        Optional
        :class:`~repro.core.structured_solver.StructuredSolveContext` shared
        across the points of a sweep; caches the arrival-rate-independent
        scaffolding (rate grids, fibre couplings, phase-chain pattern) of the
        structured solver.
    fixed_handover_balance:
        Optional externally imposed handover rates (typically
        :meth:`HandoverBalance.pinned`).  When given, the Erlang-loss
        balancing of Eqs. (4)-(5) is skipped entirely and the supplied
        incoming rates feed the generator and the measures directly -- this
        is the seam through which :class:`~repro.network.NetworkModel`
        couples cells by their actual neighbour flows instead of the
        homogeneity assumption.  Mutually exclusive with
        ``initial_handover_rates``.

    Example
    -------
    >>> from repro import GprsMarkovModel, GprsModelParameters, traffic_model
    >>> params = GprsModelParameters.from_traffic_model(
    ...     traffic_model(3), total_call_arrival_rate=0.5, buffer_size=20)
    >>> solution = GprsMarkovModel(params).solve()
    >>> 0.0 <= solution.measures.packet_loss_probability <= 1.0
    True
    """

    def __init__(
        self,
        parameters: GprsModelParameters,
        *,
        solver_method: str = "auto",
        solver_tol: float = 1e-10,
        initial_distribution: np.ndarray | None = None,
        initial_handover_rates: HandoverBalance | tuple[float, float] | None = None,
        generator_template: GeneratorTemplate | None = None,
        state_space: GprsStateSpace | None = None,
        structured_context=None,
        fixed_handover_balance: HandoverBalance | None = None,
    ) -> None:
        self._parameters = parameters
        self._solver_method = solver_method
        self._solver_tol = solver_tol
        if fixed_handover_balance is not None and initial_handover_rates is not None:
            raise ValueError(
                "fixed_handover_balance pins the rates; a balance seed "
                "(initial_handover_rates) cannot apply at the same time"
            )
        self._handover: HandoverBalance | None = fixed_handover_balance
        self._generator: sp.csr_matrix | None = None
        self._steady_state: SteadyStateResult | None = None
        self._warm_start_used = False

        self._initial_distribution = (
            None
            if initial_distribution is None
            else np.asarray(initial_distribution, dtype=float)
        )
        if isinstance(initial_handover_rates, HandoverBalance):
            initial_handover_rates = (
                initial_handover_rates.gsm_handover_arrival_rate,
                initial_handover_rates.gprs_handover_arrival_rate,
            )
        self._initial_handover_rates = initial_handover_rates

        if state_space is not None and (
            state_space.gsm_channels != parameters.gsm_channels
            or state_space.buffer_size != parameters.buffer_size
            or state_space.max_sessions != parameters.max_gprs_sessions
        ):
            raise ValueError("state_space does not match the parameters")
        self._space = state_space
        if generator_template is not None and not generator_template.matches(parameters):
            raise ValueError("generator_template does not match the parameters")
        self._template = generator_template
        if self._space is None and generator_template is not None:
            self._space = generator_template.space
        self._structured_context = structured_context

    # ------------------------------------------------------------------ #
    # Accessors for intermediate artefacts
    # ------------------------------------------------------------------ #
    @property
    def parameters(self) -> GprsModelParameters:
        return self._parameters

    @property
    def state_space(self) -> GprsStateSpace:
        """The enumerated state space (built on first access)."""
        if self._space is None:
            self._space = GprsStateSpace(
                gsm_channels=self._parameters.gsm_channels,
                buffer_size=self._parameters.buffer_size,
                max_sessions=self._parameters.max_gprs_sessions,
            )
        return self._space

    @property
    def handover_balance(self) -> HandoverBalance:
        """The balanced handover rates (computed on first access)."""
        if self._handover is None:
            if self._initial_handover_rates is not None:
                gsm_seed, gprs_seed = self._initial_handover_rates
            else:
                gsm_seed = gprs_seed = None
            self._handover = balance_handover_rates(
                self._parameters,
                initial_gsm_handover_rate=gsm_seed,
                initial_gprs_handover_rate=gprs_seed,
            )
        return self._handover

    @property
    def generator(self) -> sp.csr_matrix:
        """The sparse generator matrix ``Q`` (assembled on first access).

        With a :class:`~repro.core.template.GeneratorTemplate` attached the
        matrix is produced by rewriting the template's frozen CSR layout;
        otherwise the transitions are enumerated and assembled from scratch.
        """
        if self._generator is None:
            handover = self.handover_balance
            if self._template is not None:
                self._generator = self._template.generator(
                    self._parameters,
                    gsm_handover_arrival_rate=handover.gsm_handover_arrival_rate,
                    gprs_handover_arrival_rate=handover.gprs_handover_arrival_rate,
                )
            else:
                self._generator, self._space = build_generator(
                    self._parameters,
                    self.state_space,
                    gsm_handover_arrival_rate=handover.gsm_handover_arrival_rate,
                    gprs_handover_arrival_rate=handover.gprs_handover_arrival_rate,
                )
        return self._generator

    @property
    def number_of_states(self) -> int:
        return self.state_space.size

    def stationary_distribution(self) -> np.ndarray:
        """Return the stationary probability vector of the chain."""
        return self._solve_steady_state().distribution

    #: State-space size above which ``"auto"`` switches to the structured solver.
    _STRUCTURED_THRESHOLD = 4000

    def _solve_steady_state(self) -> SteadyStateResult:
        if self._steady_state is not None:
            return self._steady_state
        with current_tracer().span(
            "model.steady_state", states=self.state_space.size
        ):
            result = self._solve_steady_state_uncached()
        registry = current_registry()
        registry.count("model.solves")
        registry.count(
            "model.warm_solves" if self._warm_start_used else "model.cold_solves"
        )
        registry.count("solver.iterations", result.iterations)
        return result

    def _solve_steady_state_uncached(self) -> SteadyStateResult:
        method = self._solver_method
        if method == "auto":
            method = (
                "structured"
                if self.state_space.size > self._STRUCTURED_THRESHOLD
                else "generic-auto"
            )

        initial = self._initial_distribution
        if method == "structured":
            try:
                self._steady_state = self._solve_structured(initial)
                self._warm_start_used = initial is not None
            except SolverError:
                # A degraded warm start must never cost correctness: retry the
                # same solver cold before considering the generic fallback.
                if initial is not None:
                    try:
                        self._steady_state = self._solve_structured(None)
                        return self._steady_state
                    except SolverError:
                        pass
                if self._solver_method != "auto":
                    raise
                self._steady_state = solve_steady_state(
                    self.generator, method="auto", tol=self._solver_tol
                )
        else:
            resolved = "auto" if method == "generic-auto" else method
            if initial is not None and initial.ndim == 2:
                # Generic solvers take a single seed; use the newest solution.
                initial = initial[-1]
            try:
                self._steady_state = solve_steady_state(
                    self.generator,
                    method=resolved,
                    tol=self._solver_tol,
                    initial=initial,
                )
                # GTH/direct elimination ignores seeds entirely -- such a
                # solve is cold no matter what it was handed.
                self._warm_start_used = (
                    initial is not None
                    and self._steady_state.method not in ("gth", "direct")
                )
            except SolverError:
                if initial is None:
                    raise
                self._steady_state = solve_steady_state(
                    self.generator, method=resolved, tol=self._solver_tol
                )
        return self._steady_state

    @property
    def warm_start_used(self) -> bool:
        """Whether the result actually came from a warm-seeded solve.

        ``False`` until :meth:`solve` runs, when a degraded warm start failed
        and the automatic cold retry produced the result, and when the
        resolved solver is a direct method (GTH / sparse LU) that ignores
        seeds -- so warm-start accounting (e.g. the network layer's
        ``cold_solves``) never counts a silently-cold solve as warm.
        """
        return self._warm_start_used

    def _solve_structured(self, initial: np.ndarray | None) -> SteadyStateResult:
        from repro.core.structured_solver import solve_structured

        handover = self.handover_balance
        return solve_structured(
            self._parameters,
            self.state_space,
            self.generator,
            gsm_handover_arrival_rate=handover.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=handover.gprs_handover_arrival_rate,
            tol=max(self._solver_tol, 1e-14),
            initial=initial,
            context=self._structured_context,
        )

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def solve(self) -> GprsModelSolution:
        """Run the full analysis pipeline and return measures plus diagnostics."""
        steady_state = self._solve_steady_state()
        measures = compute_measures(
            self._parameters, self.state_space, steady_state.distribution, self.handover_balance
        )
        return GprsModelSolution(
            parameters=self._parameters,
            measures=measures,
            handover=self.handover_balance,
            steady_state=steady_state,
        )

    def measures(self) -> GprsPerformanceMeasures:
        """Convenience wrapper returning only the performance measures."""
        return self.solve().measures
