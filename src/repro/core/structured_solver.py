"""Structure-exploiting steady-state solver for the GPRS chain.

Generic sparse LU factorisation suffers severe fill-in on the GPRS chain
because its transition graph is a four-dimensional lattice.  This module
implements a solver that exploits two structural properties of the model
instead:

1. **The phase process is autonomous.**  The components ``(n, m, r)`` (GSM
   calls, GPRS sessions, sessions in the off state) evolve with rates that do
   not depend on the buffer occupancy ``k``.  Their marginal stationary
   distribution is therefore the stationary distribution of the much smaller
   *phase chain* (at most a few thousand states), which is solved exactly
   once.

2. **For a fixed phase, the buffer occupancy is a birth--death fibre.**
   Packet arrivals and services only move ``k`` by one and never change the
   phase, so conditioned on the cross-phase inflows the balance equations of
   one phase form a tridiagonal system of size ``K + 1`` that the Thomas
   algorithm solves in ``O(K)``.

The solver iterates block-Jacobi sweeps over all phase fibres (vectorised over
phases, so one sweep costs a handful of numpy operations on ``(K+1, B)``
arrays) and, after every sweep, rescales each fibre so that its mass matches
the exact phase marginal (an aggregation/disaggregation step).  Convergence is
measured by the residual of the full balance equations, so the result is the
stationary distribution of the complete chain, not an approximation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.markov.solvers import SolverError, SteadyStateResult, solve_steady_state
from repro.traffic.units import MAX_TIME_SLOTS_PER_STATION

__all__ = ["solve_structured", "build_phase_generator"]


def _phase_arrays(params: GprsModelParameters, space: GprsStateSpace):
    """Return per-phase arrays (n, m, r) in phase order ``phi = n * P + p``."""
    pair_count = (space.max_sessions + 1) * (space.max_sessions + 2) // 2
    phases = (space.gsm_channels + 1) * pair_count
    pair_m = np.empty(pair_count, dtype=np.int64)
    pair_r = np.empty(pair_count, dtype=np.int64)
    position = 0
    for m in range(space.max_sessions + 1):
        count = m + 1
        pair_m[position : position + count] = m
        pair_r[position : position + count] = np.arange(count)
        position += count
    n = np.repeat(np.arange(space.gsm_channels + 1), pair_count)
    m = np.tile(pair_m, space.gsm_channels + 1)
    r = np.tile(pair_r, space.gsm_channels + 1)
    return phases, pair_count, n, m, r


def build_phase_generator(
    params: GprsModelParameters,
    space: GprsStateSpace,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
) -> sp.csr_matrix:
    """Return the generator of the autonomous phase chain ``(n, m, r)``.

    The phase chain contains every transition of Table 1 that does not involve
    the buffer occupancy: GSM/GPRS arrivals and departures (including
    handovers) and the on/off switches of the aggregated traffic source.
    """
    phases, pair_count, n, m, r = _phase_arrays(params, space)
    index = np.arange(phases, dtype=np.int64)

    gsm_arrival = params.gsm_arrival_rate + gsm_handover_arrival_rate
    gprs_arrival = params.gprs_arrival_rate + gprs_handover_arrival_rate
    gsm_departure = params.gsm_completion_rate + params.gsm_handover_departure_rate
    gprs_departure = params.gprs_completion_rate + params.gprs_handover_departure_rate
    start_on = params.probability_session_starts_on

    sessions = np.arange(space.max_sessions + 1, dtype=np.int64)
    pair_offset = sessions * (sessions + 1) // 2  # offset[m] = m(m+1)/2

    def phase_index(n_new, m_new, r_new):
        return n_new * pair_count + pair_offset[m_new] + r_new

    rows, cols, values = [], [], []

    def add(mask, target, rate):
        rate = np.broadcast_to(np.asarray(rate, dtype=float), mask.shape)
        keep = mask & (rate > 0)
        rows.append(index[keep])
        cols.append(target[keep])
        values.append(rate[keep])

    # GSM arrivals / departures.
    mask = n < space.gsm_channels
    add(mask, phase_index(np.minimum(n + 1, space.gsm_channels), m, r), gsm_arrival)
    mask = n > 0
    add(mask, phase_index(np.maximum(n - 1, 0), m, r), n * gsm_departure)
    # GPRS session arrivals (starting on or off).
    mask = m < space.max_sessions
    m_next = np.minimum(m + 1, space.max_sessions)
    add(mask, phase_index(n, m_next, np.minimum(r, m_next)), start_on * gprs_arrival)
    add(mask, phase_index(n, m_next, np.minimum(r + 1, m_next)), (1 - start_on) * gprs_arrival)
    # GPRS session departures (leaving session off / on).
    m_prev = np.maximum(m - 1, 0)
    mask = (m > 0) & (r > 0)
    add(mask, phase_index(n, m_prev, np.maximum(r - 1, 0)), r * gprs_departure)
    mask = (m > 0) & (r < m)
    add(mask, phase_index(n, m_prev, np.minimum(r, m_prev)), (m - r) * gprs_departure)
    # Aggregated source switches.
    mask = r < m
    add(mask, phase_index(n, m, np.minimum(r + 1, m)), (m - r) * params.on_to_off_rate)
    mask = r > 0
    add(mask, phase_index(n, m, np.maximum(r - 1, 0)), r * params.off_to_on_rate)

    row = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    col = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
    data = np.concatenate(values) if values else np.empty(0, dtype=float)
    off_diagonal = sp.coo_matrix((data, (row, col)), shape=(phases, phases)).tocsr()
    off_diagonal.sum_duplicates()
    exit_rates = np.asarray(off_diagonal.sum(axis=1)).ravel()
    return (off_diagonal - sp.diags(exit_rates)).tocsr()


def _rate_grids(params: GprsModelParameters, space: GprsStateSpace):
    """Return arrival, service and TCP-capped arrival rates on the (K+1, B) grid.

    The grid is indexed ``[k, phi]`` with ``phi = n * P + p`` matching
    :func:`build_phase_generator`.
    """
    phases, pair_count, n, m, r = _phase_arrays(params, space)
    levels = space.buffer_size + 1
    k = np.arange(levels)[:, None]

    free_channels = params.number_of_channels - n[None, :]
    capacity = np.minimum(free_channels, MAX_TIME_SLOTS_PER_STATION * k)
    service = capacity * params.pdch_service_rate

    uncontrolled = ((m - r) * params.packet_rate)[None, :] * np.ones((levels, 1))
    throttled = np.minimum(uncontrolled, service)
    above = (np.arange(levels) > params.tcp_threshold_packets)[:, None]
    offered = np.where(above, throttled, uncontrolled)
    # No arrival transition out of the full buffer (offered packets are lost).
    arrival = offered.copy()
    arrival[-1, :] = 0.0
    return arrival, service, offered


def _thomas_solve_batched(sub, diag, sup, rhs):
    """Solve independent tridiagonal systems ``T x = rhs`` batched over columns.

    All arguments have shape ``(K+1, B)``: ``sub[k]`` is the coefficient of
    ``x[k-1]`` in equation ``k``, ``diag[k]`` of ``x[k]`` and ``sup[k]`` of
    ``x[k+1]``.  The forward elimination runs over ``K+1`` levels with pure
    numpy operations over the ``B`` fibres.
    """
    levels = diag.shape[0]
    c_prime = np.zeros_like(diag)
    d_prime = np.zeros_like(diag)
    # Guard against exactly singular pivots (isolated degenerate fibres).
    def _safe(x):
        tiny = 1e-300
        return np.where(np.abs(x) < tiny, np.where(x < 0, -tiny, tiny), x)

    pivot = _safe(diag[0])
    c_prime[0] = sup[0] / pivot
    d_prime[0] = rhs[0] / pivot
    for k in range(1, levels):
        pivot = _safe(diag[k] - sub[k] * c_prime[k - 1])
        if k < levels - 1:
            c_prime[k] = sup[k] / pivot
        d_prime[k] = (rhs[k] - sub[k] * d_prime[k - 1]) / pivot
    x = np.zeros_like(diag)
    x[-1] = d_prime[-1]
    for k in range(levels - 2, -1, -1):
        x[k] = d_prime[k] - c_prime[k] * x[k + 1]
    return x


def solve_structured(
    params: GprsModelParameters,
    space: GprsStateSpace,
    generator: sp.csr_matrix,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
    tol: float = 1e-9,
    max_sweeps: int = 5000,
    damping: float = 1.0,
) -> SteadyStateResult:
    """Compute the stationary distribution with the fibre/phase iteration.

    Parameters
    ----------
    params, space:
        Model parameters and the matching state space.
    generator:
        The full generator matrix (used only to measure the residual, which is
        the convergence criterion).
    gsm_handover_arrival_rate, gprs_handover_arrival_rate:
        Balanced handover arrival rates (must match those used to build
        ``generator``).
    tol:
        Convergence threshold on the scaled residual
        ``||pi Q||_inf / max|Q_ii|``.
    max_sweeps:
        Iteration budget; a :class:`~repro.markov.solvers.SolverError` is
        raised when it is exhausted without convergence.
    damping:
        Relaxation factor in ``(0, 1]`` applied to each sweep; values below
        one suppress the oscillatory modes block-Jacobi iterations can exhibit
        on nearly bipartite transition graphs.
    """
    levels = space.buffer_size + 1
    phase_generator = build_phase_generator(
        params,
        space,
        gsm_handover_arrival_rate=gsm_handover_arrival_rate,
        gprs_handover_arrival_rate=gprs_handover_arrival_rate,
    )
    phases = phase_generator.shape[0]
    phase_marginal = solve_steady_state(phase_generator, method="auto").distribution

    arrival, service, _ = _rate_grids(params, space)

    # Off-diagonal phase coupling and total phase-exit rate per phase.
    phase_off = phase_generator.copy()
    phase_off.setdiag(0.0)
    phase_off.eliminate_zeros()
    phase_exit = -phase_generator.diagonal()

    # Total exit rate of every state on the (K+1, B) grid.
    exit_rate = arrival + service + phase_exit[None, :]

    # Tridiagonal coefficients of the fibre systems: equation k couples
    # x[k-1] (inflow via arrival at k-1), x[k] (outflow) and x[k+1] (inflow via
    # service at k+1).
    sub = np.zeros((levels, phases))
    sup = np.zeros((levels, phases))
    sub[1:, :] = arrival[:-1, :]
    sup[:-1, :] = service[1:, :]
    diag = -exit_rate

    # Initial guess: phase marginal spread geometrically towards small k.
    pi = np.tile(phase_marginal[None, :], (levels, 1))
    weights = np.exp(-np.arange(levels, dtype=float))[:, None]
    pi = pi * weights
    pi /= pi.sum()

    # Map the (k, phi) grid onto the flat state ordering of GprsStateSpace:
    # flat index = (n * (K+1) + k) * P + p, i.e. axes (n, k, p).
    pair_count = phases // (space.gsm_channels + 1)

    def to_flat(grid: np.ndarray) -> np.ndarray:
        cube = grid.reshape(levels, space.gsm_channels + 1, pair_count)
        return np.transpose(cube, (1, 0, 2)).reshape(-1)

    scale = float(np.max(np.abs(generator.diagonal()))) or 1.0
    residual = np.inf
    sweeps = 0
    for sweep in range(1, max_sweeps + 1):
        sweeps = sweep
        # Cross-phase inflow (phase transitions do not change k).
        inflow = pi @ phase_off  # (levels, phases)
        updated = _thomas_solve_batched(sub, diag, sup, -inflow)
        updated = np.maximum(updated, 0.0)
        # Aggregation/disaggregation: match the exact phase marginal.
        fibre_mass = updated.sum(axis=0)
        safe_mass = np.where(fibre_mass > 0, fibre_mass, 1.0)
        updated = updated * (phase_marginal / safe_mass)[None, :]
        empty = fibre_mass <= 0
        if np.any(empty):
            updated[0, empty] = phase_marginal[empty]
        total = updated.sum()
        if total <= 0 or not np.isfinite(total):
            raise SolverError("structured solver diverged")
        updated /= total
        if damping != 1.0:
            updated = damping * updated + (1.0 - damping) * pi
            updated /= updated.sum()

        change = float(np.max(np.abs(updated - pi)))
        pi = updated
        if change < tol / 10 or sweep % 10 == 0 or sweep == max_sweeps:
            flat = to_flat(pi)
            residual = float(np.max(np.abs(flat @ generator))) / scale
            if residual < tol:
                break

    flat = to_flat(pi)
    flat = np.maximum(flat, 0.0)
    flat /= flat.sum()
    residual = float(np.max(np.abs(flat @ generator))) / scale
    if residual > max(tol * 50, 1e-6):
        raise SolverError(
            f"structured solver did not converge: scaled residual {residual:.2e} "
            f"after {sweeps} sweeps"
        )
    return SteadyStateResult(flat, "structured", sweeps, residual * scale)
