"""Structure-exploiting steady-state solver for the GPRS chain.

Generic sparse LU factorisation suffers severe fill-in on the GPRS chain
because its transition graph is a four-dimensional lattice.  This module
implements a solver that exploits three structural properties of the model
instead:

1. **The phase process is autonomous.**  The components ``(n, m, r)`` (GSM
   calls, GPRS sessions, sessions in the off state) evolve with rates that do
   not depend on the buffer occupancy ``k``, so their marginal stationary
   distribution is the stationary distribution of the much smaller *phase
   chain*.

2. **The phase chain is a direct product.**  No transition couples the GSM
   component ``n`` with the GPRS component ``(m, r)``, so the phase chain is
   the Kronecker sum of a birth--death chain over ``n`` and a session chain
   over ``(m, r)`` -- its stationary distribution is the Kronecker *product*
   of two tiny marginals, each solved exactly with GTH elimination in
   microseconds instead of a sparse LU solve of the full phase chain.

3. **For a fixed phase, the buffer occupancy is a birth--death fibre.**
   Packet arrivals and services only move ``k`` by one and never change the
   phase, so conditioned on the cross-phase inflows the balance equations of
   one phase form a tridiagonal system of size ``K + 1`` that the Thomas
   algorithm solves in ``O(K)``.  The elimination coefficients depend only on
   the rates, not on the right-hand side, so they are factorised **once** per
   configuration and every sweep performs only the two O(K) substitution
   passes.

The solver iterates block-Jacobi sweeps over all phase fibres (vectorised
over phases, so one sweep costs a handful of numpy operations on ``(K+1, B)``
arrays) and, after every sweep, rescales each fibre so that its mass matches
the exact phase marginal (an aggregation/disaggregation step).  Every few
sweeps a **reduced-rank extrapolation** (RRE) step combines the recent
iterates into a minimal-residual linear combination, which typically removes
the slowly-decaying error modes and cuts the sweep count roughly in half; the
extrapolated iterate is only accepted when it measurably lowers the residual,
so a failed extrapolation can never degrade the solution.  Convergence is
measured by the residual of the full balance equations (evaluated per sweep
directly on the ``(K+1, B)`` grid, where it costs a few vector operations),
so the result is the stationary distribution of the complete chain, not an
approximation.

Arrival-rate sweeps can reuse a :class:`StructuredSolveContext` across
points: it caches everything that does not depend on the swept arrival rate
(the rate grids, the fibre couplings and the frozen sparsity pattern of the
phase chain), mirroring what :class:`~repro.core.template.GeneratorTemplate`
does for the full generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.markov.solvers import (
    SolverError,
    SteadyStateResult,
    solve_steady_state,
    steady_state_gth,
)
from repro.traffic.units import MAX_TIME_SLOTS_PER_STATION

__all__ = ["StructuredSolveContext", "solve_structured", "build_phase_generator"]


def _phase_arrays(params: GprsModelParameters, space: GprsStateSpace):
    """Return per-phase arrays (n, m, r) in phase order ``phi = n * P + p``."""
    pair_count = (space.max_sessions + 1) * (space.max_sessions + 2) // 2
    phases = (space.gsm_channels + 1) * pair_count
    pair_m = np.empty(pair_count, dtype=np.int64)
    pair_r = np.empty(pair_count, dtype=np.int64)
    position = 0
    for m in range(space.max_sessions + 1):
        count = m + 1
        pair_m[position : position + count] = m
        pair_r[position : position + count] = np.arange(count)
        position += count
    n = np.repeat(np.arange(space.gsm_channels + 1), pair_count)
    m = np.tile(pair_m, space.gsm_channels + 1)
    r = np.tile(pair_r, space.gsm_channels + 1)
    return phases, pair_count, n, m, r


def build_phase_generator(
    params: GprsModelParameters,
    space: GprsStateSpace,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
) -> sp.csr_matrix:
    """Return the generator of the autonomous phase chain ``(n, m, r)``.

    The phase chain contains every transition of Table 1 that does not involve
    the buffer occupancy: GSM/GPRS arrivals and departures (including
    handovers) and the on/off switches of the aggregated traffic source.
    """
    phases, pair_count, n, m, r = _phase_arrays(params, space)
    index = np.arange(phases, dtype=np.int64)

    gsm_arrival = params.gsm_arrival_rate + gsm_handover_arrival_rate
    gprs_arrival = params.gprs_arrival_rate + gprs_handover_arrival_rate
    gsm_departure = params.gsm_completion_rate + params.gsm_handover_departure_rate
    gprs_departure = params.gprs_completion_rate + params.gprs_handover_departure_rate
    start_on = params.probability_session_starts_on

    sessions = np.arange(space.max_sessions + 1, dtype=np.int64)
    pair_offset = sessions * (sessions + 1) // 2  # offset[m] = m(m+1)/2

    def phase_index(n_new, m_new, r_new):
        return n_new * pair_count + pair_offset[m_new] + r_new

    rows, cols, values = [], [], []

    def add(mask, target, rate):
        rate = np.broadcast_to(np.asarray(rate, dtype=float), mask.shape)
        keep = mask & (rate > 0)
        rows.append(index[keep])
        cols.append(target[keep])
        values.append(rate[keep])

    # GSM arrivals / departures.
    mask = n < space.gsm_channels
    add(mask, phase_index(np.minimum(n + 1, space.gsm_channels), m, r), gsm_arrival)
    mask = n > 0
    add(mask, phase_index(np.maximum(n - 1, 0), m, r), n * gsm_departure)
    # GPRS session arrivals (starting on or off).
    mask = m < space.max_sessions
    m_next = np.minimum(m + 1, space.max_sessions)
    add(mask, phase_index(n, m_next, np.minimum(r, m_next)), start_on * gprs_arrival)
    add(mask, phase_index(n, m_next, np.minimum(r + 1, m_next)), (1 - start_on) * gprs_arrival)
    # GPRS session departures (leaving session off / on).
    m_prev = np.maximum(m - 1, 0)
    mask = (m > 0) & (r > 0)
    add(mask, phase_index(n, m_prev, np.maximum(r - 1, 0)), r * gprs_departure)
    mask = (m > 0) & (r < m)
    add(mask, phase_index(n, m_prev, np.minimum(r, m_prev)), (m - r) * gprs_departure)
    # Aggregated source switches.
    mask = r < m
    add(mask, phase_index(n, m, np.minimum(r + 1, m)), (m - r) * params.on_to_off_rate)
    mask = r > 0
    add(mask, phase_index(n, m, np.maximum(r - 1, 0)), r * params.off_to_on_rate)

    row = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    col = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
    data = np.concatenate(values) if values else np.empty(0, dtype=float)
    off_diagonal = sp.coo_matrix((data, (row, col)), shape=(phases, phases)).tocsr()
    off_diagonal.sum_duplicates()
    exit_rates = np.asarray(off_diagonal.sum(axis=1)).ravel()
    return (off_diagonal - sp.diags(exit_rates)).tocsr()


def _rate_grids(params: GprsModelParameters, space: GprsStateSpace):
    """Return arrival, service and TCP-capped arrival rates on the (K+1, B) grid.

    The grid is indexed ``[k, phi]`` with ``phi = n * P + p`` matching
    :func:`build_phase_generator`.
    """
    phases, pair_count, n, m, r = _phase_arrays(params, space)
    levels = space.buffer_size + 1
    k = np.arange(levels)[:, None]

    free_channels = params.number_of_channels - n[None, :]
    capacity = np.minimum(free_channels, MAX_TIME_SLOTS_PER_STATION * k)
    service = capacity * params.pdch_service_rate

    uncontrolled = ((m - r) * params.packet_rate)[None, :] * np.ones((levels, 1))
    throttled = np.minimum(uncontrolled, service)
    above = (np.arange(levels) > params.tcp_threshold_packets)[:, None]
    offered = np.where(above, throttled, uncontrolled)
    # No arrival transition out of the full buffer (offered packets are lost).
    arrival = offered.copy()
    arrival[-1, :] = 0.0
    return arrival, service, offered


def _gsm_phase_marginal(params: GprsModelParameters, gsm_arrival: float) -> np.ndarray:
    """Exact stationary distribution of the GSM birth--death factor chain."""
    servers = params.gsm_channels
    departure = params.gsm_completion_rate + params.gsm_handover_departure_rate
    n = np.arange(servers + 1)
    generator = np.zeros((servers + 1, servers + 1))
    if servers:
        generator[n[:-1], n[:-1] + 1] = gsm_arrival
        generator[n[1:], n[1:] - 1] = n[1:] * departure
    np.fill_diagonal(generator, -generator.sum(axis=1))
    return steady_state_gth(generator).distribution


def _pair_phase_marginal(
    params: GprsModelParameters, space: GprsStateSpace, gprs_arrival: float
) -> np.ndarray:
    """Exact stationary distribution of the ``(m, r)`` session factor chain."""
    max_sessions = space.max_sessions
    pair_count = (max_sessions + 1) * (max_sessions + 2) // 2
    departure = params.gprs_completion_rate + params.gprs_handover_departure_rate
    start_on = params.probability_session_starts_on
    offset = (
        np.arange(max_sessions + 1, dtype=np.int64)
        * np.arange(1, max_sessions + 2, dtype=np.int64)
        // 2
    )
    m = np.repeat(np.arange(max_sessions + 1, dtype=np.int64), np.arange(1, max_sessions + 2))
    r = np.arange(pair_count, dtype=np.int64) - offset[m]
    index = np.arange(pair_count, dtype=np.int64)

    rows, cols, values = [], [], []

    def add(mask, target, rate):
        rate = np.broadcast_to(np.asarray(rate, dtype=float), mask.shape)
        keep = mask & (rate > 0)
        rows.append(index[keep])
        cols.append(target[keep])
        values.append(rate[keep])

    mask = m < max_sessions
    m_next = np.minimum(m + 1, max_sessions)
    add(mask, offset[m_next] + np.minimum(r, m_next), start_on * gprs_arrival)
    add(mask, offset[m_next] + np.minimum(r + 1, m_next), (1.0 - start_on) * gprs_arrival)
    m_prev = np.maximum(m - 1, 0)
    mask = (m > 0) & (r > 0)
    add(mask, offset[m_prev] + np.maximum(r - 1, 0), r * departure)
    mask = (m > 0) & (r < m)
    add(mask, offset[m_prev] + np.minimum(r, m_prev), (m - r) * departure)
    mask = r < m
    add(mask, offset[m] + np.minimum(r + 1, m), (m - r) * params.on_to_off_rate)
    mask = r > 0
    add(mask, offset[m] + np.maximum(r - 1, 0), r * params.off_to_on_rate)

    off_diagonal = sp.coo_matrix(
        (np.concatenate(values), (np.concatenate(rows), np.concatenate(cols))),
        shape=(pair_count, pair_count),
    ).tocsr()
    off_diagonal.sum_duplicates()
    exit_rates = np.asarray(off_diagonal.sum(axis=1)).ravel()
    generator = (off_diagonal - sp.diags(exit_rates)).tocsr()
    return solve_steady_state(generator, method="auto").distribution


# ---------------------------------------------------------------------- #
# Reusable per-configuration context
# ---------------------------------------------------------------------- #
@dataclass
class StructuredSolveContext:
    """Arrival-rate-independent scaffolding of the structured solver.

    Everything here depends only on the fixed part of the configuration
    (state-space shape, service/packet/switch rates), so one context serves
    every point of an arrival-rate sweep.  The phase-chain sparsity pattern
    is frozen the same way :class:`~repro.core.template.GeneratorTemplate`
    freezes the full generator: per sweep point only its ``data`` array is
    rewritten.
    """

    space: GprsStateSpace
    levels: int
    phases: int
    pair_count: int
    arrival: np.ndarray = field(repr=False)
    service: np.ndarray = field(repr=False)
    sub: np.ndarray = field(repr=False)
    sup: np.ndarray = field(repr=False)
    fibre_exit: np.ndarray = field(repr=False)  # arrival + service per grid cell
    # Frozen off-diagonal pattern of the phase chain.
    phase_indptr: np.ndarray = field(repr=False)
    phase_indices: np.ndarray = field(repr=False)
    phase_base_data: np.ndarray = field(repr=False)
    phase_gsm_slots: np.ndarray = field(repr=False)
    phase_on_slots: np.ndarray = field(repr=False)
    phase_off_slots: np.ndarray = field(repr=False)
    #: Start-on/start-off weight of each arrival-dependent phase slot.
    phase_weight: np.ndarray = field(repr=False)

    @classmethod
    def build(
        cls, params: GprsModelParameters, space: GprsStateSpace
    ) -> "StructuredSolveContext":
        phases, pair_count, n, m, r = _phase_arrays(params, space)
        levels = space.buffer_size + 1
        arrival, service, _ = _rate_grids(params, space)
        sub = np.zeros((levels, phases))
        sup = np.zeros((levels, phases))
        sub[1:, :] = arrival[:-1, :]
        sup[:-1, :] = service[1:, :]

        # Off-diagonal phase pattern with unit scales per event family:
        # fixed rates are stored, arrival-dependent slots are marked.
        gsm_departure = params.gsm_completion_rate + params.gsm_handover_departure_rate
        gprs_departure = params.gprs_completion_rate + params.gprs_handover_departure_rate
        sessions = np.arange(space.max_sessions + 1, dtype=np.int64)
        pair_offset = sessions * (sessions + 1) // 2
        index = np.arange(phases, dtype=np.int64)

        def phase_index(n_new, m_new, r_new):
            return n_new * pair_count + pair_offset[m_new] + r_new

        rows, cols, values, classes = [], [], [], []

        def add(mask, target, rate, code):
            rate = np.broadcast_to(np.asarray(rate, dtype=float), mask.shape)
            keep = mask & (rate > 0)
            rows.append(index[keep])
            cols.append(target[keep])
            values.append(rate[keep])
            classes.append(np.full(int(keep.sum()), code, dtype=np.int8))

        # Unit scales freeze the pattern of the arrival classes (codes 1-3);
        # fixed classes (code 0) store their true rates.
        start_on = params.probability_session_starts_on
        mask = n < space.gsm_channels
        add(mask, phase_index(np.minimum(n + 1, space.gsm_channels), m, r), 1.0, 1)
        mask = n > 0
        add(mask, phase_index(np.maximum(n - 1, 0), m, r), n * gsm_departure, 0)
        mask = m < space.max_sessions
        m_next = np.minimum(m + 1, space.max_sessions)
        add(mask, phase_index(n, m_next, np.minimum(r, m_next)), start_on, 2)
        add(mask, phase_index(n, m_next, np.minimum(r + 1, m_next)), 1.0 - start_on, 3)
        m_prev = np.maximum(m - 1, 0)
        mask = (m > 0) & (r > 0)
        add(mask, phase_index(n, m_prev, np.maximum(r - 1, 0)), r * gprs_departure, 0)
        mask = (m > 0) & (r < m)
        add(mask, phase_index(n, m_prev, np.minimum(r, m_prev)), (m - r) * gprs_departure, 0)
        mask = r < m
        add(mask, phase_index(n, m, np.minimum(r + 1, m)), (m - r) * params.on_to_off_rate, 0)
        mask = r > 0
        add(mask, phase_index(n, m, np.maximum(r - 1, 0)), r * params.off_to_on_rate, 0)

        row = np.concatenate(rows)
        col = np.concatenate(cols)
        data = np.concatenate(values)
        code = np.concatenate(classes)

        order = sp.csr_matrix(
            (np.arange(1, row.shape[0] + 1, dtype=np.float64), (row, col)),
            shape=(phases, phases),
        )
        order.sum_duplicates()
        order.sort_indices()
        position = np.rint(order.data).astype(np.int64) - 1

        slot_code = code[position]
        base = np.where(slot_code == 0, data[position], 0.0)
        weight = np.where(slot_code == 2, start_on, 1.0 - start_on)

        return cls(
            space=space,
            levels=levels,
            phases=phases,
            pair_count=pair_count,
            arrival=arrival,
            service=service,
            sub=sub,
            sup=sup,
            fibre_exit=arrival + service,
            phase_indptr=order.indptr.copy(),
            phase_indices=order.indices.copy(),
            phase_base_data=base,
            phase_gsm_slots=np.flatnonzero(slot_code == 1),
            phase_on_slots=np.flatnonzero(slot_code == 2),
            phase_off_slots=np.flatnonzero(slot_code == 3),
            phase_weight=weight,
        )

    def phase_coupling(
        self, gsm_arrival: float, gprs_arrival: float
    ) -> tuple[sp.csr_matrix, np.ndarray]:
        """Return the off-diagonal phase matrix and per-phase exit rates."""
        data = self.phase_base_data.copy()
        data[self.phase_gsm_slots] = gsm_arrival
        weight = self.phase_weight
        data[self.phase_on_slots] = weight[self.phase_on_slots] * gprs_arrival
        data[self.phase_off_slots] = weight[self.phase_off_slots] * gprs_arrival
        matrix = sp.csr_matrix(
            (data, self.phase_indices, self.phase_indptr),
            shape=(self.phases, self.phases),
            copy=False,
        )
        matrix.has_sorted_indices = True
        matrix.has_canonical_format = True
        exit_rates = np.asarray(matrix.sum(axis=1)).ravel()
        return matrix, exit_rates

    # Grid <-> flat reordering (flat index = (n (K+1) + k) P + p).
    def to_flat(self, grid: np.ndarray) -> np.ndarray:
        cube = grid.reshape(self.levels, -1, self.pair_count)
        return np.transpose(cube, (1, 0, 2)).reshape(-1)

    def from_flat(self, flat: np.ndarray) -> np.ndarray:
        cube = flat.reshape(-1, self.levels, self.pair_count)
        return np.transpose(cube, (1, 0, 2)).reshape(self.levels, self.phases)


def _thomas_factorise(sub: np.ndarray, diag: np.ndarray, sup: np.ndarray):
    """Precompute the Thomas elimination coefficients of the fibre systems.

    Returns ``(c_prime, inv_pivot, sub_scaled)`` such that the solve for any
    right-hand side is two O(K) substitution passes.  Guards against exactly
    singular pivots (isolated degenerate fibres).
    """
    levels = diag.shape[0]
    tiny = 1e-300

    def _safe(x):
        return np.where(np.abs(x) < tiny, np.where(x < 0, -tiny, tiny), x)

    c_prime = np.zeros_like(diag)
    inv_pivot = np.zeros_like(diag)
    pivot = _safe(diag[0])
    inv_pivot[0] = 1.0 / pivot
    c_prime[0] = sup[0] * inv_pivot[0]
    for k in range(1, levels):
        pivot = _safe(diag[k] - sub[k] * c_prime[k - 1])
        inv_pivot[k] = 1.0 / pivot
        if k < levels - 1:
            c_prime[k] = sup[k] * inv_pivot[k]
    return c_prime, inv_pivot, sub * inv_pivot


def _thomas_solve(factors, rhs: np.ndarray, work: np.ndarray | None = None) -> np.ndarray:
    """Solve the factorised tridiagonal systems for one right-hand side batch.

    ``work`` is an optional scratch array of one row (``(B,)``); the forward
    pass writes into ``rhs`` in place and the result reuses its storage-shape,
    so a caller that owns ``rhs`` pays no allocations beyond the output.
    """
    c_prime, inv_pivot, sub_scaled = factors
    levels = rhs.shape[0]
    if work is None:
        work = np.empty(rhs.shape[1])
    d = rhs  # forward elimination in place
    np.multiply(d[0], inv_pivot[0], out=d[0])
    for k in range(1, levels):
        np.multiply(sub_scaled[k], d[k - 1], out=work)
        np.multiply(d[k], inv_pivot[k], out=d[k])
        np.subtract(d[k], work, out=d[k])
    x = d  # back substitution in place
    for k in range(levels - 2, -1, -1):
        np.multiply(c_prime[k], x[k + 1], out=work)
        np.subtract(x[k], work, out=x[k])
    return x


def _combine_seed_stack(stack: np.ndarray, generator: sp.csr_matrix) -> np.ndarray:
    """Return the affine combination of previous solutions minimising ``||x Q||``.

    The coefficients sum to one, so the combination stays (approximately) a
    distribution; it is the cross-point analogue of the in-solve reduced-rank
    extrapolation and is what makes adjacent sweep points start several
    decades inside the cold iteration.  Falls back to the newest solution when
    the least-squares system is degenerate or does not actually improve.
    """
    newest = stack[-1]
    if stack.shape[0] == 1:
        return newest
    residuals = np.asarray([row @ generator for row in stack])
    gram = residuals @ residuals.T
    try:
        solution = np.linalg.solve(gram, np.ones(stack.shape[0]))
    except np.linalg.LinAlgError:
        return newest
    if not np.isfinite(solution).all() or solution.sum() == 0:
        return newest
    coefficients = solution / solution.sum()
    candidate = coefficients @ stack
    candidate_norm = float(np.max(np.abs(candidate @ generator)))
    newest_norm = float(np.max(np.abs(residuals[-1])))
    return candidate if candidate_norm < newest_norm else newest


#: Number of sweeps combined by one reduced-rank extrapolation step.
_RRE_WINDOW = 6
#: State count above which the extrapolation window is shortened to bound
#: the memory of the stored iterates.
_RRE_LARGE_STATE_LIMIT = 1_000_000


def solve_structured(
    params: GprsModelParameters,
    space: GprsStateSpace,
    generator: sp.csr_matrix,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
    tol: float = 1e-9,
    max_sweeps: int = 5000,
    damping: float = 1.0,
    initial: np.ndarray | None = None,
    context: StructuredSolveContext | None = None,
) -> SteadyStateResult:
    """Compute the stationary distribution with the fibre/phase iteration.

    Parameters
    ----------
    params, space:
        Model parameters and the matching state space.
    generator:
        The full generator matrix (used to certify the final residual; the
        per-sweep convergence test runs on the equivalent grid form).
    gsm_handover_arrival_rate, gprs_handover_arrival_rate:
        Balanced handover arrival rates (must match those used to build
        ``generator``).
    tol:
        Convergence threshold on the scaled residual
        ``||pi Q||_inf / max|Q_ii|``.
    max_sweeps:
        Iteration budget; a :class:`~repro.markov.solvers.SolverError` is
        raised when it is exhausted without convergence.
    damping:
        Relaxation factor in ``(0, 1]`` applied to each sweep; values below
        one suppress the oscillatory modes block-Jacobi iterations can exhibit
        on nearly bipartite transition graphs.
    initial:
        Optional warm-start guess: a stationary vector in the flat state
        ordering of ``space`` (typically the solution of an adjacent sweep
        point), or a ``(j, n)`` stack of several previous solutions (most
        recent last).  Given a stack, the seed is the affine combination of
        the rows that minimises the residual under *this* point's generator
        -- a polynomial-extrapolation-quality seed that typically starts
        several decades closer than the newest solution alone.  A usable
        guess replaces the cold geometric seed and cuts the sweep count; an
        unusable one (wrong length raises, non-normalisable mass falls back)
        leaves the cold path untouched.
    context:
        Optional :class:`StructuredSolveContext` shared across the points of
        an arrival-rate sweep; built on the fly when absent.
    """
    if context is None or context.space is not space:
        context = StructuredSolveContext.build(params, space)
    levels, phases = context.levels, context.phases

    gsm_arrival = params.gsm_arrival_rate + gsm_handover_arrival_rate
    gprs_arrival = params.gprs_arrival_rate + gprs_handover_arrival_rate
    phase_off, phase_exit = context.phase_coupling(gsm_arrival, gprs_arrival)

    # Exact phase marginal: the phase chain is a direct product of the GSM
    # birth-death chain and the (m, r) session chain, so its stationary
    # distribution is the Kronecker product of the two factor marginals.
    phase_marginal = np.kron(
        _gsm_phase_marginal(params, gsm_arrival),
        _pair_phase_marginal(params, space, gprs_arrival),
    )

    sub, sup = context.sub, context.sup
    diag = -(context.fibre_exit + phase_exit[None, :])
    factors = _thomas_factorise(sub, diag, sup)

    # Initial guess: a supplied warm start (adjacent sweep points), otherwise
    # the phase marginal spread geometrically towards small k.
    pi = None
    if initial is not None:
        guess = np.asarray(initial, dtype=float)
        if guess.ndim == 2:
            if guess.shape[1] != space.size or guess.shape[0] == 0:
                raise ValueError(
                    f"initial stack has shape {guess.shape}, expected (j, {space.size})"
                )
            guess = _combine_seed_stack(guess, generator)
        if guess.shape != (space.size,):
            raise ValueError(
                f"initial guess has shape {guess.shape}, expected ({space.size},)"
            )
        guess = np.maximum(context.from_flat(guess), 0.0)
        total = guess.sum()
        if total > 0 and np.isfinite(total):
            pi = guess / total
    if pi is None:
        pi = np.tile(phase_marginal[None, :], (levels, 1))
        weights = np.exp(-np.arange(levels, dtype=float))[:, None]
        pi = pi * weights
        pi /= pi.sum()

    scale = float(np.max(np.abs(generator.diagonal()))) or 1.0

    def grid_residual(x: np.ndarray, inflow: np.ndarray) -> float:
        """Scaled ``||x Q||_inf`` evaluated on the grid (a few vector ops)."""
        balance = diag * x
        balance[1:] += sub[1:] * x[:-1]
        balance[:-1] += sup[:-1] * x[1:]
        balance += inflow
        return float(np.max(np.abs(balance))) / scale

    def rescale(grid: np.ndarray) -> np.ndarray | None:
        """Clip, match the exact phase marginal and normalise, all in place.

        The caller owns ``grid`` (it comes out of the fibre solve), so the
        sweep pays no further allocations here.  Returns ``None`` when the
        iterate cannot be normalised.
        """
        np.maximum(grid, 0.0, out=grid)
        fibre_mass = grid.sum(axis=0)
        safe_mass = np.where(fibre_mass > 0, fibre_mass, 1.0)
        grid *= (phase_marginal / safe_mass)[None, :]
        empty = fibre_mass <= 0
        if np.any(empty):
            grid[0, empty] = phase_marginal[empty]
        total = grid.sum()
        if total <= 0 or not np.isfinite(total):
            return None
        grid /= total
        return grid

    window = _RRE_WINDOW if space.size <= _RRE_LARGE_STATE_LIMIT else 4
    inflow = pi @ phase_off
    residual = grid_residual(pi, inflow)
    best_pi, best_residual = pi, residual
    sweeps = 0
    # Ring storage for the extrapolation: the window's base iterate plus one
    # difference vector per sweep, written in place (no per-sweep stacking).
    differences = np.empty((window, space.size))
    window_base = pi.ravel().copy()
    previous_flat = window_base
    filled = 0
    # The residual is evaluated at extrapolation boundaries (where it gates
    # acceptance anyway); in between each sweep is a handful of vector
    # operations, so a converged iterate is recognised at most ``window``
    # sweeps late.
    while residual >= tol and sweeps < max_sweeps:
        sweeps += 1
        updated = rescale(_thomas_solve(factors, -inflow))
        if updated is None:
            raise SolverError("structured solver diverged")
        if damping != 1.0:
            updated = damping * updated + (1.0 - damping) * pi
            updated /= updated.sum()
        pi = updated
        inflow = pi @ phase_off

        current_flat = pi.ravel()
        np.subtract(current_flat, previous_flat, out=differences[filled])
        previous_flat = current_flat.copy()
        filled += 1
        if filled == window:
            residual = grid_residual(pi, inflow)
            # Reduced-rank extrapolation: the linear combination of the
            # window's iterates (coefficients summing to one) that minimises
            # the norm of the iterate differences.  Accepted only when it
            # lowers the true residual.
            gram = differences @ differences.T
            try:
                solution = np.linalg.solve(gram, np.ones(window))
            except np.linalg.LinAlgError:
                solution = None
            if solution is not None and np.isfinite(solution).all() and solution.sum() != 0:
                gamma = solution / solution.sum()
                # x* = sum_i gamma_i x_i over the window's first `window`
                # iterates; in difference form x* = x_base + D^T w with
                # w_j = sum_{i >= j} gamma_i (the last difference only
                # enters through the Gram matrix).
                weights = np.cumsum(gamma[::-1])[::-1][1:]
                candidate_flat = window_base + weights @ differences[:-1]
                candidate = rescale(candidate_flat.reshape(levels, phases))
                if candidate is not None:
                    candidate_inflow = candidate @ phase_off
                    candidate_residual = grid_residual(candidate, candidate_inflow)
                    if candidate_residual < residual:
                        pi = candidate
                        inflow = candidate_inflow
                        residual = candidate_residual
            window_base = pi.ravel().copy()
            previous_flat = window_base
            filled = 0
            if residual < best_residual:
                best_pi, best_residual = pi, residual

    if best_residual < residual:
        pi, residual = best_pi, best_residual
        inflow = pi @ phase_off

    flat = np.maximum(context.to_flat(pi), 0.0)
    flat /= flat.sum()
    # Certify against the actual generator matrix (the grid residual is the
    # same balance up to assembly rounding).
    certified = float(np.max(np.abs(flat @ generator))) / scale
    if certified > max(tol * 50, 1e-6):
        raise SolverError(
            f"structured solver did not converge: scaled residual {certified:.2e} "
            f"after {sweeps} sweeps"
        )
    return SteadyStateResult(flat, "structured", sweeps, certified * scale)
