"""Structure-exploiting steady-state solver for the GPRS chain.

Generic sparse LU factorisation suffers severe fill-in on the GPRS chain
because its transition graph is a four-dimensional lattice.  This module
implements a solver that exploits three structural properties of the model
instead:

1. **The phase process is autonomous.**  The components ``(n, m, r)`` (GSM
   calls, GPRS sessions, sessions in the off state) evolve with rates that do
   not depend on the buffer occupancy ``k``, so their marginal stationary
   distribution is the stationary distribution of the much smaller *phase
   chain*.

2. **The phase chain is a direct product.**  No transition couples the GSM
   component ``n`` with the GPRS component ``(m, r)``, so the phase chain is
   the Kronecker sum of a birth--death chain over ``n`` and a session chain
   over ``(m, r)`` -- its stationary distribution is the Kronecker *product*
   of two tiny marginals, each solved exactly with GTH elimination in
   microseconds instead of a sparse LU solve of the full phase chain.

3. **For a fixed phase, the buffer occupancy is a birth--death fibre.**
   Packet arrivals and services only move ``k`` by one and never change the
   phase, so conditioned on the cross-phase inflows the balance equations of
   one phase form a tridiagonal system of size ``K + 1`` that the Thomas
   algorithm solves in ``O(K)``.  The elimination coefficients depend only on
   the rates, not on the right-hand side, so they are factorised **once** per
   configuration and every sweep performs only the two O(K) substitution
   passes.

The solver iterates block-Jacobi sweeps over all phase fibres (vectorised
over phases, so one sweep costs a handful of numpy operations on ``(K+1, B)``
arrays) and, after every sweep, rescales each fibre so that its mass matches
the exact phase marginal (an aggregation/disaggregation step).  Every few
sweeps a **reduced-rank extrapolation** (RRE) step combines the recent
iterates into a minimal-residual linear combination, which typically removes
the slowly-decaying error modes and cuts the sweep count roughly in half; the
extrapolated iterate is only accepted when it measurably lowers the residual,
so a failed extrapolation can never degrade the solution.  Convergence is
measured by the residual of the full balance equations (evaluated per sweep
directly on the ``(K+1, B)`` grid, where it costs a few vector operations),
so the result is the stationary distribution of the complete chain, not an
approximation.

On deep buffers a **two-level coarse-space correction** targets the
slowly-diffusing buffer modes directly.  The phases are aggregated by the
pair ``(n, m - r)`` -- the only coordinates the buffer rates depend on (the
arrival rate of a fibre is a function of the active sessions ``m - r`` alone,
the service rate of the free channels ``C - n`` alone), so the restricted
birth/death rates of the coarse chain over ``(k, n, m - r)`` are *exact*, and
no transition of the chain moves ``k`` and the phase at once, so the coarse
operator keeps the fine operator's level structure.  The coarse system (a few
hundred times smaller than the chain) is factorised once per engaged solve
with a fill-reducing sparse LU; at each extrapolation-window boundary the
balance residual is restricted, the coarse correction equation is solved
exactly, and the prolongated correction -- least-squares-combined with a
small *recycled subspace* of previous sweep-point directions (the differences
of the warm-start stack) -- is applied.  Each correction is accepted only
when it measurably lowers the true residual, so -- like the reduced-rank
extrapolation -- it can never degrade the solution.  The machinery engages
lazily (deep buffers only, and only once the iteration has proven slow), so
short warm-started solves never pay the factorisation; with the correction
disabled the iteration is bitwise identical to the plain path.  This is what
stops the sweep count from scaling with the buffer size ``K`` (cf. multilevel
aggregation for Markov chains and Krylov subspace recycling, PAPERS.md).

Arrival-rate sweeps can reuse a :class:`StructuredSolveContext` across
points: it caches everything that does not depend on the swept arrival rate
(the rate grids, the fibre couplings and the frozen sparsity pattern of the
phase chain), mirroring what :class:`~repro.core.template.GeneratorTemplate`
does for the full generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.obs.metrics import current_registry
from repro.obs.trace import current_tracer
from repro.markov.solvers import (
    SolverError,
    SteadyStateResult,
    solve_steady_state,
    steady_state_gth,
)
from repro.traffic.units import MAX_TIME_SLOTS_PER_STATION

__all__ = ["StructuredSolveContext", "solve_structured", "build_phase_generator"]


def _phase_arrays(params: GprsModelParameters, space: GprsStateSpace):
    """Return per-phase arrays (n, m, r) in phase order ``phi = n * P + p``."""
    pair_count = (space.max_sessions + 1) * (space.max_sessions + 2) // 2
    phases = (space.gsm_channels + 1) * pair_count
    pair_m = np.empty(pair_count, dtype=np.int64)
    pair_r = np.empty(pair_count, dtype=np.int64)
    position = 0
    for m in range(space.max_sessions + 1):
        count = m + 1
        pair_m[position : position + count] = m
        pair_r[position : position + count] = np.arange(count)
        position += count
    n = np.repeat(np.arange(space.gsm_channels + 1), pair_count)
    m = np.tile(pair_m, space.gsm_channels + 1)
    r = np.tile(pair_r, space.gsm_channels + 1)
    return phases, pair_count, n, m, r


def build_phase_generator(
    params: GprsModelParameters,
    space: GprsStateSpace,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
) -> sp.csr_matrix:
    """Return the generator of the autonomous phase chain ``(n, m, r)``.

    The phase chain contains every transition of Table 1 that does not involve
    the buffer occupancy: GSM/GPRS arrivals and departures (including
    handovers) and the on/off switches of the aggregated traffic source.
    """
    phases, pair_count, n, m, r = _phase_arrays(params, space)
    index = np.arange(phases, dtype=np.int64)

    gsm_arrival = params.gsm_arrival_rate + gsm_handover_arrival_rate
    gprs_arrival = params.gprs_arrival_rate + gprs_handover_arrival_rate
    gsm_departure = params.gsm_completion_rate + params.gsm_handover_departure_rate
    gprs_departure = params.gprs_completion_rate + params.gprs_handover_departure_rate
    start_on = params.probability_session_starts_on

    sessions = np.arange(space.max_sessions + 1, dtype=np.int64)
    pair_offset = sessions * (sessions + 1) // 2  # offset[m] = m(m+1)/2

    def phase_index(n_new, m_new, r_new):
        return n_new * pair_count + pair_offset[m_new] + r_new

    rows, cols, values = [], [], []

    def add(mask, target, rate):
        rate = np.broadcast_to(np.asarray(rate, dtype=float), mask.shape)
        keep = mask & (rate > 0)
        rows.append(index[keep])
        cols.append(target[keep])
        values.append(rate[keep])

    # GSM arrivals / departures.
    mask = n < space.gsm_channels
    add(mask, phase_index(np.minimum(n + 1, space.gsm_channels), m, r), gsm_arrival)
    mask = n > 0
    add(mask, phase_index(np.maximum(n - 1, 0), m, r), n * gsm_departure)
    # GPRS session arrivals (starting on or off).
    mask = m < space.max_sessions
    m_next = np.minimum(m + 1, space.max_sessions)
    add(mask, phase_index(n, m_next, np.minimum(r, m_next)), start_on * gprs_arrival)
    add(mask, phase_index(n, m_next, np.minimum(r + 1, m_next)), (1 - start_on) * gprs_arrival)
    # GPRS session departures (leaving session off / on).
    m_prev = np.maximum(m - 1, 0)
    mask = (m > 0) & (r > 0)
    add(mask, phase_index(n, m_prev, np.maximum(r - 1, 0)), r * gprs_departure)
    mask = (m > 0) & (r < m)
    add(mask, phase_index(n, m_prev, np.minimum(r, m_prev)), (m - r) * gprs_departure)
    # Aggregated source switches.
    mask = r < m
    add(mask, phase_index(n, m, np.minimum(r + 1, m)), (m - r) * params.on_to_off_rate)
    mask = r > 0
    add(mask, phase_index(n, m, np.maximum(r - 1, 0)), r * params.off_to_on_rate)

    row = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    col = np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
    data = np.concatenate(values) if values else np.empty(0, dtype=float)
    off_diagonal = sp.coo_matrix((data, (row, col)), shape=(phases, phases)).tocsr()
    off_diagonal.sum_duplicates()
    exit_rates = np.asarray(off_diagonal.sum(axis=1)).ravel()
    return (off_diagonal - sp.diags(exit_rates)).tocsr()


def _rate_grids(params: GprsModelParameters, space: GprsStateSpace):
    """Return arrival, service and TCP-capped arrival rates on the (K+1, B) grid.

    The grid is indexed ``[k, phi]`` with ``phi = n * P + p`` matching
    :func:`build_phase_generator`.
    """
    phases, pair_count, n, m, r = _phase_arrays(params, space)
    levels = space.buffer_size + 1
    k = np.arange(levels)[:, None]

    free_channels = params.number_of_channels - n[None, :]
    capacity = np.minimum(free_channels, MAX_TIME_SLOTS_PER_STATION * k)
    service = capacity * params.pdch_service_rate

    uncontrolled = ((m - r) * params.packet_rate)[None, :] * np.ones((levels, 1))
    throttled = np.minimum(uncontrolled, service)
    above = (np.arange(levels) > params.tcp_threshold_packets)[:, None]
    offered = np.where(above, throttled, uncontrolled)
    # No arrival transition out of the full buffer (offered packets are lost).
    arrival = offered.copy()
    arrival[-1, :] = 0.0
    return arrival, service, offered


def _gsm_phase_marginal(params: GprsModelParameters, gsm_arrival: float) -> np.ndarray:
    """Exact stationary distribution of the GSM birth--death factor chain."""
    servers = params.gsm_channels
    departure = params.gsm_completion_rate + params.gsm_handover_departure_rate
    n = np.arange(servers + 1)
    generator = np.zeros((servers + 1, servers + 1))
    if servers:
        generator[n[:-1], n[:-1] + 1] = gsm_arrival
        generator[n[1:], n[1:] - 1] = n[1:] * departure
    np.fill_diagonal(generator, -generator.sum(axis=1))
    return steady_state_gth(generator).distribution


def _pair_phase_marginal(
    params: GprsModelParameters, space: GprsStateSpace, gprs_arrival: float
) -> np.ndarray:
    """Exact stationary distribution of the ``(m, r)`` session factor chain."""
    max_sessions = space.max_sessions
    pair_count = (max_sessions + 1) * (max_sessions + 2) // 2
    departure = params.gprs_completion_rate + params.gprs_handover_departure_rate
    start_on = params.probability_session_starts_on
    offset = (
        np.arange(max_sessions + 1, dtype=np.int64)
        * np.arange(1, max_sessions + 2, dtype=np.int64)
        // 2
    )
    m = np.repeat(np.arange(max_sessions + 1, dtype=np.int64), np.arange(1, max_sessions + 2))
    r = np.arange(pair_count, dtype=np.int64) - offset[m]
    index = np.arange(pair_count, dtype=np.int64)

    rows, cols, values = [], [], []

    def add(mask, target, rate):
        rate = np.broadcast_to(np.asarray(rate, dtype=float), mask.shape)
        keep = mask & (rate > 0)
        rows.append(index[keep])
        cols.append(target[keep])
        values.append(rate[keep])

    mask = m < max_sessions
    m_next = np.minimum(m + 1, max_sessions)
    add(mask, offset[m_next] + np.minimum(r, m_next), start_on * gprs_arrival)
    add(mask, offset[m_next] + np.minimum(r + 1, m_next), (1.0 - start_on) * gprs_arrival)
    m_prev = np.maximum(m - 1, 0)
    mask = (m > 0) & (r > 0)
    add(mask, offset[m_prev] + np.maximum(r - 1, 0), r * departure)
    mask = (m > 0) & (r < m)
    add(mask, offset[m_prev] + np.minimum(r, m_prev), (m - r) * departure)
    mask = r < m
    add(mask, offset[m] + np.minimum(r + 1, m), (m - r) * params.on_to_off_rate)
    mask = r > 0
    add(mask, offset[m] + np.maximum(r - 1, 0), r * params.off_to_on_rate)

    off_diagonal = sp.coo_matrix(
        (np.concatenate(values), (np.concatenate(rows), np.concatenate(cols))),
        shape=(pair_count, pair_count),
    ).tocsr()
    off_diagonal.sum_duplicates()
    exit_rates = np.asarray(off_diagonal.sum(axis=1)).ravel()
    generator = (off_diagonal - sp.diags(exit_rates)).tocsr()
    return solve_steady_state(generator, method="auto").distribution


# ---------------------------------------------------------------------- #
# Reusable per-configuration context
# ---------------------------------------------------------------------- #
@dataclass
class StructuredSolveContext:
    """Arrival-rate-independent scaffolding of the structured solver.

    Everything here depends only on the fixed part of the configuration
    (state-space shape, service/packet/switch rates), so one context serves
    every point of an arrival-rate sweep.  The phase-chain sparsity pattern
    is frozen the same way :class:`~repro.core.template.GeneratorTemplate`
    freezes the full generator: per sweep point only its ``data`` array is
    rewritten.
    """

    space: GprsStateSpace
    levels: int
    phases: int
    pair_count: int
    arrival: np.ndarray = field(repr=False)
    service: np.ndarray = field(repr=False)
    sub: np.ndarray = field(repr=False)
    sup: np.ndarray = field(repr=False)
    fibre_exit: np.ndarray = field(repr=False)  # arrival + service per grid cell
    # Frozen off-diagonal pattern of the phase chain.
    phase_indptr: np.ndarray = field(repr=False)
    phase_indices: np.ndarray = field(repr=False)
    phase_base_data: np.ndarray = field(repr=False)
    phase_gsm_slots: np.ndarray = field(repr=False)
    phase_on_slots: np.ndarray = field(repr=False)
    phase_off_slots: np.ndarray = field(repr=False)
    #: Start-on/start-off weight of each arrival-dependent phase slot.
    phase_weight: np.ndarray = field(repr=False)

    @classmethod
    def build(
        cls, params: GprsModelParameters, space: GprsStateSpace
    ) -> "StructuredSolveContext":
        phases, pair_count, n, m, r = _phase_arrays(params, space)
        levels = space.buffer_size + 1
        arrival, service, _ = _rate_grids(params, space)
        sub = np.zeros((levels, phases))
        sup = np.zeros((levels, phases))
        sub[1:, :] = arrival[:-1, :]
        sup[:-1, :] = service[1:, :]

        # Off-diagonal phase pattern with unit scales per event family:
        # fixed rates are stored, arrival-dependent slots are marked.
        gsm_departure = params.gsm_completion_rate + params.gsm_handover_departure_rate
        gprs_departure = params.gprs_completion_rate + params.gprs_handover_departure_rate
        sessions = np.arange(space.max_sessions + 1, dtype=np.int64)
        pair_offset = sessions * (sessions + 1) // 2
        index = np.arange(phases, dtype=np.int64)

        def phase_index(n_new, m_new, r_new):
            return n_new * pair_count + pair_offset[m_new] + r_new

        rows, cols, values, classes = [], [], [], []

        def add(mask, target, rate, code):
            rate = np.broadcast_to(np.asarray(rate, dtype=float), mask.shape)
            keep = mask & (rate > 0)
            rows.append(index[keep])
            cols.append(target[keep])
            values.append(rate[keep])
            classes.append(np.full(int(keep.sum()), code, dtype=np.int8))

        # Unit scales freeze the pattern of the arrival classes (codes 1-3);
        # fixed classes (code 0) store their true rates.
        start_on = params.probability_session_starts_on
        mask = n < space.gsm_channels
        add(mask, phase_index(np.minimum(n + 1, space.gsm_channels), m, r), 1.0, 1)
        mask = n > 0
        add(mask, phase_index(np.maximum(n - 1, 0), m, r), n * gsm_departure, 0)
        mask = m < space.max_sessions
        m_next = np.minimum(m + 1, space.max_sessions)
        add(mask, phase_index(n, m_next, np.minimum(r, m_next)), start_on, 2)
        add(mask, phase_index(n, m_next, np.minimum(r + 1, m_next)), 1.0 - start_on, 3)
        m_prev = np.maximum(m - 1, 0)
        mask = (m > 0) & (r > 0)
        add(mask, phase_index(n, m_prev, np.maximum(r - 1, 0)), r * gprs_departure, 0)
        mask = (m > 0) & (r < m)
        add(mask, phase_index(n, m_prev, np.minimum(r, m_prev)), (m - r) * gprs_departure, 0)
        mask = r < m
        add(mask, phase_index(n, m, np.minimum(r + 1, m)), (m - r) * params.on_to_off_rate, 0)
        mask = r > 0
        add(mask, phase_index(n, m, np.maximum(r - 1, 0)), r * params.off_to_on_rate, 0)

        row = np.concatenate(rows)
        col = np.concatenate(cols)
        data = np.concatenate(values)
        code = np.concatenate(classes)

        order = sp.csr_matrix(
            (np.arange(1, row.shape[0] + 1, dtype=np.float64), (row, col)),
            shape=(phases, phases),
        )
        order.sum_duplicates()
        order.sort_indices()
        position = np.rint(order.data).astype(np.int64) - 1

        slot_code = code[position]
        base = np.where(slot_code == 0, data[position], 0.0)
        weight = np.where(slot_code == 2, start_on, 1.0 - start_on)

        return cls(
            space=space,
            levels=levels,
            phases=phases,
            pair_count=pair_count,
            arrival=arrival,
            service=service,
            sub=sub,
            sup=sup,
            fibre_exit=arrival + service,
            phase_indptr=order.indptr.copy(),
            phase_indices=order.indices.copy(),
            phase_base_data=base,
            phase_gsm_slots=np.flatnonzero(slot_code == 1),
            phase_on_slots=np.flatnonzero(slot_code == 2),
            phase_off_slots=np.flatnonzero(slot_code == 3),
            phase_weight=weight,
        )

    def phase_coupling(
        self, gsm_arrival: float, gprs_arrival: float
    ) -> tuple[sp.csr_matrix, np.ndarray]:
        """Return the off-diagonal phase matrix and per-phase exit rates."""
        data = self.phase_base_data.copy()
        data[self.phase_gsm_slots] = gsm_arrival
        weight = self.phase_weight
        data[self.phase_on_slots] = weight[self.phase_on_slots] * gprs_arrival
        data[self.phase_off_slots] = weight[self.phase_off_slots] * gprs_arrival
        matrix = sp.csr_matrix(
            (data, self.phase_indices, self.phase_indptr),
            shape=(self.phases, self.phases),
            copy=False,
        )
        matrix.has_sorted_indices = True
        matrix.has_canonical_format = True
        exit_rates = np.asarray(matrix.sum(axis=1)).ravel()
        return matrix, exit_rates

    def coarse_groups(self) -> tuple[np.ndarray, int]:
        """Return the phase aggregation map of the two-level correction.

        Phases are grouped by ``(n, m - r)`` -- the only coordinates the
        buffer rates depend on, so the coarse birth/death rates are exact
        under restriction.  When that grouping would be large (paper-size
        session caps), it falls back to grouping by ``n`` alone, which keeps
        the coarse factorisation trivially cheap at a modest loss of
        correction quality.  The map depends only on the configuration, so it
        is computed once per context and cached (the ``GeneratorTemplate``
        pattern applied to the coarse level).
        """
        cached = self.__dict__.get("_coarse_groups")
        if cached is None:
            pair_m = np.empty(self.pair_count, dtype=np.int64)
            pair_r = np.empty(self.pair_count, dtype=np.int64)
            position = 0
            for m in range(self.space.max_sessions + 1):
                count = m + 1
                pair_m[position : position + count] = m
                pair_r[position : position + count] = np.arange(count)
                position += count
            active = pair_m - pair_r
            n = np.repeat(
                np.arange(self.phases // self.pair_count, dtype=np.int64),
                self.pair_count,
            )
            bands = self.space.max_sessions + 1
            gid = n * bands + np.tile(active, self.phases // self.pair_count)
            groups = int(gid.max()) + 1
            if groups > _COARSE_MAX_GROUPS:
                gid = n
                groups = self.phases // self.pair_count
            cached = (gid, groups)
            self.__dict__["_coarse_groups"] = cached
        return cached

    # Grid <-> flat reordering (flat index = (n (K+1) + k) P + p).
    def to_flat(self, grid: np.ndarray) -> np.ndarray:
        cube = grid.reshape(self.levels, -1, self.pair_count)
        return np.transpose(cube, (1, 0, 2)).reshape(-1)

    def from_flat(self, flat: np.ndarray) -> np.ndarray:
        cube = flat.reshape(-1, self.levels, self.pair_count)
        return np.transpose(cube, (1, 0, 2)).reshape(self.levels, self.phases)


def _thomas_factorise(sub: np.ndarray, diag: np.ndarray, sup: np.ndarray):
    """Precompute the Thomas elimination coefficients of the fibre systems.

    Returns ``(c_prime, inv_pivot, sub_scaled)`` such that the solve for any
    right-hand side is two O(K) substitution passes.  Guards against exactly
    singular pivots (isolated degenerate fibres).
    """
    levels = diag.shape[0]
    tiny = 1e-300

    def _safe(x):
        return np.where(np.abs(x) < tiny, np.where(x < 0, -tiny, tiny), x)

    c_prime = np.zeros_like(diag)
    inv_pivot = np.zeros_like(diag)
    pivot = _safe(diag[0])
    inv_pivot[0] = 1.0 / pivot
    c_prime[0] = sup[0] * inv_pivot[0]
    for k in range(1, levels):
        pivot = _safe(diag[k] - sub[k] * c_prime[k - 1])
        inv_pivot[k] = 1.0 / pivot
        if k < levels - 1:
            c_prime[k] = sup[k] * inv_pivot[k]
    return c_prime, inv_pivot, sub * inv_pivot


def _thomas_solve(factors, rhs: np.ndarray, work: np.ndarray | None = None) -> np.ndarray:
    """Solve the factorised tridiagonal systems for one right-hand side batch.

    ``work`` is an optional scratch array of one row (``(B,)``); the forward
    pass writes into ``rhs`` in place and the result reuses its storage-shape,
    so a caller that owns ``rhs`` pays no allocations beyond the output.
    """
    c_prime, inv_pivot, sub_scaled = factors
    levels = rhs.shape[0]
    if work is None:
        work = np.empty(rhs.shape[1])
    d = rhs  # forward elimination in place
    np.multiply(d[0], inv_pivot[0], out=d[0])
    for k in range(1, levels):
        np.multiply(sub_scaled[k], d[k - 1], out=work)
        np.multiply(d[k], inv_pivot[k], out=d[k])
        np.subtract(d[k], work, out=d[k])
    x = d  # back substitution in place
    for k in range(levels - 2, -1, -1):
        np.multiply(c_prime[k], x[k + 1], out=work)
        np.subtract(x[k], work, out=x[k])
    return x


class _CoarseCorrector:
    """Two-level correction plus recycled-subspace deflation for one solve.

    Holds the per-engagement scaffolding of the repetition-reuse pass: the
    sparse LU factorisation of the level-aggregated coarse operator (grounded
    at its last unknown -- the coarse generator is singular, and the
    acceptance gate makes the grounding choice harmless) and the recycled
    directions -- differences of the warm-start stack, i.e. the residual
    directions the previous sweep points moved along -- with their
    precomputed balance images (the balance map is linear and fixed, so each
    recycled direction costs one application for the whole solve).  Built
    only from the solve's own inputs, so reuse never couples solves: the
    parallel == serial and warm == cold contracts are untouched.
    """

    def __init__(
        self,
        context: StructuredSolveContext,
        weights: np.ndarray,
        phase_off: sp.csr_matrix,
        phase_exit: np.ndarray,
        diag: np.ndarray,
        recycled: list[np.ndarray],
    ) -> None:
        import scipy.sparse.linalg as spla

        self._sub = context.sub
        self._sup = context.sup
        self._diag = diag
        self._phase_off = phase_off
        levels, phases = context.levels, context.phases
        self._levels = levels
        gid, groups = context.coarse_groups()
        self._gid = gid
        self._groups = groups
        group_mass = np.zeros(groups)
        np.add.at(group_mass, gid, weights)
        # Prolongation weights: the phase marginal conditioned within each
        # group (the restriction itself is the plain group sum).
        self._weights = weights / np.where(group_mass[gid] > 0, group_mass[gid], 1.0)
        unknowns = levels * groups
        self._pin = int(np.argmax(group_mass))
        self._keep = np.flatnonzero(np.arange(unknowns) != self._pin)
        # Cross-process reuse: the assembled, grounded coarse operator is a
        # pure function of its construction inputs, so it can be served from
        # the artifact store instead of re-assembled.  The LU factorisation
        # itself is refactorised from the stored matrix (SuperLU objects do
        # not round-trip), which is deterministic -- a store-served corrector
        # produces bitwise-identical correction directions.
        store, key = self._store_key(
            gid, weights, phase_off, phase_exit, context, levels, groups
        )
        grounded = self._load_grounded(store, key, unknowns)
        if grounded is None:
            restrict = sp.csr_matrix(
                (np.ones(phases), (np.arange(phases), gid)), shape=(phases, groups)
            )
            prolong = sp.csr_matrix(
                (self._weights, (gid, np.arange(phases))), shape=(groups, phases)
            )
            coupling = (prolong @ phase_off @ restrict).tocoo()
            exit_c = prolong @ phase_exit
            birth = (prolong @ context.arrival.T).T  # (levels, groups); exact
            death = (prolong @ context.service.T).T
            # Assemble the Galerkin coarse operator over (k, group): birth/death
            # move k within a group, the restricted phase coupling acts within a
            # level -- exactly the structure of the fine chain, a few hundred
            # times smaller.
            ks = np.arange(levels)
            level_up = np.repeat(ks[:-1] * groups, groups) + np.tile(
                np.arange(groups), levels - 1
            )
            level_dn = np.repeat(ks[1:] * groups, groups) + np.tile(
                np.arange(groups), levels - 1
            )
            off_mask = coupling.row != coupling.col
            couple_a = np.tile(coupling.row[off_mask], levels)
            couple_b = np.tile(coupling.col[off_mask], levels)
            couple_v = np.tile(coupling.data[off_mask], levels)
            couple_k = np.repeat(ks * groups, int(off_mask.sum()))
            self_coupling = np.zeros(groups)
            diag_mask = ~off_mask
            np.add.at(self_coupling, coupling.row[diag_mask], coupling.data[diag_mask])
            diag_v = (-(birth + death) - exit_c[None, :] + self_coupling[None, :]).ravel()
            rows = np.concatenate(
                [level_up, level_dn, couple_k + couple_a, np.arange(unknowns)]
            )
            cols = np.concatenate(
                [level_up + groups, level_dn - groups, couple_k + couple_b,
                 np.arange(unknowns)]
            )
            values = np.concatenate(
                [birth[:-1, :].ravel(), death[1:, :].ravel(), couple_v, diag_v]
            )
            operator = sp.coo_matrix(
                (values, (rows, cols)), shape=(unknowns, unknowns)
            ).tocsc()
            # Row-vector correction equation e A_c = -r_c.  The coarse generator
            # is singular with solution family e + t nu (nu = its stationary
            # distribution), so one unknown is grounded -- at level 0 of the
            # heaviest group, where nu is largest: grounding where nu is
            # negligible (e.g. the top buffer level) would admit an enormous
            # near-null component that dumps mass into zero-probability states.
            # MMD(A^T + A) keeps the LU fill far below the default ordering on
            # this lattice-like pattern.
            grounded = operator.T[self._keep][:, self._keep].tocsc()
            if store is not None:
                try:
                    store.put(
                        key,
                        {
                            "data": grounded.data,
                            "indices": grounded.indices,
                            "indptr": grounded.indptr,
                        },
                        {"pin": self._pin},
                    )
                except OSError:
                    pass  # an unwritable store never blocks a solve
        self._lu = spla.splu(grounded, permc_spec="MMD_AT_PLUS_A")
        self.recycled = [(direction, self.balance(direction)) for direction in recycled]

    @staticmethod
    def _store_key(gid, weights, phase_off, phase_exit, context, levels, groups):
        """Resolve the ambient store and this corrector's artifact key."""
        from repro.store.artifacts import artifact_key, current_store

        store = current_store()
        if store is None:
            return None, None
        import hashlib

        digest = hashlib.sha256()
        for array in (
            gid,
            weights,
            phase_off.data,
            phase_off.indices,
            phase_off.indptr,
            phase_exit,
            context.arrival,
            context.service,
        ):
            digest.update(np.ascontiguousarray(array).tobytes())
        key = artifact_key(
            "coarse-operator",
            {"inputs": digest.hexdigest(), "levels": levels, "groups": groups},
        )
        return store, key

    def _load_grounded(self, store, key, unknowns):
        """Return the stored grounded coarse operator, or ``None`` to assemble."""
        if store is None:
            return None
        loaded = store.get(key)
        if loaded is None:
            return None
        arrays, meta = loaded
        try:
            if int(meta["pin"]) != self._pin:
                return None  # stale artifact: identities collided, re-assemble
            side = unknowns - 1
            grounded = sp.csc_matrix(
                (
                    arrays["data"].copy(),
                    arrays["indices"].copy(),
                    arrays["indptr"].copy(),
                ),
                shape=(side, side),
            )
        except (KeyError, TypeError, ValueError):
            return None
        current_registry().count("solver.structured.coarse_store_hits")
        return grounded

    def balance(self, x: np.ndarray) -> np.ndarray:
        """Apply the (linear) grid balance map ``x -> x Q`` in grid form."""
        out = self._diag * x
        out[1:] += self._sub[1:] * x[:-1]
        out[:-1] += self._sup[:-1] * x[1:]
        out += x @ self._phase_off
        return out

    def direction(self, residual_grid: np.ndarray) -> np.ndarray:
        """Return the coarse correction direction for one residual grid."""
        restricted = np.zeros((self._levels, self._groups))
        np.add.at(restricted.T, self._gid, residual_grid.T)
        correction = np.zeros(self._levels * self._groups)
        correction[self._keep] = self._lu.solve(-restricted.ravel()[self._keep])
        correction = correction.reshape(self._levels, self._groups)
        return correction[:, self._gid] * self._weights[None, :]


def _combine_seed_stack(stack: np.ndarray, generator: sp.csr_matrix) -> np.ndarray:
    """Return the affine combination of previous solutions minimising ``||x Q||``.

    The coefficients sum to one, so the combination stays (approximately) a
    distribution; it is the cross-point analogue of the in-solve reduced-rank
    extrapolation and is what makes adjacent sweep points start several
    decades inside the cold iteration.  Falls back to the newest solution when
    the least-squares system is degenerate or does not actually improve.
    """
    newest = stack[-1]
    if stack.shape[0] == 1:
        return newest
    residuals = np.asarray([row @ generator for row in stack])
    gram = residuals @ residuals.T
    try:
        solution = np.linalg.solve(gram, np.ones(stack.shape[0]))
    except np.linalg.LinAlgError:
        return newest
    if not np.isfinite(solution).all() or solution.sum() == 0:
        return newest
    coefficients = solution / solution.sum()
    candidate = coefficients @ stack
    candidate_norm = float(np.max(np.abs(candidate @ generator)))
    newest_norm = float(np.max(np.abs(residuals[-1])))
    return candidate if candidate_norm < newest_norm else newest


#: Number of sweeps combined by one reduced-rank extrapolation step.
_RRE_WINDOW = 6
#: State count above which the extrapolation window is shortened to bound
#: the memory of the stored iterates.
_RRE_LARGE_STATE_LIMIT = 1_000_000
#: Most recycled (previous sweep-point) directions kept by the correction.
_RECYCLE_LIMIT = 3
#: Buffer levels below which the coarse correction never engages: shallow
#: buffers converge in a handful of windows and their iteration stays
#: bitwise identical to the plain path.
_COARSE_MIN_LEVELS = 48
#: Coarse-space size cap: beyond it the (n, m - r) grouping falls back to
#: grouping by n alone so the coarse factorisation stays trivially cheap.
_COARSE_MAX_GROUPS = 320
#: Extrapolation window used while the correction pass is enabled on a deep
#: buffer (slow diffusion modes reward a longer difference history).
_COARSE_RRE_WINDOW = 10
#: Completed windows before the coarse operator is factorised: a solve that
#: converges quickly (every warm-started sweep point) never pays the setup.
_COARSE_TRIGGER_WINDOWS = 2
#: Residual (in units of ``tol``) below which a pending coarse engagement is
#: skipped -- the iterate is about to converge anyway.
_COARSE_TRIGGER_RESIDUAL = 100.0
#: Scaled seed residual above which the coarse operator is factorised before
#: the first sweep: a cold seed's smooth error is exactly what the coarse
#: space removes (warm seeds start decades lower and skip the setup).
_COARSE_SEED_RESIDUAL = 1e-4


def solve_structured(
    params: GprsModelParameters,
    space: GprsStateSpace,
    generator: sp.csr_matrix,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
    tol: float = 1e-9,
    max_sweeps: int = 5000,
    damping: float = 1.0,
    initial: np.ndarray | None = None,
    context: StructuredSolveContext | None = None,
    coarse_correction: bool = True,
) -> SteadyStateResult:
    """Compute the stationary distribution with the fibre/phase iteration.

    Parameters
    ----------
    params, space:
        Model parameters and the matching state space.
    generator:
        The full generator matrix (used to certify the final residual; the
        per-sweep convergence test runs on the equivalent grid form).
    gsm_handover_arrival_rate, gprs_handover_arrival_rate:
        Balanced handover arrival rates (must match those used to build
        ``generator``).
    tol:
        Convergence threshold on the scaled residual
        ``||pi Q||_inf / max|Q_ii|``.
    max_sweeps:
        Iteration budget; a :class:`~repro.markov.solvers.SolverError` is
        raised when it is exhausted without convergence.
    damping:
        Relaxation factor in ``(0, 1]`` applied to each sweep; values below
        one suppress the oscillatory modes block-Jacobi iterations can exhibit
        on nearly bipartite transition graphs.
    initial:
        Optional warm-start guess: a stationary vector in the flat state
        ordering of ``space`` (typically the solution of an adjacent sweep
        point), or a ``(j, n)`` stack of several previous solutions (most
        recent last).  Given a stack, the seed is the affine combination of
        the rows that minimises the residual under *this* point's generator
        -- a polynomial-extrapolation-quality seed that typically starts
        several decades closer than the newest solution alone.  A usable
        guess replaces the cold geometric seed and cuts the sweep count; an
        unusable one (wrong length raises, non-normalisable mass falls back)
        leaves the cold path untouched.
    context:
        Optional :class:`StructuredSolveContext` shared across the points of
        an arrival-rate sweep; built on the fly when absent.
    coarse_correction:
        Enable the two-level coarse-space correction (plus the recycled
        subspace built from the warm-start stack's difference directions).
        On deep buffers (``K + 1 >= 48`` levels) the extrapolation window is
        widened and, once the iteration has proven slow, the level-aggregated
        coarse operator over ``(k, n, m - r)`` is factorised and a gated
        correction is applied at every window boundary; the step is accepted
        only when it lowers the true residual.  This removes most of the
        sweep count's growth with the buffer size ``K`` while quick
        (warm-started) solves never pay the factorisation.  ``False``
        restores the plain iteration bitwise; shallow buffers are bitwise
        identical either way.
    """
    registry = current_registry()
    registry.count("solver.structured.solves")
    registry.count(
        "solver.structured.warm_seeded"
        if initial is not None
        else "solver.structured.cold_seeded"
    )
    with current_tracer().span("solver.structured", states=space.size):
        result = _solve_structured_impl(
            params,
            space,
            generator,
            gsm_handover_arrival_rate=gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=gprs_handover_arrival_rate,
            tol=tol,
            max_sweeps=max_sweeps,
            damping=damping,
            initial=initial,
            context=context,
            coarse_correction=coarse_correction,
        )
    registry.count("solver.structured.sweeps", result.iterations)
    registry.count("solver.structured.coarse_corrections", result.coarse_corrections)
    return result


def _solve_structured_impl(
    params: GprsModelParameters,
    space: GprsStateSpace,
    generator: sp.csr_matrix,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
    tol: float,
    max_sweeps: int,
    damping: float,
    initial: np.ndarray | None,
    context: StructuredSolveContext | None,
    coarse_correction: bool,
) -> SteadyStateResult:
    if context is None or context.space is not space:
        context = StructuredSolveContext.build(params, space)
    levels, phases = context.levels, context.phases

    gsm_arrival = params.gsm_arrival_rate + gsm_handover_arrival_rate
    gprs_arrival = params.gprs_arrival_rate + gprs_handover_arrival_rate
    phase_off, phase_exit = context.phase_coupling(gsm_arrival, gprs_arrival)

    # Exact phase marginal: the phase chain is a direct product of the GSM
    # birth-death chain and the (m, r) session chain, so its stationary
    # distribution is the Kronecker product of the two factor marginals.
    phase_marginal = np.kron(
        _gsm_phase_marginal(params, gsm_arrival),
        _pair_phase_marginal(params, space, gprs_arrival),
    )

    sub, sup = context.sub, context.sup
    diag = -(context.fibre_exit + phase_exit[None, :])
    factors = _thomas_factorise(sub, diag, sup)

    # Initial guess: a supplied warm start (adjacent sweep points), otherwise
    # the phase marginal spread geometrically towards small k.
    pi = None
    recycled: list[np.ndarray] = []
    if initial is not None:
        guess = np.asarray(initial, dtype=float)
        if guess.ndim == 2:
            if guess.shape[1] != space.size or guess.shape[0] == 0:
                raise ValueError(
                    f"initial stack has shape {guess.shape}, expected (j, {space.size})"
                )
            if coarse_correction and guess.shape[0] >= 2:
                # The stack's difference directions are the residual
                # directions the previous sweep points converged along --
                # the recycled subspace of the correction step (normalised
                # for the conditioning of its least-squares system).
                for row in range(
                    max(0, guess.shape[0] - 1 - _RECYCLE_LIMIT), guess.shape[0] - 1
                ):
                    direction = context.from_flat(guess[row + 1] - guess[row])
                    magnitude = float(np.max(np.abs(direction)))
                    if magnitude > 0:
                        recycled.append(direction / magnitude)
            guess = _combine_seed_stack(guess, generator)
        if guess.shape != (space.size,):
            raise ValueError(
                f"initial guess has shape {guess.shape}, expected ({space.size},)"
            )
        guess = np.maximum(context.from_flat(guess), 0.0)
        total = guess.sum()
        if total > 0 and np.isfinite(total):
            pi = guess / total
    warm_seeded = pi is not None
    if pi is None:
        pi = np.tile(phase_marginal[None, :], (levels, 1))
        weights = np.exp(-np.arange(levels, dtype=float))[:, None]
        pi = pi * weights
        pi /= pi.sum()

    scale = float(np.max(np.abs(generator.diagonal()))) or 1.0

    def grid_residual(x: np.ndarray, inflow: np.ndarray) -> float:
        """Scaled ``||x Q||_inf`` evaluated on the grid (a few vector ops)."""
        balance = diag * x
        balance[1:] += sub[1:] * x[:-1]
        balance[:-1] += sup[:-1] * x[1:]
        balance += inflow
        return float(np.max(np.abs(balance))) / scale

    def rescale(grid: np.ndarray) -> np.ndarray | None:
        """Clip, match the exact phase marginal and normalise, all in place.

        The caller owns ``grid`` (it comes out of the fibre solve), so the
        sweep pays no further allocations here.  Returns ``None`` when the
        iterate cannot be normalised.
        """
        np.maximum(grid, 0.0, out=grid)
        fibre_mass = grid.sum(axis=0)
        safe_mass = np.where(fibre_mass > 0, fibre_mass, 1.0)
        grid *= (phase_marginal / safe_mass)[None, :]
        empty = fibre_mass <= 0
        if np.any(empty):
            grid[0, empty] = phase_marginal[empty]
        total = grid.sum()
        if total <= 0 or not np.isfinite(total):
            return None
        grid /= total
        return grid

    coarse_enabled = coarse_correction and levels >= _COARSE_MIN_LEVELS
    corrector: _CoarseCorrector | None = None
    corrections = 0

    def correction_step(pi, inflow, residual):
        """One two-level + recycled-subspace correction, gated on improvement.

        Two candidates compete against the current iterate: the full coarse
        step (the exact solution of the coarse correction equation) and its
        least-squares combination with the recycled directions.  A rejected
        step hands the iterate back untouched, so the correction can never
        regress.  Returns ``(pi, inflow, residual, accepted)``.
        """
        balance = diag * pi
        balance[1:] += sub[1:] * pi[:-1]
        balance[:-1] += sup[:-1] * pi[1:]
        balance += inflow
        directions = [corrector.direction(balance)]
        balances = [corrector.balance(directions[0])]
        for direction, image in corrector.recycled:
            directions.append(direction)
            balances.append(image)
        candidates = [pi + directions[0]]
        if len(directions) > 1:
            gram = np.array(
                [[float(np.vdot(a, b)) for b in balances] for a in balances]
            )
            moments = np.array([float(np.vdot(image, balance)) for image in balances])
            try:
                coefficients, *_ = np.linalg.lstsq(gram, -moments, rcond=None)
            except np.linalg.LinAlgError:
                coefficients = None
            if coefficients is not None and np.isfinite(coefficients).all():
                combined = pi.copy()
                for coefficient, direction in zip(coefficients, directions):
                    combined += coefficient * direction
                candidates.append(combined)
        best = (pi, inflow, residual, False)
        for candidate in candidates:
            candidate = rescale(candidate)
            if candidate is None:
                continue
            candidate_inflow = candidate @ phase_off
            candidate_residual = grid_residual(candidate, candidate_inflow)
            if candidate_residual < best[2]:
                best = (candidate, candidate_inflow, candidate_residual, True)
        return best

    window = _RRE_WINDOW if space.size <= _RRE_LARGE_STATE_LIMIT else 4
    if coarse_enabled and space.size <= _RRE_LARGE_STATE_LIMIT:
        window = _COARSE_RRE_WINDOW
    inflow = pi @ phase_off
    residual = grid_residual(pi, inflow)
    # A cold seed's smooth error is exactly what the coarse space removes, so
    # the corrector engages immediately; warm-started solves converge in a
    # couple of windows and only engage through the window trigger below if
    # the iteration proves unexpectedly slow.
    if (
        coarse_enabled
        and not warm_seeded
        and tol <= residual
        and residual > _COARSE_SEED_RESIDUAL
    ):
        corrector = _CoarseCorrector(
            context, phase_marginal, phase_off, phase_exit, diag, recycled
        )
        pi, inflow, residual, accepted = correction_step(pi, inflow, residual)
        if accepted:
            corrections += 1
    best_pi, best_residual = pi, residual
    sweeps = 0
    completed_windows = 0
    # Ring storage for the extrapolation: the window's base iterate plus one
    # difference vector per sweep, written in place (no per-sweep stacking).
    differences = np.empty((window, space.size))
    window_base = pi.ravel().copy()
    previous_flat = window_base
    filled = 0
    # The residual is evaluated at extrapolation boundaries (where it gates
    # acceptance anyway); in between each sweep is a handful of vector
    # operations, so a converged iterate is recognised at most ``window``
    # sweeps late.
    while residual >= tol and sweeps < max_sweeps:
        sweeps += 1
        updated = rescale(_thomas_solve(factors, -inflow))
        if updated is None:
            raise SolverError("structured solver diverged")
        if damping != 1.0:
            updated = damping * updated + (1.0 - damping) * pi
            updated /= updated.sum()
        pi = updated
        inflow = pi @ phase_off

        current_flat = pi.ravel()
        np.subtract(current_flat, previous_flat, out=differences[filled])
        previous_flat = current_flat.copy()
        filled += 1
        if filled == window:
            residual = grid_residual(pi, inflow)
            # Reduced-rank extrapolation: the linear combination of the
            # window's iterates (coefficients summing to one) that minimises
            # the norm of the iterate differences.  Accepted only when it
            # lowers the true residual.
            gram = differences @ differences.T
            try:
                solution = np.linalg.solve(gram, np.ones(window))
            except np.linalg.LinAlgError:
                solution = None
            if solution is not None and np.isfinite(solution).all() and solution.sum() != 0:
                gamma = solution / solution.sum()
                # x* = sum_i gamma_i x_i over the window's first `window`
                # iterates; in difference form x* = x_base + D^T w with
                # w_j = sum_{i >= j} gamma_i (the last difference only
                # enters through the Gram matrix).
                weights = np.cumsum(gamma[::-1])[::-1][1:]
                candidate_flat = window_base + weights @ differences[:-1]
                candidate = rescale(candidate_flat.reshape(levels, phases))
                if candidate is not None:
                    candidate_inflow = candidate @ phase_off
                    candidate_residual = grid_residual(candidate, candidate_inflow)
                    if candidate_residual < residual:
                        pi = candidate
                        inflow = candidate_inflow
                        residual = candidate_residual
            completed_windows += 1
            if (
                coarse_enabled
                and completed_windows >= _COARSE_TRIGGER_WINDOWS
                and residual >= tol
                and (
                    corrector is not None
                    or residual > _COARSE_TRIGGER_RESIDUAL * tol
                )
            ):
                if corrector is None:
                    corrector = _CoarseCorrector(
                        context, phase_marginal, phase_off, phase_exit, diag, recycled
                    )
                pi, inflow, residual, accepted = correction_step(pi, inflow, residual)
                if accepted:
                    corrections += 1
            window_base = pi.ravel().copy()
            previous_flat = window_base
            filled = 0
            if residual < best_residual:
                best_pi, best_residual = pi, residual

    if best_residual < residual:
        pi, residual = best_pi, best_residual
        inflow = pi @ phase_off

    flat = np.maximum(context.to_flat(pi), 0.0)
    flat /= flat.sum()
    # Certify against the actual generator matrix (the grid residual is the
    # same balance up to assembly rounding).
    certified = float(np.max(np.abs(flat @ generator))) / scale
    if certified > max(tol * 50, 1e-6):
        raise SolverError(
            f"structured solver did not converge: scaled residual {certified:.2e} "
            f"after {sweeps} sweeps"
        )
    return SteadyStateResult(flat, "structured", sweeps, certified * scale, corrections)
