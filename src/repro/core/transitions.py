"""Transition rules of the GPRS Markov model (Table 1 of the paper).

Every transition out of a generic state ``(n, k, m, r)`` belongs to one of the
event classes below.  The functions in this module produce *transition batches*
-- flat arrays of (source index, target index, rate) -- in a fully vectorised
way so that the sparse generator of chains with hundreds of thousands of
states can be assembled in a few numpy passes.

Event classes (names follow the paper):

``gsm_arrival``
    A new GSM call or an incoming GSM handover is admitted when ``n < N_GSM``;
    rate ``lambda_GSM + lambda_h,GSM``.
``gprs_arrival_on`` / ``gprs_arrival_off``
    A new GPRS session or incoming GPRS handover is admitted when ``m < M``;
    the session starts in the on state with probability ``b/(a+b)`` and in the
    off state with probability ``a/(a+b)``.
``gsm_departure``
    A GSM call completes or hands over out of the cell; rate
    ``n (mu_GSM + mu_h,GSM)``.
``gprs_departure_on`` / ``gprs_departure_off``
    A GPRS session completes or hands over out of the cell; the leaving session
    is in the off state with probability ``r / m`` (rate ``r (mu + mu_h)``) and
    in the on state otherwise (rate ``(m - r)(mu + mu_h)``).
``packet_arrival``
    A data packet arrives at the BSC buffer.  Below the TCP threshold
    (``k <= eta K``) the rate is ``(m - r) lambda_packet``; above the threshold
    the TCP sources are throttled and the rate is capped by the current service
    capacity ``min(N - n, 8k) mu_service``.  Arrivals into a full buffer are
    lost and therefore generate no transition.
``packet_service``
    A data packet finishes transmission; rate ``min(N - n, 8k) mu_service``.
``source_switches_off`` / ``source_switches_on``
    The aggregated MMPP moves to a less / more bursty state; rates
    ``(m - r) a`` and ``r b``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.traffic.units import MAX_TIME_SLOTS_PER_STATION

__all__ = ["TransitionBatch", "enumerate_transitions", "pdch_in_use", "offered_packet_rate"]


@dataclass(frozen=True)
class TransitionBatch:
    """A batch of transitions of one event class.

    Attributes
    ----------
    event:
        Name of the event class (see module docstring).
    source:
        Flat indices of the source states.
    target:
        Flat indices of the target states.
    rate:
        Transition rates; strictly positive entries only.
    """

    event: str
    source: np.ndarray
    target: np.ndarray
    rate: np.ndarray

    def __post_init__(self) -> None:
        if not (self.source.shape == self.target.shape == self.rate.shape):
            raise ValueError("source, target and rate arrays must have identical shapes")

    def __len__(self) -> int:
        return self.source.shape[0]


def pdch_in_use(
    params: GprsModelParameters,
    gsm_calls: np.ndarray,
    buffered_packets: np.ndarray,
) -> np.ndarray:
    """Return the number of PDCHs carrying data in each state.

    With ``k`` packets buffered at most ``8k`` channels can be used (multislot
    limit of 8 time slots per mobile station) and at most ``N - n`` channels are
    not occupied by GSM calls, so the utilisation is ``min(N - n, 8k)``.
    """
    free_channels = params.number_of_channels - np.asarray(gsm_calls)
    multislot_limit = MAX_TIME_SLOTS_PER_STATION * np.asarray(buffered_packets)
    return np.minimum(free_channels, multislot_limit)


def offered_packet_rate(
    params: GprsModelParameters,
    gsm_calls: np.ndarray,
    buffered_packets: np.ndarray,
    sessions: np.ndarray,
    sessions_off: np.ndarray,
) -> np.ndarray:
    """Return the packet arrival rate *offered* to the BSC buffer in each state.

    Below the TCP threshold the offered rate is ``(m - r) lambda_packet``;
    above it the TCP sources are throttled to the current service capacity.
    The offered rate is defined for every state including ``k = K`` (where the
    offered packets are lost); it is the denominator of the packet loss
    probability, Eq. (9).
    """
    uncontrolled = (np.asarray(sessions) - np.asarray(sessions_off)) * params.packet_rate
    capacity = pdch_in_use(params, gsm_calls, buffered_packets) * params.pdch_service_rate
    throttled = np.minimum(uncontrolled, capacity)
    above_threshold = np.asarray(buffered_packets) > params.tcp_threshold_packets
    return np.where(above_threshold, throttled, uncontrolled)


def _batch(
    event: str,
    mask: np.ndarray,
    source: np.ndarray,
    target: np.ndarray,
    rate: np.ndarray,
) -> TransitionBatch:
    """Assemble a batch keeping only entries with a positive rate under ``mask``."""
    keep = mask & (rate > 0)
    return TransitionBatch(
        event=event,
        source=source[keep],
        target=target[keep],
        rate=np.asarray(rate, dtype=float)[keep],
    )


def enumerate_transitions(
    params: GprsModelParameters,
    space: GprsStateSpace,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
) -> list[TransitionBatch]:
    """Return every transition batch of the chain defined by Table 1.

    Parameters
    ----------
    params:
        Model parameters.
    space:
        The state space matching ``params`` (``N_GSM``, ``K``, ``M``).
    gsm_handover_arrival_rate, gprs_handover_arrival_rate:
        Balanced incoming handover rates ``lambda_h,GSM`` and ``lambda_h,GPRS``
        produced by :func:`repro.core.handover.balance_handover_rates`.
    """
    if space.gsm_channels != params.gsm_channels:
        raise ValueError("state space does not match the parameters (GSM channels differ)")
    if space.buffer_size != params.buffer_size:
        raise ValueError("state space does not match the parameters (buffer size differs)")
    if space.max_sessions != params.max_gprs_sessions:
        raise ValueError("state space does not match the parameters (session cap differs)")
    if gsm_handover_arrival_rate < 0 or gprs_handover_arrival_rate < 0:
        raise ValueError("handover arrival rates must be non-negative")

    states = space.all_states()
    index = np.arange(space.size, dtype=np.int64)
    n = states.gsm_calls
    k = states.buffered_packets
    m = states.gprs_sessions
    r = states.sessions_off

    gsm_arrival_rate = params.gsm_arrival_rate + gsm_handover_arrival_rate
    gprs_arrival_rate = params.gprs_arrival_rate + gprs_handover_arrival_rate
    gsm_departure_rate = params.gsm_completion_rate + params.gsm_handover_departure_rate
    gprs_departure_rate = params.gprs_completion_rate + params.gprs_handover_departure_rate
    start_on = params.probability_session_starts_on
    start_off = 1.0 - start_on

    batches: list[TransitionBatch] = []

    # --- GSM call arrivals (new calls + incoming handovers) ------------------
    mask = n < space.gsm_channels
    target = np.where(mask, space.index(np.minimum(n + 1, space.gsm_channels), k, m, r), 0)
    rate = np.full(space.size, gsm_arrival_rate)
    batches.append(_batch("gsm_arrival", mask, index, target, rate))

    # --- GPRS session arrivals -----------------------------------------------
    mask = m < space.max_sessions
    m_next = np.minimum(m + 1, space.max_sessions)
    # New session starts in the on state: r unchanged.
    target = np.where(mask, space.index(n, k, m_next, np.minimum(r, m_next)), 0)
    rate = np.full(space.size, start_on * gprs_arrival_rate)
    batches.append(_batch("gprs_arrival_on", mask, index, target, rate))
    # New session starts in the off state: r increases by one.
    r_next = np.minimum(r + 1, m_next)
    target = np.where(mask, space.index(n, k, m_next, r_next), 0)
    rate = np.full(space.size, start_off * gprs_arrival_rate)
    batches.append(_batch("gprs_arrival_off", mask, index, target, rate))

    # --- GSM call departures (completion + outgoing handover) ----------------
    mask = n > 0
    target = np.where(mask, space.index(np.maximum(n - 1, 0), k, m, r), 0)
    rate = n * gsm_departure_rate
    batches.append(_batch("gsm_departure", mask, index, target, rate))

    # --- GPRS session departures ---------------------------------------------
    # The leaving session is in the off state with probability r / m:
    # rate r * (mu_GPRS + mu_h,GPRS) towards (m - 1, r - 1).
    mask = (m > 0) & (r > 0)
    m_prev = np.maximum(m - 1, 0)
    target = np.where(mask, space.index(n, k, m_prev, np.maximum(r - 1, 0)), 0)
    rate = r * gprs_departure_rate
    batches.append(_batch("gprs_departure_off", mask, index, target, rate))
    # The leaving session is in the on state with probability (m - r) / m:
    # rate (m - r) * (mu_GPRS + mu_h,GPRS) towards (m - 1, r).
    mask = (m > 0) & (r < m)
    target = np.where(mask, space.index(n, k, m_prev, np.minimum(r, m_prev)), 0)
    rate = (m - r) * gprs_departure_rate
    batches.append(_batch("gprs_departure_on", mask, index, target, rate))

    # --- Packet arrivals -------------------------------------------------------
    # Only states with free buffer space generate an arrival transition; the
    # offered rate in full-buffer states contributes to the loss probability but
    # not to the dynamics.
    mask = k < space.buffer_size
    k_next = np.minimum(k + 1, space.buffer_size)
    target = np.where(mask, space.index(n, k_next, m, r), 0)
    rate = offered_packet_rate(params, n, k, m, r)
    batches.append(_batch("packet_arrival", mask, index, target, rate))

    # --- Packet service --------------------------------------------------------
    service_channels = pdch_in_use(params, n, k)
    mask = service_channels > 0
    target = np.where(mask, space.index(n, np.maximum(k - 1, 0), m, r), 0)
    rate = service_channels * params.pdch_service_rate
    batches.append(_batch("packet_service", mask, index, target, rate))

    # --- Aggregated MMPP phase changes ----------------------------------------
    # One of the (m - r) on sources switches off (less bursty).
    mask = r < m
    target = np.where(mask, space.index(n, k, m, np.minimum(r + 1, m)), 0)
    rate = (m - r) * params.on_to_off_rate
    batches.append(_batch("source_switches_off", mask, index, target, rate))
    # One of the r off sources switches on (more bursty).
    mask = r > 0
    target = np.where(mask, space.index(n, k, m, np.maximum(r - 1, 0)), 0)
    rate = r * params.off_to_on_rate
    batches.append(_batch("source_switches_on", mask, index, target, rate))

    return batches
