"""Handover-flow balancing (Eqs. (4)-(5) of the paper).

The model considers a single cell, so the rate of handovers *into* the cell is
unknown a priori: it depends on how many users the neighbouring cells hold,
which in a homogeneous cluster equals the number of users in the modelled cell
itself.  The paper balances the flows with the fixed-point iteration of
Marsan et al.: assume an incoming handover rate, solve the Erlang-loss model
for the number of active users, compute the resulting *outgoing* handover rate
``mu_h * E[N]``, and feed it back as the new incoming rate until both agree.

GSM calls and GPRS sessions are balanced independently because they occupy
disjoint Erlang-loss systems (GSM has preemptive priority over the shared
channels, and GPRS admission is limited by the session cap ``M`` rather than by
channel availability).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import GprsModelParameters
from repro.queueing.erlang import ErlangLossSystem
from repro.queueing.fixed_point import fixed_point_iteration

__all__ = [
    "HandoverBalance",
    "balance_handover_rates",
    "cell_outgoing_rates",
    "class_outgoing_rate",
]


@dataclass(frozen=True)
class HandoverBalance:
    """Result of the handover balancing iteration.

    Attributes
    ----------
    gsm_handover_arrival_rate:
        Balanced incoming handover rate of GSM calls, ``lambda_h,GSM``.
    gprs_handover_arrival_rate:
        Balanced incoming handover rate of GPRS sessions, ``lambda_h,GPRS``.
    gsm_iterations / gprs_iterations:
        Number of fixed-point iterations used for each class.
    converged:
        Whether both iterations met the tolerance.
    """

    gsm_handover_arrival_rate: float
    gprs_handover_arrival_rate: float
    gsm_iterations: int
    gprs_iterations: int
    converged: bool

    @classmethod
    def pinned(cls, gsm_rate: float, gprs_rate: float) -> "HandoverBalance":
        """Return a balance representing externally imposed incoming rates.

        The network layer (:mod:`repro.network`) computes each cell's incoming
        handover rates from its neighbours' outgoing flows rather than from
        the single-cell homogeneity assumption; the resulting rates are
        injected into the per-cell model through this constructor (zero
        iterations, converged by definition).
        """
        if gsm_rate < 0 or gprs_rate < 0:
            raise ValueError("pinned handover rates must be non-negative")
        return cls(
            gsm_handover_arrival_rate=float(gsm_rate),
            gprs_handover_arrival_rate=float(gprs_rate),
            gsm_iterations=0,
            gprs_iterations=0,
            converged=True,
        )


def class_outgoing_rate(
    new_arrival_rate: float,
    completion_rate: float,
    handover_departure_rate: float,
    servers: int,
    incoming_rate: float,
) -> float:
    """Outgoing handover rate of one traffic class given its incoming rate.

    This is one application of the map whose fixed point Eqs. (4)-(5) seek:
    ``mu_h * E[N]`` where ``E[N]`` is the mean occupancy of the Erlang-loss
    system fed by ``new_arrival_rate + incoming_rate``.  The single-cell
    balance iterates it against itself; the network layer evaluates it per
    cell and routes the result to the neighbours.  Transient negative
    incoming rates (e.g. an Aitken overshoot) are clamped to zero, which
    leaves every non-negative fixed point unchanged.
    """
    system = ErlangLossSystem(
        arrival_rate=new_arrival_rate + max(0.0, float(incoming_rate)),
        service_rate=completion_rate + handover_departure_rate,
        servers=servers,
    )
    return handover_departure_rate * system.mean_number_in_system()


def cell_outgoing_rates(
    params: GprsModelParameters,
    gsm_incoming_rate: float,
    gprs_incoming_rate: float,
) -> tuple[float, float]:
    """Return ``(gsm_out, gprs_out)`` of one cell given its incoming rates.

    Uses the same Erlang-loss closed forms (and the same arithmetic) as
    :func:`balance_handover_rates`, so in a homogeneous network the
    network-wide fixed point coincides with the paper's single-cell one.
    """
    gsm_out = class_outgoing_rate(
        params.gsm_arrival_rate,
        params.gsm_completion_rate,
        params.gsm_handover_departure_rate,
        params.gsm_channels if params.gsm_channels >= 1 else 1,
        gsm_incoming_rate,
    )
    gprs_out = class_outgoing_rate(
        params.gprs_arrival_rate,
        params.gprs_completion_rate,
        params.gprs_handover_departure_rate,
        params.max_gprs_sessions,
        gprs_incoming_rate,
    )
    return gsm_out, gprs_out


def _balance_single_class(
    new_arrival_rate: float,
    completion_rate: float,
    handover_departure_rate: float,
    servers: int,
    *,
    tol: float,
    max_iterations: int,
    initial: float | None = None,
) -> tuple[float, int, bool]:
    """Balance the handover flow of one traffic class (GSM or GPRS).

    The fixed point maps an assumed incoming handover rate ``x`` to the
    outgoing handover rate ``mu_h * E[N(x)]`` where ``E[N(x)]`` is the mean
    number of busy servers of the Erlang-loss system with total arrival rate
    ``lambda + x`` and total departure rate ``mu + mu_h``.

    ``initial`` seeds the iteration (the paper's ``lambda_h = lambda`` is used
    when it is ``None``); a good seed -- e.g. the balanced rate of an adjacent
    sweep point -- cuts the iteration count without changing the fixed point.
    """
    if new_arrival_rate == 0.0:
        return 0.0, 0, True

    def outgoing_handover_rate(incoming: np.ndarray) -> float:
        return class_outgoing_rate(
            new_arrival_rate,
            completion_rate,
            handover_departure_rate,
            servers,
            float(incoming[0]),
        )

    seed = new_arrival_rate if initial is None or initial < 0 else initial
    result = fixed_point_iteration(
        outgoing_handover_rate,
        initial=seed,
        tol=tol,
        max_iterations=max_iterations,
        accelerate=True,
    )
    return float(result.value[0]), result.iterations, result.converged


def balance_handover_rates(
    params: GprsModelParameters,
    *,
    tol: float = 1e-10,
    max_iterations: int = 500,
    initial_gsm_handover_rate: float | None = None,
    initial_gprs_handover_rate: float | None = None,
) -> HandoverBalance:
    """Balance incoming and outgoing handover flows for GSM calls and GPRS sessions.

    The iteration is initialised with ``lambda_h = lambda`` as in the paper and
    uses the closed-form Erlang-loss solution (Eqs. (2)-(3)) at every step.
    ``initial_gsm_handover_rate`` / ``initial_gprs_handover_rate`` override the
    paper's seed: arrival-rate sweeps pass the balanced rates of the previous
    point, which leaves the fixed point (and therefore the result, up to
    ``tol``) unchanged while converging in far fewer iterations.
    """
    gsm_rate, gsm_iterations, gsm_converged = _balance_single_class(
        params.gsm_arrival_rate,
        params.gsm_completion_rate,
        params.gsm_handover_departure_rate,
        params.gsm_channels if params.gsm_channels >= 1 else 1,
        tol=tol,
        max_iterations=max_iterations,
        initial=initial_gsm_handover_rate,
    )
    gprs_rate, gprs_iterations, gprs_converged = _balance_single_class(
        params.gprs_arrival_rate,
        params.gprs_completion_rate,
        params.gprs_handover_departure_rate,
        params.max_gprs_sessions,
        tol=tol,
        max_iterations=max_iterations,
        initial=initial_gprs_handover_rate,
    )
    return HandoverBalance(
        gsm_handover_arrival_rate=gsm_rate,
        gprs_handover_arrival_rate=gprs_rate,
        gsm_iterations=gsm_iterations,
        gprs_iterations=gprs_iterations,
        converged=gsm_converged and gprs_converged,
    )
