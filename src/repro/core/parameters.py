"""Parameters of the GPRS Markov model (Tables 2 and 3 of the paper).

:class:`GprsModelParameters` collects every tunable of the model:

* the cell configuration -- total channels ``N``, reserved PDCHs ``N_GPRS``,
  BSC buffer size ``K``, admission cap ``M``, channel coding scheme;
* the user behaviour -- total call arrival rate, fraction of GPRS users, GSM
  call duration and dwell times, GPRS session dwell time;
* the GPRS traffic model -- a :class:`~repro.traffic.session.PacketSessionModel`
  (traffic models 1-3 of Table 3 are available as presets);
* the TCP flow-control threshold ``eta``.

The class exposes every derived rate the transition table needs so that the
generator construction never re-derives arithmetic from raw parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.traffic.presets import TRAFFIC_MODEL_3, TrafficModelPreset
from repro.traffic.session import PacketSessionModel
from repro.traffic.units import CODING_SCHEME_RATES_KBIT_S, pdch_service_rate

__all__ = ["GprsModelParameters"]


@dataclass(frozen=True)
class GprsModelParameters:
    """Full parameter set of the GPRS cell model.

    Parameters
    ----------
    total_call_arrival_rate:
        Combined arrival rate of new GSM calls and GPRS session requests in
        calls per second (the x-axis of every figure in the paper).
    gprs_fraction:
        Fraction of arriving calls that are GPRS session requests (0.05 for the
        base setting of 5% GPRS users).
    number_of_channels:
        Total physical channels ``N`` in the cell (20 in Table 2).
    reserved_pdch:
        Channels permanently reserved as PDCHs, ``N_GPRS``.
    buffer_size:
        BSC buffer capacity ``K`` in data packets.
    max_gprs_sessions:
        Admission-control limit ``M`` on concurrently active GPRS sessions.
    traffic:
        The 3GPP packet-session model describing one GPRS user.
    coding_scheme:
        GPRS channel coding scheme, ``"CS-1"`` .. ``"CS-4"``; determines the
        per-PDCH transfer rate (CS-2, 13.4 kbit/s, in the paper).
    mean_gsm_call_duration_s:
        ``1 / mu_GSM`` (120 s).
    mean_gsm_dwell_time_s:
        ``1 / mu_h,GSM`` (60 s).
    mean_gprs_dwell_time_s:
        ``1 / mu_h,GPRS`` (120 s).
    tcp_threshold:
        TCP flow-control threshold ``eta`` in (0, 1]: when the buffer holds
        more than ``eta * K`` packets the packet arrival rate is capped by the
        service rate; ``eta = 1`` disables flow control.
    block_error_rate:
        RLC block error probability of the radio link.  The paper assumes an
        error-free link (``0.0``, the default); a positive value degrades the
        per-PDCH service rate to the selective-repeat ARQ goodput
        ``rate * (1 - BLER)``, implementing the retransmission cost the paper
        defers to future work (see :mod:`repro.radio`).
    """

    total_call_arrival_rate: float
    gprs_fraction: float = 0.05
    number_of_channels: int = 20
    reserved_pdch: int = 1
    buffer_size: int = 100
    max_gprs_sessions: int = 20
    traffic: PacketSessionModel = TRAFFIC_MODEL_3.session
    coding_scheme: str = "CS-2"
    mean_gsm_call_duration_s: float = 120.0
    mean_gsm_dwell_time_s: float = 60.0
    mean_gprs_dwell_time_s: float = 120.0
    tcp_threshold: float = 0.7
    block_error_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.total_call_arrival_rate < 0:
            raise ValueError("total call arrival rate must be non-negative")
        if not 0.0 <= self.gprs_fraction <= 1.0:
            raise ValueError("gprs_fraction must be between 0 and 1")
        if self.number_of_channels < 1:
            raise ValueError("the cell must have at least one physical channel")
        if not 0 <= self.reserved_pdch < self.number_of_channels:
            raise ValueError(
                "reserved_pdch must be non-negative and leave at least one GSM channel"
            )
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be at least 1")
        if self.max_gprs_sessions < 1:
            raise ValueError("max_gprs_sessions must be at least 1")
        if self.coding_scheme not in CODING_SCHEME_RATES_KBIT_S:
            raise ValueError(
                f"unknown coding scheme {self.coding_scheme!r}; expected one of "
                f"{sorted(CODING_SCHEME_RATES_KBIT_S)}"
            )
        if self.mean_gsm_call_duration_s <= 0:
            raise ValueError("mean GSM call duration must be positive")
        if self.mean_gsm_dwell_time_s <= 0:
            raise ValueError("mean GSM dwell time must be positive")
        if self.mean_gprs_dwell_time_s <= 0:
            raise ValueError("mean GPRS dwell time must be positive")
        if not 0.0 < self.tcp_threshold <= 1.0:
            raise ValueError("tcp_threshold (eta) must be in (0, 1]")
        if not 0.0 <= self.block_error_rate < 1.0:
            raise ValueError("block_error_rate must be in [0, 1)")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_traffic_model(
        cls,
        preset: TrafficModelPreset,
        total_call_arrival_rate: float,
        **overrides,
    ) -> "GprsModelParameters":
        """Build parameters from a Table 3 traffic model preset.

        The preset supplies both the session parameters and the admission cap
        ``M``; anything else follows the Table 2 base setting unless overridden
        via keyword arguments.
        """
        values = {
            "total_call_arrival_rate": total_call_arrival_rate,
            "traffic": preset.session,
            "max_gprs_sessions": preset.max_active_sessions,
        }
        values.update(overrides)
        return cls(**values)

    def with_arrival_rate(self, total_call_arrival_rate: float) -> "GprsModelParameters":
        """Return a copy of these parameters at a different call arrival rate."""
        return replace(self, total_call_arrival_rate=total_call_arrival_rate)

    def replace(self, **overrides) -> "GprsModelParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    # Channel configuration
    # ------------------------------------------------------------------ #
    @property
    def gsm_channels(self) -> int:
        """Number of channels usable by GSM voice calls, ``N_GSM = N - N_GPRS``."""
        return self.number_of_channels - self.reserved_pdch

    @property
    def pdch_service_rate(self) -> float:
        """Packet service rate of one PDCH in packets per second (``mu_service``).

        With a non-zero ``block_error_rate`` the rate is the selective-repeat
        ARQ goodput: the error-free rate scaled by ``1 - BLER``.
        """
        error_free = pdch_service_rate(self.coding_scheme, self.traffic.packet_size_bytes)
        return error_free * (1.0 - self.block_error_rate)

    @property
    def pdch_rate_kbit_s(self) -> float:
        """Per-PDCH transfer rate of the configured coding scheme in kbit/s.

        This is the nominal (error-free) rate of the coding scheme; see
        :attr:`pdch_service_rate` for the ARQ goodput.
        """
        return CODING_SCHEME_RATES_KBIT_S[self.coding_scheme]

    @property
    def expected_block_transmissions(self) -> float:
        """Expected RLC transmissions per radio block, ``1 / (1 - BLER)``."""
        return 1.0 / (1.0 - self.block_error_rate)

    # ------------------------------------------------------------------ #
    # Arrival rates of users
    # ------------------------------------------------------------------ #
    @property
    def gsm_arrival_rate(self) -> float:
        """Arrival rate of new GSM voice calls, ``lambda_GSM``."""
        return self.total_call_arrival_rate * (1.0 - self.gprs_fraction)

    @property
    def gprs_arrival_rate(self) -> float:
        """Arrival rate of new GPRS session requests, ``lambda_GPRS``."""
        return self.total_call_arrival_rate * self.gprs_fraction

    # ------------------------------------------------------------------ #
    # Departure rates of users
    # ------------------------------------------------------------------ #
    @property
    def gsm_completion_rate(self) -> float:
        """GSM call completion rate ``mu_GSM = 1 / 120 s`` by default."""
        return 1.0 / self.mean_gsm_call_duration_s

    @property
    def gsm_handover_departure_rate(self) -> float:
        """GSM handover-out rate ``mu_h,GSM = 1 / dwell time``."""
        return 1.0 / self.mean_gsm_dwell_time_s

    @property
    def gprs_completion_rate(self) -> float:
        """GPRS session completion rate ``mu_GPRS`` derived from the traffic model."""
        return self.traffic.session_departure_rate

    @property
    def gprs_handover_departure_rate(self) -> float:
        """GPRS handover-out rate ``mu_h,GPRS = 1 / dwell time``."""
        return 1.0 / self.mean_gprs_dwell_time_s

    # ------------------------------------------------------------------ #
    # Traffic process of one GPRS session (IPP)
    # ------------------------------------------------------------------ #
    @property
    def packet_rate(self) -> float:
        """Packet generation rate of a session while in a packet call, ``lambda_packet``."""
        return self.traffic.packet_rate

    @property
    def on_to_off_rate(self) -> float:
        """IPP on -> off rate ``a``."""
        return self.traffic.on_to_off_rate

    @property
    def off_to_on_rate(self) -> float:
        """IPP off -> on rate ``b``."""
        return self.traffic.off_to_on_rate

    @property
    def probability_session_starts_on(self) -> float:
        """Probability ``b / (a + b)`` that a freshly admitted session is in a packet call."""
        return self.off_to_on_rate / (self.on_to_off_rate + self.off_to_on_rate)

    @property
    def tcp_threshold_packets(self) -> int:
        """Buffer level ``floor(eta * K)`` above which the arrival rate is capped."""
        return int(self.tcp_threshold * self.buffer_size)

    # ------------------------------------------------------------------ #
    # State-space bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def state_space_size(self) -> int:
        """Number of states ``(M+1)(M+2)(N_GSM+1)(K+1) / 2`` of the aggregated chain."""
        m = self.max_gprs_sessions
        return (
            (m + 1) * (m + 2) // 2 * (self.gsm_channels + 1) * (self.buffer_size + 1)
        )

    def describe(self) -> dict[str, float | str]:
        """Return the Table 2 style summary of this configuration."""
        return {
            "number of physical channels N": self.number_of_channels,
            "number of fixed PDCHs N_GPRS": self.reserved_pdch,
            "BSC buffer size K [packets]": self.buffer_size,
            "transfer rate for one PDCH [kbit/s]": self.pdch_rate_kbit_s,
            "coding scheme": self.coding_scheme,
            "average GSM voice call duration 1/mu_GSM [s]": self.mean_gsm_call_duration_s,
            "average GSM voice call dwell time 1/mu_h,GSM [s]": self.mean_gsm_dwell_time_s,
            "average GPRS session dwell time 1/mu_h,GPRS [s]": self.mean_gprs_dwell_time_s,
            "percentage of GSM users": 100.0 * (1.0 - self.gprs_fraction),
            "percentage of GPRS users": 100.0 * self.gprs_fraction,
            "maximum number of active GPRS sessions M": self.max_gprs_sessions,
            "TCP flow control threshold eta": self.tcp_threshold,
        }
