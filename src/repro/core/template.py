"""Generator templates: frozen sparsity patterns for arrival-rate sweeps.

Every figure of the paper sweeps the call arrival rate over one fixed
``(N_GSM, K, M)`` state-space shape.  Between two sweep points the transition
*structure* of the chain never changes -- only the rates of the three
arrival event classes do, because the swept rate enters Table 1 solely through

* ``gsm_arrival``        with rate ``lambda_GSM  + lambda_h,GSM``,
* ``gprs_arrival_on``    with rate ``p_on  (lambda_GPRS + lambda_h,GPRS)``,
* ``gprs_arrival_off``   with rate ``p_off (lambda_GPRS + lambda_h,GPRS)``,

all of which are *state-independent scalars*.  Every other event class
(departures, packet arrivals/services, on/off switches) depends only on the
fixed part of the configuration.  Because each of the ten event classes moves
exactly one state coordinate in one direction, no two classes ever produce the
same ``(source, target)`` pair, so every stored entry of the CSR generator is
fed by exactly one event class.

:class:`GeneratorTemplate` exploits this: it enumerates the transitions
**once** per state-space shape, freezes the canonical CSR layouts produced by
:func:`~repro.core.generator.assemble_generator` (both the off-diagonal
intermediate and the final generator), and records for every stored entry
whether it is a fixed rate, one of the three arrival scalars, or a diagonal
element.  Producing the generator for a new sweep point then only

1. copies the precomputed off-diagonal ``data`` array,
2. overwrites the arrival slots with the three new scalars,
3. recomputes the exit rates with the exact ``sum(axis=1)`` call
   :func:`~repro.core.generator.assemble_generator` uses, and
4. scatters off-diagonal values and negated exit rates into the final layout,

with no re-enumeration, no COO assembly and no sort.  Running the *same*
scipy kernel over the *same* element layout is what makes the rewrite
reproduce :func:`~repro.core.generator.build_generator` **bitwise** (same
``indptr``, ``indices`` and ``data``), not merely within rounding: modern
CSR sum kernels keep several SIMD partial sums, so even inserting an exact
zero into a row would change the association order and drift the last ulp.

The guarantee holds for any configuration whose arrival-class scalars are
strictly positive (every sweep the paper runs); at a boundary point where a
scalar is exactly zero the template stores explicit zero entries instead of
dropping them -- structurally a superset whose diagonal can differ from a
fresh assembly at machine rounding, but nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.generator import assemble_generator
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.transitions import enumerate_transitions
from repro.obs.metrics import current_registry
from repro.obs.trace import current_tracer

__all__ = ["GeneratorTemplate"]

#: Arrival rate used for the reference enumeration.  Any strictly positive
#: value yields the same sparsity pattern; 1.0 keeps the reference rates exact.
_REFERENCE_ARRIVAL_RATE = 1.0

#: Event-class codes stored per off-diagonal entry.
_FIXED, _GSM_ARRIVAL, _GPRS_ON, _GPRS_OFF = 0, 1, 2, 3
_EVENT_CODES = {
    "gsm_arrival": _GSM_ARRIVAL,
    "gprs_arrival_on": _GPRS_ON,
    "gprs_arrival_off": _GPRS_OFF,
}


def _fixed_fingerprint(params: GprsModelParameters) -> tuple:
    """Everything a template depends on: the configuration minus the swept rate."""
    traffic = params.traffic
    return (
        params.gprs_fraction,
        params.number_of_channels,
        params.reserved_pdch,
        params.buffer_size,
        params.max_gprs_sessions,
        params.coding_scheme,
        params.mean_gsm_call_duration_s,
        params.mean_gsm_dwell_time_s,
        params.mean_gprs_dwell_time_s,
        params.tcp_threshold,
        params.block_error_rate,
        traffic.packet_calls_per_session,
        traffic.reading_time_s,
        traffic.packets_per_packet_call,
        traffic.packet_interarrival_s,
        traffic.packet_size_bytes,
    )


@dataclass(frozen=True)
class GeneratorTemplate:
    """Reusable CSR skeleton of the GPRS generator for one configuration shape.

    Build once with :meth:`build`, then call :meth:`generator` for every sweep
    point; only the ``data`` arrays are rewritten.  Instances are immutable
    and safe to share across the points of a sweep within one process (the
    returned matrices share the frozen ``indices``/``indptr`` arrays, which no
    solver in this package mutates).
    """

    space: GprsStateSpace
    _fingerprint: tuple = field(repr=False)
    #: Final generator layout (off-diagonal entries plus diagonal slots).
    _indptr: np.ndarray = field(repr=False)
    _indices: np.ndarray = field(repr=False)
    #: Off-diagonal intermediate layout (matches assemble_generator's).
    _off_indptr: np.ndarray = field(repr=False)
    _off_indices: np.ndarray = field(repr=False)
    #: Fixed rates in off-diagonal CSR order (0.0 at arrival slots).
    _off_base_data: np.ndarray = field(repr=False)
    #: Arrival-class slot positions in off-diagonal CSR order.
    _off_gsm_slots: np.ndarray = field(repr=False)
    _off_gprs_on_slots: np.ndarray = field(repr=False)
    _off_gprs_off_slots: np.ndarray = field(repr=False)
    #: Scatter maps into the final ``data`` array.
    _offdiag_slots: np.ndarray = field(repr=False)
    _diag_slots: np.ndarray = field(repr=False)
    _diag_rows: np.ndarray = field(repr=False)

    #: Frozen array fields, in construction order -- also the payload layout
    #: of a template artifact in the cross-process store.
    _ARRAY_FIELDS = (
        "_indptr",
        "_indices",
        "_off_indptr",
        "_off_indices",
        "_off_base_data",
        "_off_gsm_slots",
        "_off_gprs_on_slots",
        "_off_gprs_off_slots",
        "_offdiag_slots",
        "_diag_slots",
        "_diag_rows",
    )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, params: GprsModelParameters, space: GprsStateSpace | None = None
    ) -> "GeneratorTemplate":
        """Enumerate the chain once and freeze its CSR layouts.

        ``params`` supplies the fixed part of the configuration; its own
        arrival rate is irrelevant (a strictly positive reference rate is used
        so that every arrival transition is present in the pattern).

        When an ambient artifact store is active the enumeration is skipped
        entirely on a hit: the frozen CSR arrays are loaded bytes-for-bytes
        (counted under ``template.store_hits`` instead of
        ``template.builds``), so a fresh process pays one archive read where
        a cold one pays the full state-space enumeration.  The rewrite path
        is a pure function of these arrays, so a store-served template
        produces bitwise-identical generators.
        """
        if space is None:
            space = GprsStateSpace(
                gsm_channels=params.gsm_channels,
                buffer_size=params.buffer_size,
                max_sessions=params.max_gprs_sessions,
            )
        # Lazy import: this module loads during ``import repro`` (via
        # core.model), before the package finishes initialising.
        from repro.store.artifacts import artifact_key, current_store

        store = current_store()
        key = None
        if store is not None:
            key = artifact_key(
                "template",
                {
                    "fingerprint": [repr(part) for part in _fixed_fingerprint(params)],
                    "shape": [space.gsm_channels, space.buffer_size, space.max_sessions],
                },
            )
            loaded = store.get(key)
            if loaded is not None:
                template = cls._from_arrays(params, space, loaded[0])
                if template is not None:
                    current_registry().count("template.store_hits")
                    return template
        current_registry().count("template.builds")
        with current_tracer().span("template.build"):
            template = cls._build(params, space)
        if store is not None:
            try:
                store.put(
                    key,
                    {name: getattr(template, name) for name in cls._ARRAY_FIELDS},
                )
            except OSError:
                pass  # an unwritable store never blocks a solve
        return template

    @classmethod
    def _from_arrays(
        cls,
        params: GprsModelParameters,
        space: GprsStateSpace,
        arrays: dict,
    ) -> "GeneratorTemplate | None":
        """Rebuild a template from stored arrays (``None`` if incomplete)."""
        try:
            fields = {name: arrays[name] for name in cls._ARRAY_FIELDS}
        except KeyError:
            return None
        return cls(space=space, _fingerprint=_fixed_fingerprint(params), **fields)

    @classmethod
    def _build(
        cls, params: GprsModelParameters, space: GprsStateSpace | None
    ) -> "GeneratorTemplate":
        if space is None:
            space = GprsStateSpace(
                gsm_channels=params.gsm_channels,
                buffer_size=params.buffer_size,
                max_sessions=params.max_gprs_sessions,
            )
        reference = params.with_arrival_rate(_REFERENCE_ARRIVAL_RATE)
        batches = enumerate_transitions(
            reference,
            space,
            gsm_handover_arrival_rate=0.0,
            gprs_handover_arrival_rate=0.0,
        )
        reference_generator = assemble_generator(batches, space.size)
        indptr = reference_generator.indptr.copy()
        indices = reference_generator.indices.copy()
        nnz = indices.shape[0]

        # Concatenated COO view of the off-diagonal entries, with one event
        # class per entry (the ten classes never produce duplicate pairs).
        rows_list, cols_list, fixed_list, class_list = [], [], [], []
        for batch in batches:
            if len(batch) == 0:
                continue
            code = _EVENT_CODES.get(batch.event, _FIXED)
            rows_list.append(batch.source)
            cols_list.append(batch.target)
            class_list.append(np.full(len(batch), code, dtype=np.int8))
            fixed_list.append(
                batch.rate if code == _FIXED else np.zeros(len(batch))
            )
        if rows_list:
            coo_row = np.concatenate(rows_list)
            coo_col = np.concatenate(cols_list)
            coo_fixed = np.concatenate(fixed_list)
            coo_class = np.concatenate(class_list)
        else:  # pragma: no cover - degenerate single-state chain
            coo_row = np.empty(0, dtype=np.int64)
            coo_col = np.empty(0, dtype=np.int64)
            coo_fixed = np.empty(0, dtype=float)
            coo_class = np.empty(0, dtype=np.int8)

        # Canonical CSR order of the off-diagonal pattern is unique, so a
        # matrix carrying each entry's COO position maps pattern slots back to
        # the enumeration (positions are offset by one so no stored value is
        # zero -- there are no duplicates, hence no summing, to disturb them).
        order = sp.csr_matrix(
            (np.arange(1, coo_row.shape[0] + 1, dtype=np.float64), (coo_row, coo_col)),
            shape=(space.size, space.size),
        )
        order.sum_duplicates()
        order.sort_indices()
        coo_position = np.rint(order.data).astype(np.int64) - 1
        off_indptr = order.indptr.copy()
        off_indices = order.indices.copy()

        # Slots of the final pattern: the diagonal entries are exactly those
        # with column == row (assemble_generator forbids self-loops), and the
        # off-diagonal slots appear in the same canonical order as ``order``.
        slot_row = np.repeat(
            np.arange(space.size, dtype=np.int64), np.diff(indptr).astype(np.int64)
        )
        is_diag = indices == slot_row
        offdiag_slots = np.flatnonzero(~is_diag)
        if offdiag_slots.shape[0] != coo_position.shape[0]:  # pragma: no cover
            raise AssertionError("off-diagonal pattern does not match the enumeration")

        return cls(
            space=space,
            _fingerprint=_fixed_fingerprint(params),
            _indptr=indptr,
            _indices=indices,
            _off_indptr=off_indptr,
            _off_indices=off_indices,
            _off_base_data=coo_fixed[coo_position],
            _off_gsm_slots=np.flatnonzero(coo_class[coo_position] == _GSM_ARRIVAL),
            _off_gprs_on_slots=np.flatnonzero(coo_class[coo_position] == _GPRS_ON),
            _off_gprs_off_slots=np.flatnonzero(coo_class[coo_position] == _GPRS_OFF),
            _offdiag_slots=offdiag_slots,
            _diag_slots=np.flatnonzero(is_diag),
            _diag_rows=slot_row[is_diag],
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def number_of_states(self) -> int:
        return self.space.size

    @property
    def nnz(self) -> int:
        """Stored entries of the templated generator (including the diagonal)."""
        return int(self._indices.shape[0])

    def matches(self, params: GprsModelParameters) -> bool:
        """True when ``params`` differs from the template only in its arrival rate."""
        return _fixed_fingerprint(params) == self._fingerprint

    @staticmethod
    def fingerprint_of(params: GprsModelParameters) -> tuple:
        """The hashable fixed-configuration key two templated sweeps share.

        Two parameter sets with equal fingerprints can share one template
        (and one structured-solver context); only their total call arrival
        rate and handover rates may differ.
        """
        return _fixed_fingerprint(params)

    # ------------------------------------------------------------------ #
    # Per-point rewrite
    # ------------------------------------------------------------------ #
    def generator(
        self,
        params: GprsModelParameters,
        *,
        gsm_handover_arrival_rate: float,
        gprs_handover_arrival_rate: float,
    ) -> sp.csr_matrix:
        """Return the generator for one sweep point by rewriting ``data`` only.

        ``params`` must share the template's fixed configuration (checked);
        the handover arrival rates are the balanced values of
        :func:`~repro.core.handover.balance_handover_rates`, exactly as for
        :func:`~repro.core.generator.build_generator`.
        """
        if not self.matches(params):
            raise ValueError(
                "parameters do not match the template (only the total call "
                "arrival rate may vary across a templated sweep)"
            )
        if gsm_handover_arrival_rate < 0 or gprs_handover_arrival_rate < 0:
            raise ValueError("handover arrival rates must be non-negative")
        current_registry().count("template.rewrites")

        # Identical arithmetic to enumerate_transitions, so the scalars are
        # bitwise-equal to the rates a fresh enumeration would produce.
        gsm_scale = params.gsm_arrival_rate + gsm_handover_arrival_rate
        gprs_scale = params.gprs_arrival_rate + gprs_handover_arrival_rate
        start_on = params.probability_session_starts_on

        off_data = self._off_base_data.copy()
        off_data[self._off_gsm_slots] = gsm_scale
        off_data[self._off_gprs_on_slots] = start_on * gprs_scale
        off_data[self._off_gprs_off_slots] = (1.0 - start_on) * gprs_scale

        # Same element layout and the same scipy reduction as
        # assemble_generator's ``off_diagonal.sum(axis=1)`` => bitwise-equal
        # exit rates.
        off_diagonal = sp.csr_matrix(
            (off_data, self._off_indices, self._off_indptr),
            shape=(self.space.size, self.space.size),
            copy=False,
        )
        off_diagonal.has_sorted_indices = True
        off_diagonal.has_canonical_format = True
        exit_rates = np.asarray(off_diagonal.sum(axis=1)).ravel()

        # The canonical merge of ``off_diagonal - diags(exit_rates)`` keeps
        # off-diagonal entries in order and yields ``0 - exit`` on the
        # diagonal; scatter both directly into the frozen final layout.
        data = np.empty(self.nnz, dtype=np.float64)
        data[self._offdiag_slots] = off_data
        data[self._diag_slots] = 0.0 - exit_rates[self._diag_rows]

        matrix = sp.csr_matrix(
            (data, self._indices, self._indptr),
            shape=(self.space.size, self.space.size),
            copy=False,
        )
        # The frozen layout is canonical; skip scipy's O(nnz) re-checks.
        matrix.has_sorted_indices = True
        matrix.has_canonical_format = True
        return matrix
