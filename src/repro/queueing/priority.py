"""Preemptive-priority channel sharing between voice and data.

The central resource-sharing rule of the paper is that *GSM voice has
preemptive priority over GPRS data* on the on-demand channels: a voice call
arriving while data is being transferred simply takes the channel back.  This
module isolates that mechanism in a two-class loss/processor-sharing hybrid
that can be analysed in closed form:

* the high-priority (voice) class behaves exactly like an M/M/c/c loss system
  on the ``c`` shared channels -- it never sees the data traffic;
* the low-priority (data) class sees the *left-over* capacity
  ``c - n_voice`` which fluctuates with the voice occupancy.

The data class is evaluated in the quasi-stationary regime (voice occupancy
changes on the time scale of minutes, packet transfers on the time scale of
tens of milliseconds): the data performance is the Erlang-distribution-weighted
mixture of M/M/k/K queues over the number ``k`` of channels left by voice.
This is the same time-scale decomposition argument the paper uses to explain
the shape of its carried-data-traffic curves and gives a fast approximation of
the full CTMC that the test suite compares against the exact model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queueing.erlang import ErlangLossSystem
from repro.queueing.mmck import MMcKQueue

__all__ = ["PreemptivePrioritySharing"]


@dataclass(frozen=True)
class PreemptivePrioritySharing:
    """Two-class channel sharing: preemptive voice over best-effort data.

    Parameters
    ----------
    voice_arrival_rate, voice_service_rate:
        Poisson arrival rate and per-call departure rate of the voice class.
    data_arrival_rate, data_service_rate:
        Poisson packet arrival rate (quasi-stationary mean) and per-channel
        packet service rate of the data class.
    channels:
        Total number of physical channels ``N``.
    reserved_data_channels:
        Channels never available to voice (the paper's ``N_GPRS``).
    buffer_size:
        BSC buffer capacity ``K`` for data packets.
    max_channels_per_packet:
        Multislot limit (8 for GPRS).
    """

    voice_arrival_rate: float
    voice_service_rate: float
    data_arrival_rate: float
    data_service_rate: float
    channels: int
    reserved_data_channels: int = 1
    buffer_size: int = 100
    max_channels_per_packet: int = 8

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("channels must be at least 1")
        if not 0 <= self.reserved_data_channels < self.channels:
            raise ValueError(
                "reserved_data_channels must be non-negative and leave room for voice"
            )
        if self.voice_arrival_rate < 0 or self.data_arrival_rate < 0:
            raise ValueError("arrival rates must be non-negative")
        if self.voice_service_rate <= 0 or self.data_service_rate <= 0:
            raise ValueError("service rates must be positive")
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be at least 1")
        if self.max_channels_per_packet < 1:
            raise ValueError("max_channels_per_packet must be at least 1")

    # ------------------------------------------------------------------ #
    # Voice (high priority): unaffected by data
    # ------------------------------------------------------------------ #
    @property
    def voice_channels(self) -> int:
        """Channels usable by voice, ``N - N_GPRS``."""
        return self.channels - self.reserved_data_channels

    def voice_system(self) -> ErlangLossSystem:
        """Return the Erlang-loss system describing the voice class."""
        return ErlangLossSystem(
            arrival_rate=self.voice_arrival_rate,
            service_rate=self.voice_service_rate,
            servers=self.voice_channels,
        )

    def voice_blocking_probability(self) -> float:
        """Return the voice blocking probability (plain Erlang-B)."""
        return self.voice_system().blocking_probability()

    def carried_voice_traffic(self) -> float:
        """Return the mean number of channels carrying voice."""
        return self.voice_system().carried_traffic()

    # ------------------------------------------------------------------ #
    # Data (low priority): quasi-stationary decomposition
    # ------------------------------------------------------------------ #
    def data_channel_distribution(self) -> np.ndarray:
        """Return the distribution of the number of channels available to data.

        With ``n`` voice calls active the data class may use the
        ``N - n`` remaining channels (reserved PDCHs plus idle on-demand
        channels); the voice occupancy follows the Erlang distribution.
        The entry at index ``k`` is the probability that exactly ``k``
        channels are available to data, for ``k = N_GPRS .. N``.
        """
        voice_distribution = self.voice_system().state_distribution()
        available = np.zeros(self.channels + 1)
        for n, probability in enumerate(voice_distribution):
            available[self.channels - n] += probability
        return available

    def _data_queue(self, channels_for_data: int) -> MMcKQueue:
        servers = max(1, min(channels_for_data, self.buffer_size))
        return MMcKQueue(
            arrival_rate=self.data_arrival_rate,
            service_rate=self.data_service_rate,
            servers=servers,
            capacity=max(self.buffer_size, servers),
        )

    def data_loss_probability(self) -> float:
        """Return the quasi-stationary packet loss probability of the data class."""
        distribution = self.data_channel_distribution()
        loss = 0.0
        for channels_for_data, probability in enumerate(distribution):
            if probability == 0.0:
                continue
            if channels_for_data == 0:
                loss += probability  # no channel at all: everything offered is lost
                continue
            loss += probability * self._data_queue(channels_for_data).blocking_probability()
        return loss

    def data_mean_queue_length(self) -> float:
        """Return the quasi-stationary mean number of packets in the BSC buffer."""
        distribution = self.data_channel_distribution()
        total = 0.0
        for channels_for_data, probability in enumerate(distribution):
            if probability == 0.0:
                continue
            if channels_for_data == 0:
                total += probability * self.buffer_size
                continue
            total += probability * self._data_queue(channels_for_data).mean_number_in_system()
        return total

    def carried_data_traffic(self) -> float:
        """Return the quasi-stationary mean number of channels transferring data."""
        distribution = self.data_channel_distribution()
        total = 0.0
        for channels_for_data, probability in enumerate(distribution):
            if probability == 0.0 or channels_for_data == 0:
                continue
            total += probability * self._data_queue(channels_for_data).mean_busy_servers()
        return total

    def data_throughput(self) -> float:
        """Return the quasi-stationary rate of served packets."""
        return self.carried_data_traffic() * self.data_service_rate
