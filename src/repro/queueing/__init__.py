"""Analytic queueing-theory building blocks.

The GPRS Markov model of the paper embeds two Erlang-loss (M/M/c/c) systems:
one for the number of active GSM voice calls and one for the number of active
GPRS sessions (Section 4.2, Eqs. (1)-(7)).  Their closed-form solutions are
used both to balance the handover flows entering and leaving the cell
(Eqs. (4)-(5)) and to compute carried voice traffic, blocking probabilities and
the average number of GPRS sessions.

This subpackage provides those closed forms plus the generic fixed-point
iteration framework used for the handover balance, and a set of companion
models that extend the paper's admission and sharing assumptions:

* :class:`~repro.queueing.guard_channel.GuardChannelSystem` -- cutoff-priority
  admission that reserves guard channels for handover calls;
* :class:`~repro.queueing.engset.EngsetSystem` -- the finite-population
  correction of the Erlang-loss model;
* :class:`~repro.queueing.priority.PreemptivePrioritySharing` -- the
  voice-over-data priority rule analysed by time-scale decomposition;
* :class:`~repro.queueing.map_queue.MapMcKQueue` -- the BSC buffer as a
  MAP/M/c/K queue, solved exactly through the block-tridiagonal machinery.
"""

from repro.queueing.engset import EngsetSystem
from repro.queueing.erlang import (
    ErlangLossSystem,
    erlang_b,
    erlang_b_recursive,
    erlang_c,
    offered_load,
)
from repro.queueing.fixed_point import FixedPointResult, fixed_point_iteration
from repro.queueing.guard_channel import GuardChannelSystem
from repro.queueing.littles_law import (
    mean_queue_length_from_delay,
    mean_waiting_time,
    utilization,
)
from repro.queueing.map_queue import MapMcKQueue
from repro.queueing.mmck import MMcKQueue
from repro.queueing.priority import PreemptivePrioritySharing

__all__ = [
    "EngsetSystem",
    "ErlangLossSystem",
    "FixedPointResult",
    "GuardChannelSystem",
    "MMcKQueue",
    "MapMcKQueue",
    "PreemptivePrioritySharing",
    "erlang_b",
    "erlang_b_recursive",
    "erlang_c",
    "fixed_point_iteration",
    "mean_queue_length_from_delay",
    "mean_waiting_time",
    "offered_load",
    "utilization",
]
