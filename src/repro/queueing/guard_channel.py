"""Guard-channel (cutoff-priority) admission for handover calls.

The paper treats new calls and incoming handovers identically: both are blocked
only when every non-reserved channel is busy.  Classic cellular engineering
instead *prioritises handovers* by reserving ``g`` guard channels that new
calls may not use: a new call is admitted only while fewer than ``c - g``
channels are busy, while a handover call may use all ``c`` channels.  Dropping
an ongoing call (handover failure) is far more annoying than blocking a fresh
call attempt, so operators accept a higher new-call blocking probability in
exchange for a much lower handover failure probability.

The resulting birth--death chain has a load-dependent birth rate and is solved
in closed form here.  The class complements the Erlang-loss model of
:mod:`repro.queueing.erlang` (which is the special case ``g = 0``) and lets
the dimensioning tools of :mod:`repro.experiments` study handover
prioritisation, a natural extension of the paper's admission-control
discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GuardChannelSystem"]


@dataclass(frozen=True)
class GuardChannelSystem:
    """M/M/c/c loss system with ``g`` guard channels reserved for handovers.

    Parameters
    ----------
    new_call_rate:
        Poisson arrival rate of new call attempts.
    handover_rate:
        Poisson arrival rate of incoming handover requests.
    service_rate:
        Per-call departure rate (completion plus outgoing handover).
    servers:
        Total number of channels ``c``.
    guard_channels:
        Number of channels ``g`` reserved for handover arrivals
        (``0 <= g <= c``); ``g = 0`` reduces to the ordinary Erlang-loss
        system.
    """

    new_call_rate: float
    handover_rate: float
    service_rate: float
    servers: int
    guard_channels: int = 0

    def __post_init__(self) -> None:
        if self.new_call_rate < 0 or self.handover_rate < 0:
            raise ValueError("arrival rates must be non-negative")
        if self.service_rate <= 0:
            raise ValueError("service rate must be positive")
        if self.servers < 1:
            raise ValueError("servers must be at least 1")
        if not 0 <= self.guard_channels <= self.servers:
            raise ValueError("guard_channels must be between 0 and the number of servers")

    # ------------------------------------------------------------------ #
    # Stationary distribution
    # ------------------------------------------------------------------ #
    @property
    def admission_threshold(self) -> int:
        """Number of busy channels at which new calls start being rejected."""
        return self.servers - self.guard_channels

    def state_distribution(self) -> np.ndarray:
        """Return the stationary distribution of the number of busy channels.

        The chain is a birth--death process with birth rate
        ``new + handover`` below the admission threshold and ``handover``
        above it; death rate ``n * service_rate`` in state ``n``.
        """
        c = self.servers
        both = self.new_call_rate + self.handover_rate
        log_weights = np.zeros(c + 1)
        running = 0.0
        for n in range(1, c + 1):
            birth = both if (n - 1) < self.admission_threshold else self.handover_rate
            if birth == 0:
                running = -np.inf
            else:
                running += np.log(birth) - np.log(n * self.service_rate)
            log_weights[n] = running
        finite = np.isfinite(log_weights)
        shift = np.max(log_weights[finite])
        weights = np.where(finite, np.exp(log_weights - shift), 0.0)
        return weights / weights.sum()

    # ------------------------------------------------------------------ #
    # Performance measures
    # ------------------------------------------------------------------ #
    def new_call_blocking_probability(self) -> float:
        """Return the probability that a new call attempt is rejected."""
        pi = self.state_distribution()
        return min(float(pi[self.admission_threshold:].sum()), 1.0)

    def handover_failure_probability(self) -> float:
        """Return the probability that an incoming handover is rejected."""
        return min(float(self.state_distribution()[-1]), 1.0)

    def mean_busy_channels(self) -> float:
        """Return the mean number of busy channels (carried traffic)."""
        pi = self.state_distribution()
        return float(np.dot(pi, np.arange(self.servers + 1)))

    def carried_traffic(self) -> float:
        """Alias of :meth:`mean_busy_channels` (Erlangs carried)."""
        return self.mean_busy_channels()

    def grade_of_service(self, handover_weight: float = 10.0) -> float:
        """Return the weighted grade of service used for dimensioning.

        The conventional objective weights a dropped handover ``handover_weight``
        times as heavily as a blocked new call.
        """
        if handover_weight < 0:
            raise ValueError("handover_weight must be non-negative")
        return (
            self.new_call_blocking_probability()
            + handover_weight * self.handover_failure_probability()
        )

    def with_guard_channels(self, guard_channels: int) -> "GuardChannelSystem":
        """Return a copy of this system with a different number of guard channels."""
        return GuardChannelSystem(
            new_call_rate=self.new_call_rate,
            handover_rate=self.handover_rate,
            service_rate=self.service_rate,
            servers=self.servers,
            guard_channels=guard_channels,
        )

    @classmethod
    def dimension_guard_channels(
        cls,
        new_call_rate: float,
        handover_rate: float,
        service_rate: float,
        servers: int,
        *,
        max_handover_failure: float = 0.01,
    ) -> int | None:
        """Return the smallest guard-channel count meeting a handover-failure target.

        Returns ``None`` when even reserving every channel for handovers cannot
        reach the target.
        """
        if not 0.0 < max_handover_failure <= 1.0:
            raise ValueError("max_handover_failure must be in (0, 1]")
        for guard in range(servers + 1):
            system = cls(new_call_rate, handover_rate, service_rate, servers, guard)
            if system.handover_failure_probability() <= max_handover_failure:
                return guard
        return None
