"""M/M/c/K queue with closed-form stationary measures.

Used as an analytic cross-check for the packet buffer at the BSC: when the
GPRS traffic process is replaced by a plain Poisson stream with the same mean
rate, the buffer behaves as an M/M/c/K queue whose loss probability and mean
queue length bound (from below) the bursty-traffic values produced by the full
GPRS model.  Several tests exploit this ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MMcKQueue"]


@dataclass(frozen=True)
class MMcKQueue:
    """An M/M/c/K queue (``c`` servers, at most ``K`` customers in the system).

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate.
    service_rate:
        Per-server service rate.
    servers:
        Number of parallel servers ``c``.
    capacity:
        Maximum number of customers in the system ``K`` (including those in
        service); must satisfy ``capacity >= servers``.
    """

    arrival_rate: float
    service_rate: float
    servers: int
    capacity: int

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError("servers must be at least 1")
        if self.capacity < self.servers:
            raise ValueError("capacity must be at least the number of servers")
        if self.service_rate <= 0:
            raise ValueError("service rate must be positive")
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")

    def state_distribution(self) -> np.ndarray:
        """Return the stationary distribution of the number in system (0..K)."""
        c = self.servers
        k = self.capacity
        lam = self.arrival_rate
        mu = self.service_rate
        log_weights = np.zeros(k + 1)
        running = 0.0
        for n in range(1, k + 1):
            death = mu * min(n, c)
            if lam == 0:
                running = -np.inf
            else:
                running += np.log(lam) - np.log(death)
            log_weights[n] = running
        finite = np.isfinite(log_weights)
        shift = np.max(log_weights[finite])
        weights = np.where(finite, np.exp(log_weights - shift), 0.0)
        return weights / weights.sum()

    def blocking_probability(self) -> float:
        """Return the probability an arriving customer is lost (system full)."""
        return float(self.state_distribution()[-1])

    def mean_number_in_system(self) -> float:
        """Return the mean number of customers in the system."""
        pi = self.state_distribution()
        return float(np.dot(pi, np.arange(self.capacity + 1)))

    def mean_queue_length(self) -> float:
        """Return the mean number of customers waiting (not in service)."""
        pi = self.state_distribution()
        waiting = np.maximum(np.arange(self.capacity + 1) - self.servers, 0)
        return float(np.dot(pi, waiting))

    def mean_busy_servers(self) -> float:
        """Return the mean number of busy servers (carried traffic)."""
        pi = self.state_distribution()
        busy = np.minimum(np.arange(self.capacity + 1), self.servers)
        return float(np.dot(pi, busy))

    def throughput(self) -> float:
        """Return the rate of served customers (accepted arrival rate)."""
        return self.arrival_rate * (1.0 - self.blocking_probability())

    def mean_waiting_time(self) -> float:
        """Return the mean waiting time (queueing delay) via Little's law."""
        throughput = self.throughput()
        if throughput == 0:
            return 0.0
        return self.mean_queue_length() / throughput

    def mean_sojourn_time(self) -> float:
        """Return the mean time in system via Little's law."""
        throughput = self.throughput()
        if throughput == 0:
            return 0.0
        return self.mean_number_in_system() / throughput
