"""MAP/M/c/K queue solved through the block-tridiagonal machinery.

The BSC packet buffer of the paper is fed by the aggregate of many on--off
sources -- an MMPP, i.e. a special MAP -- and served by a load-dependent pool
of PDCHs.  Writing the buffer as a MAP/M/c/K queue (phase = state of the
arrival process, level = buffer occupancy) gives an exact numerical solution
through :func:`repro.markov.qbd.solve_finite_level_chain`; the GPRS model's
structured solver is validated against it in the test suite and the ablation
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.map_process import MarkovianArrivalProcess
from repro.markov.qbd import solve_finite_level_chain

__all__ = ["MapMcKQueue"]


@dataclass(frozen=True)
class MapMcKQueue:
    """A MAP/M/c/K queue: Markovian arrivals, ``c`` exponential servers, ``K`` places.

    Parameters
    ----------
    arrival_process:
        The Markovian arrival process feeding the queue.
    service_rate:
        Per-server service rate.
    servers:
        Number of parallel servers ``c``.
    capacity:
        Maximum number of customers in the system (including in service);
        arrivals beyond it are lost.  Must be at least ``servers``.
    """

    arrival_process: MarkovianArrivalProcess
    service_rate: float
    servers: int
    capacity: int

    def __post_init__(self) -> None:
        if self.service_rate <= 0:
            raise ValueError("service_rate must be positive")
        if self.servers < 1:
            raise ValueError("servers must be at least 1")
        if self.capacity < self.servers:
            raise ValueError("capacity must be at least the number of servers")

    # ------------------------------------------------------------------ #
    # Exact solution
    # ------------------------------------------------------------------ #
    def level_distributions(self) -> list[np.ndarray]:
        """Return the stationary vector of every buffer level (0..K) by phase."""
        d0 = self.arrival_process.hidden_transitions
        d1 = self.arrival_process.arrival_transitions
        phases = self.arrival_process.number_of_phases
        identity = np.eye(phases)
        local, up, down = [], [], []
        for level in range(self.capacity + 1):
            departures = min(level, self.servers) * self.service_rate
            block = d0.copy()
            if level == self.capacity:
                # Arrivals are lost when the system is full: their phase change
                # still happens, so D1 folds back into the local block.
                block = block + d1
            block = block - departures * identity
            local.append(block)
            if level < self.capacity:
                up.append(d1.copy())
            if level > 0:
                down.append(min(level, self.servers) * self.service_rate * identity)
        return solve_finite_level_chain(local, up, down)

    def queue_length_distribution(self) -> np.ndarray:
        """Return the marginal distribution of the number of customers in system."""
        return np.array([float(level.sum()) for level in self.level_distributions()])

    # ------------------------------------------------------------------ #
    # Performance measures
    # ------------------------------------------------------------------ #
    def blocking_probability(self) -> float:
        """Return the probability that an arriving customer is lost.

        Arrivals occur at rate ``pi_k D1 1`` in level ``k``; only those hitting
        the full system are lost, so the loss probability weights the levels by
        the *arrival* rate they see rather than by time (the MAP does not enjoy
        PASTA).
        """
        levels = self.level_distributions()
        ones = np.ones(self.arrival_process.number_of_phases)
        d1 = self.arrival_process.arrival_transitions
        arrival_rates = np.array([float(level @ d1 @ ones) for level in levels])
        total = arrival_rates.sum()
        if total == 0:
            return 0.0
        return float(arrival_rates[-1] / total)

    def mean_number_in_system(self) -> float:
        """Return the mean number of customers in the system."""
        marginal = self.queue_length_distribution()
        return float(np.dot(marginal, np.arange(self.capacity + 1)))

    def mean_queue_length(self) -> float:
        """Return the mean number of waiting customers."""
        marginal = self.queue_length_distribution()
        waiting = np.maximum(np.arange(self.capacity + 1) - self.servers, 0)
        return float(np.dot(marginal, waiting))

    def mean_busy_servers(self) -> float:
        """Return the mean number of busy servers."""
        marginal = self.queue_length_distribution()
        busy = np.minimum(np.arange(self.capacity + 1), self.servers)
        return float(np.dot(marginal, busy))

    def throughput(self) -> float:
        """Return the rate of served customers."""
        return self.mean_busy_servers() * self.service_rate

    def mean_waiting_time(self) -> float:
        """Return the mean waiting time of accepted customers (Little's law)."""
        throughput = self.throughput()
        if throughput == 0:
            return 0.0
        return self.mean_queue_length() / throughput
