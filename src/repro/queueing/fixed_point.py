"""Generic damped fixed-point iteration.

The handover-flow balancing procedure of the paper (Eqs. (4)-(5)) is a
fixed-point problem: the incoming handover rate at iteration ``i + 1`` is set
to the outgoing handover rate computed from the Erlang-loss solution at
iteration ``i``, until the two agree.  The same machinery is reusable for other
fixed points (e.g. coupling several cells), so it lives here as a small,
well-tested utility rather than inside the GPRS model.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointResult", "fixed_point_iteration"]


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a fixed-point iteration.

    Attributes
    ----------
    value:
        The converged vector (numpy array).
    iterations:
        Number of iterations performed.
    converged:
        Whether the convergence criterion was met before ``max_iterations``.
    residual:
        Infinity norm of the last update step.
    history:
        The iterates visited, including the initial guess (list of arrays).
    """

    value: np.ndarray
    iterations: int
    converged: bool
    residual: float
    history: tuple[np.ndarray, ...]


def fixed_point_iteration(
    mapping: Callable[[np.ndarray], np.ndarray | Sequence[float] | float],
    initial: np.ndarray | Sequence[float] | float,
    *,
    tol: float = 1e-10,
    max_iterations: int = 1000,
    damping: float = 1.0,
    record_history: bool = False,
    accelerate: bool = False,
) -> FixedPointResult:
    """Iterate ``x <- (1 - damping) x + damping * mapping(x)`` until convergence.

    Parameters
    ----------
    mapping:
        Function whose fixed point is sought.  Scalar and vector valued
        mappings are both supported; scalars are promoted to length-1 arrays.
    initial:
        Starting point.
    tol:
        Convergence threshold on the infinity norm of the update, relative to
        ``max(1, |x|)``.
    max_iterations:
        Iteration budget.
    damping:
        Damping factor in ``(0, 1]``; values below one stabilise oscillating
        iterations.
    record_history:
        When true every iterate is stored in the result's ``history``.
    accelerate:
        Apply Aitken/Steffensen extrapolation after every second mapping
        evaluation.  For linearly converging iterations this upgrades the
        convergence to (nearly) quadratic; the extrapolated point is only
        kept when it is finite, so a degenerate denominator falls back to the
        plain iteration.  The fixed point itself is unchanged.  Because an
        extrapolation jump can land on a point whose *step* is tiny while its
        *error* is not (the step criterion only bounds the error up to a
        ``1/(1 - rho)`` factor), the accelerated mode additionally scales the
        tolerance by the observed contraction margin ``1 - rho`` -- for stiff
        maps (``rho`` close to 1) it therefore refuses to declare convergence
        that the plain criterion would honour only spuriously.

    Returns
    -------
    FixedPointResult
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")

    current = np.atleast_1d(np.asarray(initial, dtype=float)).copy()
    history: list[np.ndarray] = [current.copy()] if record_history else []

    converged = False
    residual = np.inf
    iterations = 0
    previous_step: np.ndarray | None = None
    previous_point: np.ndarray | None = None
    contraction_margin = 1.0
    for iteration in range(1, max_iterations + 1):
        raw = np.atleast_1d(np.asarray(mapping(current), dtype=float))
        if raw.shape != current.shape:
            raise ValueError(
                f"mapping changed the shape of the iterate from {current.shape} to {raw.shape}"
            )
        if not np.all(np.isfinite(raw)):
            raise ValueError("mapping produced non-finite values")
        update = (1.0 - damping) * current + damping * raw
        step = update - current
        residual = float(np.max(np.abs(step)))
        scale = max(1.0, float(np.max(np.abs(current))))
        if accelerate and previous_step is not None:
            # Two consecutive plain steps estimate the contraction rate; keep
            # the estimate across extrapolation jumps (a post-jump step is
            # small for the wrong reason and must not loosen the criterion).
            previous_norm = float(np.max(np.abs(previous_step)))
            if previous_norm > 0 and residual < previous_norm:
                contraction_margin = max(1.0 - residual / previous_norm, 1e-12)
            # Steffensen/Aitken: x* = x0 - s0^2 / (s1 - s0) componentwise,
            # cancelling the dominant linear error mode.
            denominator = step - previous_step
            with np.errstate(divide="ignore", invalid="ignore"):
                extrapolated = previous_point - previous_step**2 / denominator
            usable = np.isfinite(extrapolated) & (np.abs(denominator) > 0)
            update = np.where(usable, extrapolated, update)
            previous_step = None
            previous_point = None
        else:
            previous_step = step
            previous_point = current
        current = update
        iterations = iteration
        if record_history:
            history.append(current.copy())
        # In accelerated mode the tolerance is tightened by the contraction
        # margin: |step| only bounds the error up to 1/(1 - rho), and the
        # Aitken jumps make low-step/high-error points reachable within the
        # iteration budget for stiff maps.
        effective_tol = tol * (contraction_margin if accelerate else 1.0)
        if residual <= effective_tol * scale:
            converged = True
            break

    return FixedPointResult(
        value=current,
        iterations=iterations,
        converged=converged,
        residual=residual,
        history=tuple(history),
    )
