"""Erlang-loss (M/M/c/c) and Erlang-C formulas.

The paper models the population of active GSM calls in a cell as an M/M/c/c
queue with ``c = N_GSM`` servers, arrival rate
``lambda_GSM + lambda_h,GSM`` and service rate ``mu_GSM + mu_h,GSM`` (calls
leave either by completing or by handing over to a neighbouring cell); GPRS
sessions are modelled identically with ``c = M``.  This module provides the
corresponding closed-form state distribution (Eqs. (2)-(3)), the carried
traffic (Eq. (6)), the mean number of customers (Eq. (7)) and the classical
Erlang-B / Erlang-C blocking formulas used in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "offered_load",
    "erlang_b",
    "erlang_b_recursive",
    "erlang_c",
    "ErlangLossSystem",
]


def offered_load(arrival_rate: float, service_rate: float) -> float:
    """Return the offered load ``rho = arrival_rate / service_rate`` in Erlangs."""
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    if arrival_rate < 0:
        raise ValueError("arrival rate must be non-negative")
    return arrival_rate / service_rate


def erlang_b_recursive(load: float, servers: int) -> float:
    """Return the Erlang-B blocking probability via the stable recurrence.

    ``B(0) = 1`` and ``B(c) = load * B(c-1) / (c + load * B(c-1))``.  The
    recurrence is numerically stable for any load and server count, unlike the
    direct factorial formula.
    """
    if servers < 0:
        raise ValueError("servers must be non-negative")
    if load < 0:
        raise ValueError("load must be non-negative")
    blocking = 1.0
    for c in range(1, servers + 1):
        blocking = load * blocking / (c + load * blocking)
    return blocking


def erlang_b(load: float, servers: int) -> float:
    """Return the Erlang-B blocking probability (alias of the recursive form)."""
    return erlang_b_recursive(load, servers)


def erlang_c(load: float, servers: int) -> float:
    """Return the Erlang-C probability of waiting for an M/M/c queue.

    Only defined for ``load < servers`` (a stable queue); raises otherwise.
    """
    if servers <= 0:
        raise ValueError("servers must be positive")
    if load < 0:
        raise ValueError("load must be non-negative")
    if load >= servers:
        raise ValueError("Erlang C requires load < servers (stable queue)")
    blocking_b = erlang_b_recursive(load, servers)
    return servers * blocking_b / (servers - load * (1.0 - blocking_b))


@dataclass(frozen=True)
class ErlangLossSystem:
    """An M/M/c/c loss system with closed-form stationary behaviour.

    Parameters
    ----------
    arrival_rate:
        Total Poisson arrival rate (new arrivals plus incoming handovers in the
        paper's usage).
    service_rate:
        Per-customer departure rate (call completion plus outgoing handover).
    servers:
        Number of servers ``c``; arrivals finding all servers busy are lost.
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError("servers must be at least 1")
        if self.service_rate <= 0:
            raise ValueError("service rate must be positive")
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")

    @property
    def load(self) -> float:
        """Offered load ``rho`` in Erlangs (Eq. (1) of the paper)."""
        return offered_load(self.arrival_rate, self.service_rate)

    def state_distribution(self) -> np.ndarray:
        """Return the truncated-Poisson stationary distribution (Eqs. (2)-(3)).

        Evaluated in log space so large server counts and loads do not
        overflow the factorials.
        """
        n = np.arange(self.servers + 1)
        if self.load == 0:
            distribution = np.zeros(self.servers + 1)
            distribution[0] = 1.0
            return distribution
        log_terms = n * np.log(self.load) - np.array(
            [float(np.sum(np.log(np.arange(1, k + 1)))) if k else 0.0 for k in n]
        )
        log_terms -= np.max(log_terms)
        terms = np.exp(log_terms)
        return terms / terms.sum()

    def blocking_probability(self) -> float:
        """Return the probability an arrival is lost (Erlang-B)."""
        return float(self.state_distribution()[-1])

    def mean_number_in_system(self) -> float:
        """Return the mean number of busy servers (Eq. (7): average sessions)."""
        pi = self.state_distribution()
        return float(np.dot(pi, np.arange(self.servers + 1)))

    def carried_traffic(self) -> float:
        """Return the carried traffic in Erlangs (Eq. (6): carried voice traffic).

        Equals the mean number of busy servers, and also
        ``load * (1 - blocking)``.
        """
        return self.mean_number_in_system()

    def departure_rate(self) -> float:
        """Return the total stationary departure rate ``service_rate * E[N]``.

        With the service rate split into completion and handover components,
        multiplying the handover component by ``E[N]`` gives the outgoing
        handover flow used by the balancing iteration (Eqs. (4)-(5)).
        """
        return self.service_rate * self.mean_number_in_system()

    def utilization(self) -> float:
        """Return the fraction of server capacity in use."""
        return self.mean_number_in_system() / self.servers
