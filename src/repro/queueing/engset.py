"""Engset loss model: a finite user population offered to ``c`` channels.

The Erlang-loss model of the paper assumes a Poisson stream of call attempts,
i.e. an effectively infinite subscriber population.  A GPRS cell, however,
admits at most ``M`` concurrent sessions drawn from a *finite* population of
subscribers camping in the cell; when the population is not much larger than
``M`` the Poisson assumption overestimates blocking.  The Engset model is the
standard finite-source correction: each of ``N`` idle sources generates
requests at rate ``alpha``, holds a channel for an exponential time, and
arrivals finding all ``c`` channels busy are lost.

The module provides the state distribution, the *time* congestion (fraction of
time all channels are busy) and the *call* congestion (fraction of attempts
blocked -- the quantity comparable to Erlang-B), which for finite sources are
no longer equal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EngsetSystem"]


@dataclass(frozen=True)
class EngsetSystem:
    """Engset loss system: ``sources`` on/off users sharing ``servers`` channels.

    Parameters
    ----------
    sources:
        Size ``N`` of the user population.
    request_rate:
        Rate ``alpha`` at which each *idle* source generates a request.
    service_rate:
        Per-call departure rate ``mu``.
    servers:
        Number of channels ``c`` (``c <= N``; with ``c = N`` nothing is ever
        blocked).
    """

    sources: int
    request_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.sources < 1:
            raise ValueError("sources must be at least 1")
        if self.servers < 1:
            raise ValueError("servers must be at least 1")
        if self.servers > self.sources:
            raise ValueError("more servers than sources is not a meaningful Engset system")
        if self.request_rate < 0:
            raise ValueError("request_rate must be non-negative")
        if self.service_rate <= 0:
            raise ValueError("service_rate must be positive")

    @property
    def offered_load_per_idle_source(self) -> float:
        """Return ``alpha / mu``, the load one idle source would carry."""
        return self.request_rate / self.service_rate

    def state_distribution(self) -> np.ndarray:
        """Return the stationary distribution of the number of busy channels.

        The birth rate in state ``n`` is ``(N - n) * alpha`` and the death rate
        ``n * mu``; evaluated in log space for numerical robustness.
        """
        c = self.servers
        a = self.offered_load_per_idle_source
        log_weights = np.zeros(c + 1)
        running = 0.0
        for n in range(1, c + 1):
            if a == 0:
                running = -np.inf
            else:
                running += np.log(self.sources - n + 1) + np.log(a) - np.log(n)
            log_weights[n] = running
        finite = np.isfinite(log_weights)
        shift = np.max(log_weights[finite])
        weights = np.where(finite, np.exp(log_weights - shift), 0.0)
        return weights / weights.sum()

    def time_congestion(self) -> float:
        """Return the fraction of time all channels are busy."""
        return float(self.state_distribution()[-1])

    def call_congestion(self) -> float:
        """Return the fraction of call attempts that are blocked.

        Blocked attempts are generated only by the ``N - c`` sources still idle
        when every channel is busy, so the call congestion equals the time
        congestion of a system with one source fewer (the arriving customer
        does not see its own load -- the finite-source PASTA correction).
        """
        if self.sources == self.servers:
            return 0.0
        reduced = EngsetSystem(
            sources=self.sources - 1,
            request_rate=self.request_rate,
            service_rate=self.service_rate,
            servers=self.servers,
        )
        return reduced.time_congestion()

    def mean_busy_channels(self) -> float:
        """Return the mean number of busy channels (carried traffic)."""
        pi = self.state_distribution()
        return float(np.dot(pi, np.arange(self.servers + 1)))

    def carried_traffic(self) -> float:
        """Alias of :meth:`mean_busy_channels`."""
        return self.mean_busy_channels()

    def attempt_rate(self) -> float:
        """Return the long-run rate of call attempts (idle sources times alpha)."""
        pi = self.state_distribution()
        idle = self.sources - np.arange(self.servers + 1)
        return float(self.request_rate * np.dot(pi, idle))
