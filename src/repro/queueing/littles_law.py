"""Little's law helpers.

The paper computes the queueing delay of GPRS data packets as the mean queue
length divided by the carried packet throughput (Eq. (10)), which is exactly
Little's law applied to the waiting room of the BSC buffer.  These helpers keep
that arithmetic in one place and guard the degenerate zero-throughput case.
"""

from __future__ import annotations

__all__ = ["mean_waiting_time", "mean_queue_length_from_delay", "utilization"]


def mean_waiting_time(mean_queue_length: float, throughput: float) -> float:
    """Return the mean waiting time ``W = L / X`` (zero when throughput is zero).

    Parameters
    ----------
    mean_queue_length:
        Time-average number of customers waiting.
    throughput:
        Rate at which customers leave the waiting room (served per unit time).
    """
    if mean_queue_length < 0:
        raise ValueError("mean queue length must be non-negative")
    if throughput < 0:
        raise ValueError("throughput must be non-negative")
    if throughput == 0:
        return 0.0
    return mean_queue_length / throughput


def mean_queue_length_from_delay(mean_delay: float, throughput: float) -> float:
    """Return the mean queue length ``L = X * W`` (inverse of Little's law)."""
    if mean_delay < 0:
        raise ValueError("mean delay must be non-negative")
    if throughput < 0:
        raise ValueError("throughput must be non-negative")
    return mean_delay * throughput


def utilization(throughput: float, servers: float, service_rate: float) -> float:
    """Return the server utilisation ``X / (c * mu)`` clipped to ``[0, 1]``."""
    if servers <= 0 or service_rate <= 0:
        raise ValueError("servers and service rate must be positive")
    if throughput < 0:
        raise ValueError("throughput must be non-negative")
    return min(1.0, throughput / (servers * service_rate))
