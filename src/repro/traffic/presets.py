"""The three traffic models of Table 3 of the paper.

* **Traffic model 1** -- 8 kbit/s WWW browsing: packet inter-arrival time
  ``D_d = 0.5 s`` during a packet call, 5 packet calls per session, 25 packets
  per call, 412 s reading time; mean session duration 2122.5 s; at most
  ``M = 50`` concurrent sessions.
* **Traffic model 2** -- 32 kbit/s WWW browsing: as model 1 but
  ``D_d = 0.125 s``; mean session duration 2075.6 s; ``M = 50``.
* **Traffic model 3** -- the heavier-load model used for validation and for the
  on-demand-PDCH experiments: derived from model 2 by setting the reading time
  equal to the packet-call duration (3.125 s) and using 50 packet calls per
  session; mean session duration 312.5 s; ``M = 20``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traffic.session import PacketSessionModel

__all__ = [
    "TrafficModelPreset",
    "TRAFFIC_MODEL_1",
    "TRAFFIC_MODEL_2",
    "TRAFFIC_MODEL_3",
    "TRAFFIC_MODELS",
    "traffic_model",
]


@dataclass(frozen=True)
class TrafficModelPreset:
    """A named traffic model: session parameters plus the admission cap ``M``.

    Attributes
    ----------
    number:
        Traffic model number as used in the paper (1, 2 or 3).
    session:
        The 3GPP packet-session parameters.
    max_active_sessions:
        The admission-control limit ``M`` on concurrently active GPRS sessions
        listed for this model in Table 3.
    """

    number: int
    session: PacketSessionModel
    max_active_sessions: int

    @property
    def name(self) -> str:
        return self.session.name

    def describe(self) -> dict[str, float]:
        """Return the Table 3 row for this traffic model as a dictionary."""
        session = self.session
        return {
            "traffic model": float(self.number),
            "max active GPRS sessions M": float(self.max_active_sessions),
            "average GPRS session duration 1/mu_GPRS [s]": session.mean_session_duration_s,
            "average arrival rate of data packets [kbit/s]": session.peak_bit_rate_kbit_s,
            "average duration of a packet call 1/a [s]": session.mean_packet_call_duration_s,
            "average reading time between packet calls 1/b [s]": session.reading_time_s,
        }


TRAFFIC_MODEL_1 = TrafficModelPreset(
    number=1,
    session=PacketSessionModel(
        packet_calls_per_session=5,
        reading_time_s=412.0,
        packets_per_packet_call=25,
        packet_interarrival_s=0.5,
        name="traffic model 1 (8 kbit/s WWW browsing)",
    ),
    max_active_sessions=50,
)

TRAFFIC_MODEL_2 = TrafficModelPreset(
    number=2,
    session=PacketSessionModel(
        packet_calls_per_session=5,
        reading_time_s=412.0,
        packets_per_packet_call=25,
        packet_interarrival_s=0.125,
        name="traffic model 2 (32 kbit/s WWW browsing)",
    ),
    max_active_sessions=50,
)

TRAFFIC_MODEL_3 = TrafficModelPreset(
    number=3,
    session=PacketSessionModel(
        packet_calls_per_session=50,
        reading_time_s=3.125,
        packets_per_packet_call=25,
        packet_interarrival_s=0.125,
        name="traffic model 3 (32 kbit/s, reading time equal to packet-call duration)",
    ),
    max_active_sessions=20,
)

TRAFFIC_MODELS: dict[int, TrafficModelPreset] = {
    1: TRAFFIC_MODEL_1,
    2: TRAFFIC_MODEL_2,
    3: TRAFFIC_MODEL_3,
}


def traffic_model(number: int) -> TrafficModelPreset:
    """Return the traffic model preset with the given Table 3 number (1, 2 or 3)."""
    try:
        return TRAFFIC_MODELS[number]
    except KeyError as exc:
        raise ValueError(
            f"unknown traffic model {number!r}; the paper defines models 1, 2 and 3"
        ) from exc
