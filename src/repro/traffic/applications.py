"""Application-level traffic presets and traffic mixes.

The paper evaluates pure WWW-browsing populations (Table 3).  The 3GPP
selection procedure it takes its traffic model from (TR 101 112) describes the
same on--off session structure for other packet services as well; this module
provides representative presets for them and a :class:`ApplicationMix` that
combines several applications into one population, so the cell can be studied
under a realistic service mix instead of a single homogeneous workload.

The numeric values of the non-WWW presets are *synthetic but conventional*
(documented in DESIGN.md): an FTP download is a single long packet call, email
is a short bursty exchange, and WAP browsing is a low-rate variant of WWW
browsing.  They exercise exactly the same code paths as the Table 3 models --
only the parameters differ -- and every consumer receives the mix through the
standard :class:`~repro.traffic.session.PacketSessionModel` interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.markov.mmpp import MarkovModulatedPoissonProcess, superpose_mmpps
from repro.traffic.session import PacketSessionModel

__all__ = [
    "APPLICATION_PRESETS",
    "ApplicationMix",
    "MixComponent",
    "application",
    "EMAIL",
    "FTP_DOWNLOAD",
    "WAP_BROWSING",
    "WWW_BROWSING_8K",
    "WWW_BROWSING_32K",
]


#: 8 kbit/s WWW browsing -- identical to traffic model 1 of the paper.
WWW_BROWSING_8K = PacketSessionModel(
    packet_calls_per_session=5,
    reading_time_s=412.0,
    packets_per_packet_call=25,
    packet_interarrival_s=0.5,
    name="WWW browsing (8 kbit/s)",
)

#: 32 kbit/s WWW browsing -- identical to traffic model 2 of the paper.
WWW_BROWSING_32K = PacketSessionModel(
    packet_calls_per_session=5,
    reading_time_s=412.0,
    packets_per_packet_call=25,
    packet_interarrival_s=0.125,
    name="WWW browsing (32 kbit/s)",
)

#: A file download: one long packet call and essentially no reading time
#: afterwards (the session ends with the transfer).
FTP_DOWNLOAD = PacketSessionModel(
    packet_calls_per_session=1,
    reading_time_s=1.0,
    packets_per_packet_call=400,
    packet_interarrival_s=0.125,
    name="FTP download",
)

#: A mail check: a couple of short transfers separated by long idle periods.
EMAIL = PacketSessionModel(
    packet_calls_per_session=3,
    reading_time_s=120.0,
    packets_per_packet_call=8,
    packet_interarrival_s=0.25,
    name="e-mail",
)

#: WAP browsing: small pages at a low rate with short reading times.
WAP_BROWSING = PacketSessionModel(
    packet_calls_per_session=8,
    reading_time_s=30.0,
    packets_per_packet_call=4,
    packet_interarrival_s=0.5,
    name="WAP browsing",
)

APPLICATION_PRESETS: dict[str, PacketSessionModel] = {
    "www-8k": WWW_BROWSING_8K,
    "www-32k": WWW_BROWSING_32K,
    "ftp": FTP_DOWNLOAD,
    "email": EMAIL,
    "wap": WAP_BROWSING,
}


def application(name: str) -> PacketSessionModel:
    """Return a named application preset (``"www-8k"``, ``"www-32k"``, ``"ftp"``, ...)."""
    try:
        return APPLICATION_PRESETS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown application {name!r}; expected one of {sorted(APPLICATION_PRESETS)}"
        ) from exc


@dataclass(frozen=True)
class MixComponent:
    """One application inside a mix: the session model plus its share of sessions."""

    session: PacketSessionModel
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("mix weights must be non-negative")


@dataclass(frozen=True)
class ApplicationMix:
    """A weighted mixture of packet-service applications.

    Parameters
    ----------
    components:
        The applications in the mix with their relative weights (interpreted
        as the fraction of newly arriving GPRS sessions running each
        application; weights are normalised automatically).
    """

    components: tuple[MixComponent, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("an application mix needs at least one component")
        total = sum(component.weight for component in self.components)
        if total <= 0:
            raise ValueError("at least one component must have positive weight")
        object.__setattr__(self, "components", tuple(self.components))

    @classmethod
    def from_shares(cls, shares: dict[str | PacketSessionModel, float]) -> "ApplicationMix":
        """Build a mix from ``{application name or session model: weight}``."""
        components = []
        for key, weight in shares.items():
            session = application(key) if isinstance(key, str) else key
            components.append(MixComponent(session=session, weight=float(weight)))
        return cls(tuple(components))

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #
    def normalised_weights(self) -> tuple[float, ...]:
        """Return the component weights normalised to sum to one."""
        total = sum(component.weight for component in self.components)
        return tuple(component.weight / total for component in self.components)

    def mean_session_duration_s(self) -> float:
        """Return the session duration averaged over the mix."""
        return sum(
            weight * component.session.mean_session_duration_s
            for weight, component in zip(self.normalised_weights(), self.components)
        )

    def session_departure_rate(self) -> float:
        """Return the effective ``mu_GPRS`` of the mix (reciprocal mean duration)."""
        return 1.0 / self.mean_session_duration_s()

    def mean_bit_rate_kbit_s(self) -> float:
        """Return the long-run bit rate of one session drawn from the mix."""
        return sum(
            weight * component.session.mean_bit_rate_kbit_s
            for weight, component in zip(self.normalised_weights(), self.components)
        )

    def mean_packet_rate(self) -> float:
        """Return the long-run packet rate (packets/s) of one session from the mix."""
        return sum(
            weight * component.session.packet_rate * component.session.activity_factor
            for weight, component in zip(self.normalised_weights(), self.components)
        )

    def equivalent_session_model(self, name: str = "application mix") -> PacketSessionModel:
        """Return a single session model matching the mix's first-order statistics.

        The equivalent model preserves the mean packet-call duration, the mean
        reading time, the mean number of packet calls and the mean packet rate
        during a call (all weighted by the session shares), which is sufficient
        for the CTMC whose traffic description only uses those means.  Higher
        moments of the mix are *not* preserved -- use the per-application
        populations of the simulator when those matter.
        """
        weights = self.normalised_weights()
        packet_calls = sum(
            w * c.session.packet_calls_per_session for w, c in zip(weights, self.components)
        )
        reading = sum(w * c.session.reading_time_s for w, c in zip(weights, self.components))
        packets = sum(
            w * c.session.packets_per_packet_call for w, c in zip(weights, self.components)
        )
        interarrival = sum(
            w * c.session.packet_interarrival_s for w, c in zip(weights, self.components)
        )
        packet_size = self.components[0].session.packet_size_bytes
        return PacketSessionModel(
            packet_calls_per_session=packet_calls,
            reading_time_s=reading,
            packets_per_packet_call=packets,
            packet_interarrival_s=interarrival,
            packet_size_bytes=packet_size,
            name=name,
        )

    def aggregate_mmpp(self, active_sessions_per_component: dict[str, int] | None = None,
                       sessions_per_component: int = 1) -> MarkovModulatedPoissonProcess:
        """Return the MMPP of a fixed population drawn from this mix.

        Parameters
        ----------
        active_sessions_per_component:
            Optional explicit mapping from component session name to the number
            of concurrently active sessions of that application.
        sessions_per_component:
            Used when the explicit mapping is omitted: every component
            contributes this many active sessions.
        """
        from repro.markov.mmpp import aggregate_identical_ipps

        aggregate: MarkovModulatedPoissonProcess | None = None
        for component in self.components:
            if active_sessions_per_component is not None:
                count = active_sessions_per_component.get(component.session.name, 0)
            else:
                count = sessions_per_component
            if count <= 0:
                continue
            component_mmpp = aggregate_identical_ipps(component.session.to_ipp(), count)
            aggregate = (
                component_mmpp
                if aggregate is None
                else superpose_mmpps(aggregate, component_mmpp)
            )
        if aggregate is None:
            raise ValueError("the requested population contains no active sessions")
        return aggregate
