"""The 3GPP packet-service session model and its IPP representation.

A packet-service session (Fig. 3 of the paper) consists of a geometrically
distributed number of *packet calls* with mean ``N_pc``, separated by
exponentially distributed *reading times* with mean ``D_pc``.  Each packet
call contains a geometrically distributed number of data packets with mean
``N_d`` whose inter-arrival times are exponential with mean ``D_d``.

For the Markov model the session is mapped onto an interrupted Poisson process
(Fig. 4):

* packet generation rate while *on*: ``lambda_packet = 1 / D_d``,
* on -> off rate: ``a = 1 / (N_d * D_d)``  (mean packet-call duration),
* off -> on rate: ``b = 1 / D_pc``          (mean reading time),
* mean session duration: ``1 / mu_GPRS = N_pc * (D_pc + N_d * D_d)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.markov.mmpp import InterruptedPoissonProcess
from repro.traffic.units import (
    DATA_PACKET_SIZE_BYTES,
    packets_per_s_to_kbit_per_s,
)

__all__ = ["PacketSessionModel"]


@dataclass(frozen=True)
class PacketSessionModel:
    """Parameters of one 3GPP packet-service session.

    Parameters
    ----------
    packet_calls_per_session:
        Mean number of packet calls per session, ``N_pc`` (geometric).
    reading_time_s:
        Mean reading time between packet calls, ``D_pc`` in seconds
        (exponential).
    packets_per_packet_call:
        Mean number of data packets per packet call, ``N_d`` (geometric).
    packet_interarrival_s:
        Mean inter-arrival time of packets inside a packet call, ``D_d`` in
        seconds (exponential).
    packet_size_bytes:
        Network-layer packet size (480 byte in the paper).
    name:
        Optional human-readable name, e.g. ``"traffic model 1"``.
    """

    packet_calls_per_session: float
    reading_time_s: float
    packets_per_packet_call: float
    packet_interarrival_s: float
    packet_size_bytes: int = DATA_PACKET_SIZE_BYTES
    name: str = "packet session"

    def __post_init__(self) -> None:
        if self.packet_calls_per_session < 1:
            raise ValueError("a session must contain at least one packet call on average")
        if self.packets_per_packet_call < 1:
            raise ValueError("a packet call must contain at least one packet on average")
        if self.reading_time_s <= 0:
            raise ValueError("reading time must be positive")
        if self.packet_interarrival_s <= 0:
            raise ValueError("packet inter-arrival time must be positive")
        if self.packet_size_bytes <= 0:
            raise ValueError("packet size must be positive")

    # ------------------------------------------------------------------ #
    # Derived IPP parameters (Section 3 of the paper)
    # ------------------------------------------------------------------ #
    @property
    def packet_rate(self) -> float:
        """Packet generation rate during a packet call, ``lambda = 1 / D_d``."""
        return 1.0 / self.packet_interarrival_s

    @property
    def on_to_off_rate(self) -> float:
        """IPP on -> off rate ``a = 1 / (N_d * D_d)``."""
        return 1.0 / (self.packets_per_packet_call * self.packet_interarrival_s)

    @property
    def off_to_on_rate(self) -> float:
        """IPP off -> on rate ``b = 1 / D_pc``."""
        return 1.0 / self.reading_time_s

    @property
    def mean_packet_call_duration_s(self) -> float:
        """Mean duration of a packet call, ``1 / a = N_d * D_d`` seconds."""
        return self.packets_per_packet_call * self.packet_interarrival_s

    @property
    def mean_session_duration_s(self) -> float:
        """Mean session duration ``1 / mu_GPRS = N_pc (D_pc + N_d D_d)`` seconds."""
        return self.packet_calls_per_session * (
            self.reading_time_s + self.mean_packet_call_duration_s
        )

    @property
    def session_departure_rate(self) -> float:
        """Session completion rate ``mu_GPRS`` (per second)."""
        return 1.0 / self.mean_session_duration_s

    @property
    def peak_bit_rate_kbit_s(self) -> float:
        """Bit rate during a packet call in kbit/s (the "8 kbit/s" / "32 kbit/s" label)."""
        return packets_per_s_to_kbit_per_s(self.packet_rate, self.packet_size_bytes)

    @property
    def mean_packets_per_session(self) -> float:
        """Mean total number of packets generated per session, ``N_pc * N_d``."""
        return self.packet_calls_per_session * self.packets_per_packet_call

    @property
    def activity_factor(self) -> float:
        """Long-run fraction of time the source spends in the on state."""
        on = self.mean_packet_call_duration_s
        return on / (on + self.reading_time_s)

    @property
    def mean_bit_rate_kbit_s(self) -> float:
        """Long-run average bit rate of one session in kbit/s."""
        return self.peak_bit_rate_kbit_s * self.activity_factor

    def to_ipp(self) -> InterruptedPoissonProcess:
        """Return the interrupted Poisson process representation of one session."""
        return InterruptedPoissonProcess(
            packet_rate=self.packet_rate,
            on_to_off_rate=self.on_to_off_rate,
            off_to_on_rate=self.off_to_on_rate,
        )

    def with_name(self, name: str) -> "PacketSessionModel":
        """Return a copy of this model with a different display name."""
        return PacketSessionModel(
            packet_calls_per_session=self.packet_calls_per_session,
            reading_time_s=self.reading_time_s,
            packets_per_packet_call=self.packets_per_packet_call,
            packet_interarrival_s=self.packet_interarrival_s,
            packet_size_bytes=self.packet_size_bytes,
            name=name,
        )
