"""Unit conversions and GPRS radio constants.

The paper models the arrival stream of data packets at the network layer with
a fixed packet size of 480 byte (ETSI TR 101 112) and a per-PDCH transfer rate
determined by the channel coding scheme; the base configuration uses CS-2 at
13.4 kbit/s.  All conversions between packets/s and kbit/s go through the
functions in this module so the packet size is defined exactly once.
"""

from __future__ import annotations

__all__ = [
    "DATA_PACKET_SIZE_BYTES",
    "CODING_SCHEME_RATES_KBIT_S",
    "bits_per_packet",
    "kbit_per_s_to_packets_per_s",
    "packets_per_s_to_kbit_per_s",
    "pdch_service_rate",
    "TIME_SLOTS_PER_TDMA_FRAME",
    "TDMA_FRAME_DURATION_S",
    "MAX_TIME_SLOTS_PER_STATION",
    "MAX_STATIONS_PER_TIME_SLOT",
]

#: Network-layer data packet size assumed by the paper (ETSI TR 101 112).
DATA_PACKET_SIZE_BYTES = 480

#: Per-PDCH data rates of the four GPRS channel coding schemes in kbit/s.
#: CS-1 uses rate-1/2 convolutional coding (robust, slow); CS-4 is uncoded.
CODING_SCHEME_RATES_KBIT_S: dict[str, float] = {
    "CS-1": 9.05,
    "CS-2": 13.4,
    "CS-3": 15.6,
    "CS-4": 21.4,
}

#: A GSM TDMA frame consists of eight time slots ...
TIME_SLOTS_PER_TDMA_FRAME = 8
#: ... each lasting 0.577 ms, so a frame takes about 4.615 ms.
TDMA_FRAME_DURATION_S = 8 * 0.577e-3
#: GPRS multislot operation: a mobile station may use up to 8 time slots ...
MAX_TIME_SLOTS_PER_STATION = 8
#: ... and up to 8 mobile stations may share one time slot.
MAX_STATIONS_PER_TIME_SLOT = 8


def bits_per_packet(packet_size_bytes: int = DATA_PACKET_SIZE_BYTES) -> int:
    """Return the number of bits in one network-layer data packet."""
    if packet_size_bytes <= 0:
        raise ValueError("packet size must be positive")
    return packet_size_bytes * 8


def kbit_per_s_to_packets_per_s(
    rate_kbit_s: float, packet_size_bytes: int = DATA_PACKET_SIZE_BYTES
) -> float:
    """Convert a bit rate in kbit/s to packets per second."""
    if rate_kbit_s < 0:
        raise ValueError("rate must be non-negative")
    return rate_kbit_s * 1000.0 / bits_per_packet(packet_size_bytes)


def packets_per_s_to_kbit_per_s(
    rate_packets_s: float, packet_size_bytes: int = DATA_PACKET_SIZE_BYTES
) -> float:
    """Convert a packet rate in packets/s to kbit per second."""
    if rate_packets_s < 0:
        raise ValueError("rate must be non-negative")
    return rate_packets_s * bits_per_packet(packet_size_bytes) / 1000.0


def pdch_service_rate(
    coding_scheme: str = "CS-2", packet_size_bytes: int = DATA_PACKET_SIZE_BYTES
) -> float:
    """Return the packet service rate (packets/s) of a single PDCH.

    Parameters
    ----------
    coding_scheme:
        One of ``"CS-1"`` .. ``"CS-4"``.
    packet_size_bytes:
        Network-layer packet size; 480 byte by default.

    With CS-2 and 480-byte packets the rate is ``13.4 kbit/s / 3840 bit``,
    i.e. roughly 3.49 packets per second per channel.
    """
    try:
        rate_kbit_s = CODING_SCHEME_RATES_KBIT_S[coding_scheme]
    except KeyError as exc:
        raise ValueError(
            f"unknown coding scheme {coding_scheme!r}; expected one of "
            f"{sorted(CODING_SCHEME_RATES_KBIT_S)}"
        ) from exc
    return kbit_per_s_to_packets_per_s(rate_kbit_s, packet_size_bytes)
