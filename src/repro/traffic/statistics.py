"""Empirical traffic statistics and IPP fitting from packet traces.

The paper stresses that "the burstiness during a packet call is a
characteristic feature of packet transmissions that must be taken into account
in an accurate traffic model".  This module quantifies that burstiness on
concrete packet-timestamp traces (synthetic ones from
:class:`~repro.traffic.sampling.SessionSampler`, or any externally supplied
array of arrival times) and fits the paper's IPP/3GPP session model back to a
trace, closing the loop between trace data and model parameters:

* :class:`TraceStatistics` -- mean rate, interarrival squared coefficient of
  variation, peak-to-mean ratio, index of dispersion for counts;
* :func:`detect_packet_calls` -- split a trace into packet calls using an idle
  threshold (the standard "think time" heuristic);
* :func:`fit_session_model` -- estimate ``N_pc``, ``D_pc``, ``N_d`` and
  ``D_d`` of the 3GPP model from detected packet calls;
* :func:`fit_ipp` -- the corresponding two-state IPP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.mmpp import InterruptedPoissonProcess
from repro.traffic.session import PacketSessionModel

__all__ = [
    "TraceStatistics",
    "compute_trace_statistics",
    "detect_packet_calls",
    "fit_session_model",
    "fit_ipp",
]


@dataclass(frozen=True)
class TraceStatistics:
    """First- and second-order statistics of one packet-arrival trace.

    Attributes
    ----------
    number_of_packets:
        Packets in the trace.
    duration_s:
        Time spanned by the trace (first to last arrival).
    mean_rate:
        Packets per second over the trace duration.
    interarrival_scv:
        Squared coefficient of variation of the interarrival times
        (1 for a Poisson stream, larger for bursty traffic).
    peak_to_mean_ratio:
        Ratio of the largest windowed rate to the mean rate.
    index_of_dispersion:
        Variance-to-mean ratio of per-window packet counts (1 for Poisson).
    """

    number_of_packets: int
    duration_s: float
    mean_rate: float
    interarrival_scv: float
    peak_to_mean_ratio: float
    index_of_dispersion: float


def _validated_times(packet_times) -> np.ndarray:
    times = np.sort(np.asarray(packet_times, dtype=float))
    if times.ndim != 1:
        raise ValueError("packet_times must be a one-dimensional array of timestamps")
    if times.size < 2:
        raise ValueError("at least two packet arrivals are required")
    if np.any(times < 0):
        raise ValueError("packet timestamps must be non-negative")
    return times


def compute_trace_statistics(packet_times, *, window_s: float | None = None) -> TraceStatistics:
    """Return the summary statistics of a packet-timestamp trace.

    Parameters
    ----------
    packet_times:
        Arrival timestamps in seconds (any order; sorted internally).
    window_s:
        Window length for the counting statistics (peak rate and index of
        dispersion).  Defaults to one tenth of the trace duration, floored at
        one second.
    """
    times = _validated_times(packet_times)
    duration = float(times[-1] - times[0])
    if duration <= 0:
        raise ValueError("the trace must span a positive duration")
    interarrivals = np.diff(times)
    mean_interarrival = float(interarrivals.mean())
    scv = float(interarrivals.var() / mean_interarrival**2) if mean_interarrival > 0 else 0.0
    if window_s is None:
        window_s = max(duration / 10.0, 1.0)
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    edges = np.arange(times[0], times[-1] + window_s, window_s)
    counts, _ = np.histogram(times, bins=edges)
    mean_rate = times.size / duration
    if counts.size and counts.mean() > 0:
        peak_to_mean = float(counts.max() / (mean_rate * window_s))
        dispersion = float(counts.var() / counts.mean())
    else:  # pragma: no cover - degenerate window configuration
        peak_to_mean = 1.0
        dispersion = 1.0
    return TraceStatistics(
        number_of_packets=int(times.size),
        duration_s=duration,
        mean_rate=mean_rate,
        interarrival_scv=scv,
        peak_to_mean_ratio=peak_to_mean,
        index_of_dispersion=dispersion,
    )


def detect_packet_calls(packet_times, idle_threshold_s: float) -> list[np.ndarray]:
    """Split a packet trace into packet calls at idle gaps above a threshold.

    Any interarrival gap larger than ``idle_threshold_s`` is interpreted as a
    reading time separating two packet calls, mirroring how WWW transactions
    are identified in measured traces.
    """
    if idle_threshold_s <= 0:
        raise ValueError("idle_threshold_s must be positive")
    times = _validated_times(packet_times)
    gaps = np.diff(times)
    boundaries = np.where(gaps > idle_threshold_s)[0]
    calls = []
    start = 0
    for boundary in boundaries:
        calls.append(times[start:boundary + 1])
        start = boundary + 1
    calls.append(times[start:])
    return calls


def fit_session_model(
    packet_times,
    idle_threshold_s: float,
    *,
    packet_calls_per_session: float | None = None,
    packet_size_bytes: int | None = None,
    name: str = "fitted session model",
) -> PacketSessionModel:
    """Fit the 3GPP packet-session parameters to a packet trace.

    The trace is split into packet calls at idle gaps above
    ``idle_threshold_s``; the mean number of packets per call and the mean
    in-call interarrival time are estimated directly, and the mean reading time
    is the mean of the gaps that exceeded the threshold.  The number of packet
    calls per *session* is not identifiable from a single concatenated trace,
    so it is taken from ``packet_calls_per_session`` (default: the number of
    detected calls, i.e. the trace is treated as exactly one session).
    """
    calls = detect_packet_calls(packet_times, idle_threshold_s)
    times = _validated_times(packet_times)
    gaps = np.diff(times)
    reading_gaps = gaps[gaps > idle_threshold_s]
    if reading_gaps.size == 0:
        raise ValueError(
            "no reading times detected; lower idle_threshold_s or supply a longer trace"
        )
    in_call_interarrivals = np.concatenate(
        [np.diff(call) for call in calls if call.size >= 2]
    )
    if in_call_interarrivals.size == 0:
        raise ValueError("no in-call interarrival times detected; the threshold is too small")
    packets_per_call = float(np.mean([call.size for call in calls]))
    mean_interarrival = float(in_call_interarrivals.mean())
    mean_reading = float(reading_gaps.mean())
    calls_per_session = (
        float(packet_calls_per_session)
        if packet_calls_per_session is not None
        else float(len(calls))
    )
    kwargs = {}
    if packet_size_bytes is not None:
        kwargs["packet_size_bytes"] = packet_size_bytes
    return PacketSessionModel(
        packet_calls_per_session=max(calls_per_session, 1.0),
        reading_time_s=mean_reading,
        packets_per_packet_call=max(packets_per_call, 1.0),
        packet_interarrival_s=mean_interarrival,
        name=name,
        **kwargs,
    )


def fit_ipp(packet_times, idle_threshold_s: float) -> InterruptedPoissonProcess:
    """Fit a two-state IPP to a packet trace (via the 3GPP session fit)."""
    return fit_session_model(packet_times, idle_threshold_s).to_ipp()
