"""Traffic models for GPRS data sessions.

The paper adopts the 3GPP/UMTS packet-service session model (ETSI TR 101 112):
a session is an alternating sequence of *packet calls* (bursts of data packets,
e.g. the download of a WWW page) and *reading times*.  The number of packet
calls per session and the number of packets per packet call are geometrically
distributed, reading times and packet inter-arrival times are exponential.

That model is equivalent to an interrupted Poisson process (IPP) for the
purposes of the Markov model; this subpackage provides

* :class:`~repro.traffic.session.PacketSessionModel` -- the 3GPP parameters and
  all derived quantities (IPP rates, session duration, mean bit rate),
* :mod:`~repro.traffic.presets` -- the three traffic models of Table 3,
* :mod:`~repro.traffic.units` -- packet/bit conversions and coding-scheme rates,
* :class:`~repro.traffic.sampling.SessionSampler` -- random sampling of whole
  session traces, shared by the network simulator and the examples,
* :mod:`~repro.traffic.applications` -- application presets (WWW, FTP, e-mail,
  WAP) and weighted application mixes,
* :mod:`~repro.traffic.statistics` -- empirical trace statistics (burstiness
  measures) and fitting the 3GPP/IPP model to a packet trace.
"""

from repro.traffic.applications import (
    APPLICATION_PRESETS,
    ApplicationMix,
    MixComponent,
    application,
)
from repro.traffic.presets import (
    TRAFFIC_MODEL_1,
    TRAFFIC_MODEL_2,
    TRAFFIC_MODEL_3,
    TRAFFIC_MODELS,
    traffic_model,
)
from repro.traffic.sampling import PacketCallTrace, SessionSampler, SessionTrace
from repro.traffic.session import PacketSessionModel
from repro.traffic.statistics import (
    TraceStatistics,
    compute_trace_statistics,
    detect_packet_calls,
    fit_ipp,
    fit_session_model,
)
from repro.traffic.units import (
    CODING_SCHEME_RATES_KBIT_S,
    DATA_PACKET_SIZE_BYTES,
    bits_per_packet,
    kbit_per_s_to_packets_per_s,
    packets_per_s_to_kbit_per_s,
    pdch_service_rate,
)

__all__ = [
    "APPLICATION_PRESETS",
    "ApplicationMix",
    "CODING_SCHEME_RATES_KBIT_S",
    "DATA_PACKET_SIZE_BYTES",
    "MixComponent",
    "PacketCallTrace",
    "PacketSessionModel",
    "SessionSampler",
    "SessionTrace",
    "TRAFFIC_MODELS",
    "TRAFFIC_MODEL_1",
    "TRAFFIC_MODEL_2",
    "TRAFFIC_MODEL_3",
    "TraceStatistics",
    "application",
    "bits_per_packet",
    "compute_trace_statistics",
    "detect_packet_calls",
    "fit_ipp",
    "fit_session_model",
    "kbit_per_s_to_packets_per_s",
    "packets_per_s_to_kbit_per_s",
    "pdch_service_rate",
    "traffic_model",
]
