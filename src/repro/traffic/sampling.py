"""Random sampling of 3GPP packet-service sessions.

The network-level simulator and some examples need concrete realisations of
the 3GPP session model: how many packet calls a session has, how many packets
each call carries, and when each packet is generated.  The
:class:`SessionSampler` draws those realisations from a
:class:`~repro.traffic.session.PacketSessionModel` using a dedicated numpy
random generator so simulations are reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traffic.session import PacketSessionModel

__all__ = ["PacketCallTrace", "SessionTrace", "SessionSampler"]


@dataclass(frozen=True)
class PacketCallTrace:
    """One sampled packet call: absolute packet generation times (seconds)."""

    start_time: float
    packet_times: tuple[float, ...]

    @property
    def number_of_packets(self) -> int:
        return len(self.packet_times)

    @property
    def end_time(self) -> float:
        return self.packet_times[-1] if self.packet_times else self.start_time


@dataclass(frozen=True)
class SessionTrace:
    """One sampled packet-service session (a sequence of packet calls)."""

    packet_calls: tuple[PacketCallTrace, ...] = field(default_factory=tuple)

    @property
    def number_of_packet_calls(self) -> int:
        return len(self.packet_calls)

    @property
    def number_of_packets(self) -> int:
        return sum(call.number_of_packets for call in self.packet_calls)

    @property
    def duration(self) -> float:
        """Time from session start until the last packet of the last call."""
        return self.packet_calls[-1].end_time if self.packet_calls else 0.0

    def all_packet_times(self) -> np.ndarray:
        """Return all packet generation times as a sorted numpy array."""
        times = [t for call in self.packet_calls for t in call.packet_times]
        return np.array(times, dtype=float)


class SessionSampler:
    """Draws random realisations of a 3GPP packet-service session.

    Parameters
    ----------
    model:
        The session parameters (``N_pc``, ``D_pc``, ``N_d``, ``D_d``).
    rng:
        Optional numpy random generator; a fresh default generator is created
        when omitted.

    Geometric quantities are sampled with support starting at one (a session
    has at least one packet call, a packet call at least one packet), matching
    the paper's statement that a session "contains only one packet call" in the
    FTP case.
    """

    def __init__(self, model: PacketSessionModel, rng: np.random.Generator | None = None):
        self._model = model
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def model(self) -> PacketSessionModel:
        return self._model

    def _geometric(self, mean: float) -> int:
        """Sample a geometric variate with the given mean and support {1, 2, ...}."""
        if mean <= 1.0:
            return 1
        # For support {1, 2, ...}: mean = 1 / p  =>  p = 1 / mean.
        return int(self._rng.geometric(1.0 / mean))

    def sample_number_of_packet_calls(self) -> int:
        return self._geometric(self._model.packet_calls_per_session)

    def sample_number_of_packets(self) -> int:
        return self._geometric(self._model.packets_per_packet_call)

    def sample_reading_time(self) -> float:
        return float(self._rng.exponential(self._model.reading_time_s))

    def sample_packet_interarrival(self) -> float:
        return float(self._rng.exponential(self._model.packet_interarrival_s))

    def sample_packet_call(self, start_time: float) -> PacketCallTrace:
        """Sample one packet call beginning at ``start_time``."""
        count = self.sample_number_of_packets()
        times = []
        current = start_time
        for _ in range(count):
            current += self.sample_packet_interarrival()
            times.append(current)
        return PacketCallTrace(start_time=start_time, packet_times=tuple(times))

    def sample_session(self, start_time: float = 0.0) -> SessionTrace:
        """Sample a whole session beginning at ``start_time``.

        The first packet call starts immediately; subsequent packet calls are
        separated from the end of the previous call by a reading time.
        """
        calls = []
        number_of_calls = self.sample_number_of_packet_calls()
        current = start_time
        for index in range(number_of_calls):
            if index > 0:
                current += self.sample_reading_time()
            call = self.sample_packet_call(current)
            calls.append(call)
            current = call.end_time
        return SessionTrace(packet_calls=tuple(calls))

    def empirical_mean_rate(self, sessions: int = 200) -> float:
        """Estimate the long-run packet rate (packets/s) from sampled sessions.

        Used by statistical tests comparing the sampler against the analytic
        mean rate of the IPP representation.
        """
        if sessions <= 0:
            raise ValueError("sessions must be positive")
        total_packets = 0
        total_time = 0.0
        for _ in range(sessions):
            trace = self.sample_session()
            total_packets += trace.number_of_packets
            # Account for the trailing reading time that ends the session so the
            # time base matches the renewal structure of the IPP.
            total_time += trace.duration + self.sample_reading_time()
        if total_time == 0:
            return 0.0
        return total_packets / total_time
