"""GPRS session processes: admission, mobility, 3GPP traffic generation and TCP.

A GPRS session request arrives as a Poisson event at a cell.  If fewer than
``M`` sessions are active there, the session is admitted and two concurrent
activities start:

* the *traffic process* runs the 3GPP packet-session model (packet calls of
  geometrically many packets separated by exponential reading times) and hands
  every generated packet to the session's TCP connection, which in turn feeds
  the BSC buffer of the session's current cell;
* the *mobility process* samples exponential dwell times and performs
  handovers to neighbouring cells; if the target cell already has ``M`` active
  sessions the handover fails and the session terminates.

The session stays "active" in its current cell (occupying one of the ``M``
admission slots) until the traffic process has generated its last packet call,
matching the model's session duration ``N_pc (D_pc + N_d D_d)``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.des.engine import SimulationEngine
from repro.des.process import Process, Timeout
from repro.des.random_variates import RandomVariateStream
from repro.simulator.cell import Cell
from repro.simulator.cluster import HexagonalCluster
from repro.simulator.config import TcpConfig
from repro.simulator.tcp import TcpConnection
from repro.traffic.sampling import SessionSampler

__all__ = ["GprsSession", "GprsSessionFactory"]


class GprsSession:
    """One admitted GPRS session with its TCP connection and mobility state."""

    _next_id = 0

    def __init__(
        self,
        engine: SimulationEngine,
        factory: "GprsSessionFactory",
        cell: Cell,
    ) -> None:
        self._engine = engine
        self._factory = factory
        self._cell = cell
        self._active = True
        GprsSession._next_id += 1
        self.identifier = GprsSession._next_id
        self.tcp = TcpConnection(
            engine,
            cell_provider=lambda: self._cell,
            config=factory.tcp_config,
            packet_size_bytes=cell.params.traffic.packet_size_bytes,
        )

    @property
    def current_cell(self) -> Cell:
        return self._cell

    @property
    def active(self) -> bool:
        """Whether the session still occupies an admission slot somewhere."""
        return self._active

    # ------------------------------------------------------------------ #
    # Processes
    # ------------------------------------------------------------------ #
    def traffic_process(self, sampler: SessionSampler, stream: RandomVariateStream):
        """Generate the packet calls of the 3GPP session model and feed TCP."""
        number_of_calls = sampler.sample_number_of_packet_calls()
        for call_index in range(number_of_calls):
            if not self._active:
                break
            if call_index > 0:
                yield Timeout(stream.exponential(sampler.model.reading_time_s))
                if not self._active:
                    break
            packets = sampler.sample_number_of_packets()
            for _ in range(packets):
                yield Timeout(stream.exponential(sampler.model.packet_interarrival_s))
                if not self._active:
                    break
                self.tcp.send_application_packet()
        self._finish()

    def mobility_process(self, cluster: HexagonalCluster, cells: Sequence[Cell],
                         stream: RandomVariateStream):
        """Perform handovers until the session ends or a handover is blocked."""
        while self._active:
            dwell = stream.exponential(self._cell.params.mean_gprs_dwell_time_s)
            yield Timeout(dwell)
            if not self._active:
                return
            target_index = cluster.handover_target(self._cell.index, stream)
            target = cells[target_index]
            if target is self._cell:
                continue
            self._cell.remove_gprs_session()
            if target.try_admit_gprs_session():
                self._cell = target
            else:
                # Handover failure: the session is forced to terminate.
                self._factory.sessions_dropped_on_handover += 1
                self._active = False
                return

    def _finish(self) -> None:
        """Release the admission slot when the traffic generation completes."""
        if self._active:
            self._active = False
            self._cell.remove_gprs_session()
            self._factory.sessions_completed += 1


class GprsSessionFactory:
    """Generates GPRS session requests in every cell of the cluster.

    Parameters
    ----------
    engine:
        The simulation engine.
    cluster, cells:
        Topology and cell objects.
    stream:
        Parent random stream; independent child streams are spawned for
        arrivals, traffic sampling and mobility.
    tcp_config:
        TCP flow-control parameters shared by all sessions.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: HexagonalCluster,
        cells: Sequence[Cell],
        stream: RandomVariateStream,
        tcp_config: TcpConfig,
    ) -> None:
        if len(cells) != cluster.number_of_cells:
            raise ValueError("number of cell objects does not match the cluster size")
        self._engine = engine
        self._cluster = cluster
        self._cells = list(cells)
        self._arrival_stream, self._traffic_stream, self._mobility_stream = stream.spawn(3)
        self.tcp_config = tcp_config
        self.sessions_started = 0
        self.sessions_completed = 0
        self.sessions_dropped_on_handover = 0
        self.sessions_blocked = 0

    def start(self) -> list[Process]:
        """Start one Poisson session-request process per cell; return the processes."""
        processes = []
        for cell in self._cells:
            processes.append(
                Process(
                    self._engine,
                    self._arrival_process(cell),
                    name=f"gprs-arrivals-cell{cell.index}",
                )
            )
        return processes

    def _arrival_process(self, cell: Cell):
        rate = cell.params.gprs_arrival_rate
        if rate <= 0:
            return
            yield  # pragma: no cover - makes this function a generator
        sampler = SessionSampler(cell.params.traffic, self._traffic_stream.generator)
        while True:
            yield Timeout(self._arrival_stream.exponential_rate(rate))
            if not cell.try_admit_gprs_session():
                self.sessions_blocked += 1
                continue
            self.sessions_started += 1
            session = GprsSession(self._engine, self, cell)
            Process(
                self._engine,
                session.traffic_process(sampler, self._traffic_stream),
                name=f"gprs-traffic-{session.identifier}",
            )
            Process(
                self._engine,
                session.mobility_process(self._cluster, self._cells, self._mobility_stream),
                name=f"gprs-mobility-{session.identifier}",
            )
