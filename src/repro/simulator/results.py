"""Measurement aggregation of the network-level simulator.

At every batch boundary the raw per-cell collectors are read out into one
:class:`BatchObservation`; at the end of the run the per-batch values are fed
into :class:`~repro.des.batch_means.BatchMeansEstimator` instances, producing
the 95% confidence intervals reported alongside the simulation curves of the
paper.  The measures mirror those of the analytical model so the two can be
compared directly (:meth:`SimulationResults.compare_with`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.des.batch_means import BatchMeansEstimator, ConfidenceInterval
from repro.traffic.units import packets_per_s_to_kbit_per_s

__all__ = ["BatchObservation", "CellMeasurements", "SimulationResults"]


@dataclass(frozen=True)
class BatchObservation:
    """Measures of one cell over one measurement batch."""

    duration_s: float
    carried_data_traffic: float
    mean_buffer_occupancy: float
    mean_gsm_calls: float
    mean_gprs_sessions: float
    packets_offered: int
    packets_lost: int
    packets_served: int
    mean_packet_delay_s: float
    gsm_calls_offered: int
    gsm_calls_blocked: int
    gprs_sessions_offered: int
    gprs_sessions_blocked: int

    @property
    def packet_loss_probability(self) -> float:
        if self.packets_offered == 0:
            return 0.0
        return self.packets_lost / self.packets_offered

    @property
    def packet_throughput(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.packets_served / self.duration_s

    @property
    def throughput_per_user(self) -> float:
        if self.mean_gprs_sessions <= 0:
            return 0.0
        return self.packet_throughput / self.mean_gprs_sessions

    @property
    def voice_blocking_probability(self) -> float:
        if self.gsm_calls_offered == 0:
            return 0.0
        return self.gsm_calls_blocked / self.gsm_calls_offered

    @property
    def gprs_blocking_probability(self) -> float:
        if self.gprs_sessions_offered == 0:
            return 0.0
        return self.gprs_sessions_blocked / self.gprs_sessions_offered


_METRICS = (
    "carried_data_traffic",
    "packet_loss_probability",
    "queueing_delay",
    "throughput_per_user",
    "throughput_per_user_kbit_s",
    "carried_voice_traffic",
    "voice_blocking_probability",
    "average_gprs_sessions",
    "gprs_blocking_probability",
    "mean_queue_length",
)


@dataclass
class CellMeasurements:
    """Collects batch observations of one cell and turns them into intervals."""

    confidence_level: float = 0.95
    observations: list[BatchObservation] = field(default_factory=list)

    def add(self, observation: BatchObservation) -> None:
        self.observations.append(observation)

    def _metric_value(self, observation: BatchObservation, metric: str) -> float:
        if metric == "carried_data_traffic":
            return observation.carried_data_traffic
        if metric == "packet_loss_probability":
            return observation.packet_loss_probability
        if metric == "queueing_delay":
            return observation.mean_packet_delay_s
        if metric == "throughput_per_user":
            return observation.throughput_per_user
        if metric == "throughput_per_user_kbit_s":
            return packets_per_s_to_kbit_per_s(observation.throughput_per_user)
        if metric == "carried_voice_traffic":
            return observation.mean_gsm_calls
        if metric == "voice_blocking_probability":
            return observation.voice_blocking_probability
        if metric == "average_gprs_sessions":
            return observation.mean_gprs_sessions
        if metric == "gprs_blocking_probability":
            return observation.gprs_blocking_probability
        if metric == "mean_queue_length":
            return observation.mean_buffer_occupancy
        raise KeyError(f"unknown metric {metric!r}")

    def interval(self, metric: str) -> ConfidenceInterval:
        """Return the batch-means confidence interval of a metric."""
        if not self.observations:
            raise ValueError("no batch observations recorded")
        estimator = BatchMeansEstimator(self.confidence_level)
        for observation in self.observations:
            estimator.add_batch_mean(self._metric_value(observation, metric))
        return estimator.confidence_interval()

    def mean(self, metric: str) -> float:
        """Return the grand mean of a metric over all batches."""
        return self.interval(metric).mean

    def available_metrics(self) -> tuple[str, ...]:
        return _METRICS


@dataclass(frozen=True)
class SimulationResults:
    """Results of one simulation run (measurements of the mid cell).

    Attributes
    ----------
    mid_cell:
        Batch measurements of the measured mid cell.
    total_simulated_time_s:
        Simulated time including warm-up.
    events_processed:
        Number of simulation events executed (a cost indicator).
    """

    mid_cell: CellMeasurements
    total_simulated_time_s: float
    events_processed: int

    def interval(self, metric: str) -> ConfidenceInterval:
        """Confidence interval of a mid-cell metric (see ``available_metrics``)."""
        return self.mid_cell.interval(metric)

    def mean(self, metric: str) -> float:
        """Grand mean of a mid-cell metric."""
        return self.mid_cell.mean(metric)

    def available_metrics(self) -> tuple[str, ...]:
        return self.mid_cell.available_metrics()

    def as_dict(self) -> dict[str, float]:
        """Return all mid-cell metric means as a dictionary."""
        return {metric: self.mean(metric) for metric in self.available_metrics()}

    def compare_with(self, analytical_measures) -> dict[str, dict[str, float]]:
        """Compare against :class:`~repro.core.measures.GprsPerformanceMeasures`.

        Returns, for every metric present in both, the simulation interval and
        the analytical value together with a flag telling whether the
        analytical value lies inside the simulation confidence interval (the
        validation criterion used in Section 5.2 of the paper).
        """
        mapping = {
            "carried_data_traffic": analytical_measures.carried_data_traffic,
            "packet_loss_probability": analytical_measures.packet_loss_probability,
            "queueing_delay": analytical_measures.queueing_delay,
            "throughput_per_user": analytical_measures.throughput_per_user,
            "carried_voice_traffic": analytical_measures.carried_voice_traffic,
            "voice_blocking_probability": analytical_measures.voice_blocking_probability,
            "average_gprs_sessions": analytical_measures.average_gprs_sessions,
            "gprs_blocking_probability": analytical_measures.gprs_blocking_probability,
            "mean_queue_length": analytical_measures.mean_queue_length,
        }
        comparison: dict[str, dict[str, float]] = {}
        for metric, analytical_value in mapping.items():
            interval = self.interval(metric)
            comparison[metric] = {
                "simulation_mean": interval.mean,
                "confidence_half_width": interval.half_width,
                "analytical": analytical_value,
                "analytical_inside_interval": float(interval.contains(analytical_value)),
            }
        return comparison
