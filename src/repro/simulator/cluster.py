"""Hexagonal cell cluster topology.

The paper validates the single-cell Markov model against a simulator of a
cluster of seven hexagonal cells: one mid cell surrounded by a ring of six
neighbours.  Handovers move users to a uniformly chosen neighbouring cell;
users leaving the outer ring re-enter the cluster on the opposite side
(wrap-around), which keeps the load of every cell statistically identical --
the property the handover-balancing argument of the model relies on.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["HexagonalCluster"]


class HexagonalCluster:
    """Topology of a cluster of hexagonal cells.

    Parameters
    ----------
    number_of_cells:
        Cluster size.  The canonical configuration is seven (one mid cell and
        one ring); any positive number is supported -- cells are arranged on a
        ring around cell 0 and the neighbourhood relation wraps around.
    """

    MID_CELL = 0

    def __init__(self, number_of_cells: int = 7) -> None:
        if number_of_cells < 1:
            raise ValueError("the cluster needs at least one cell")
        self._number_of_cells = number_of_cells
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(number_of_cells))
        if number_of_cells > 1:
            ring = list(range(1, number_of_cells))
            for position, cell in enumerate(ring):
                # Mid cell is adjacent to every ring cell.
                self._graph.add_edge(self.MID_CELL, cell)
                # Ring cells are adjacent to their ring neighbours.
                if len(ring) > 1:
                    self._graph.add_edge(cell, ring[(position + 1) % len(ring)])

    @property
    def number_of_cells(self) -> int:
        return self._number_of_cells

    @property
    def graph(self) -> nx.Graph:
        """The neighbourhood graph (networkx, cells as integer nodes)."""
        return self._graph

    def neighbours(self, cell: int) -> list[int]:
        """Return the neighbouring cells of ``cell`` (sorted for determinism)."""
        self._validate(cell)
        if self._number_of_cells == 1:
            return [cell]
        return sorted(self._graph.neighbors(cell))

    def handover_target(self, cell: int, stream) -> int:
        """Return a uniformly chosen neighbouring cell for a handover.

        Parameters
        ----------
        cell:
            The cell the user currently resides in.
        stream:
            A :class:`~repro.des.random_variates.RandomVariateStream` used for
            the uniform choice.
        """
        candidates = self.neighbours(cell)
        return int(stream.choice(candidates))

    def is_mid_cell(self, cell: int) -> bool:
        """Whether ``cell`` is the measured mid cell."""
        self._validate(cell)
        return cell == self.MID_CELL

    def _validate(self, cell: int) -> None:
        if not 0 <= cell < self._number_of_cells:
            raise ValueError(f"cell index {cell} out of range (cluster has "
                             f"{self._number_of_cells} cells)")
