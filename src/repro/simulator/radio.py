"""Downlink radio-interface arithmetic: TDMA frames, RLC blocks, multislot transfer.

GPRS transmits link-layer RLC blocks, one per allocated time slot per TDMA
frame.  With coding scheme CS-2 each block carries 268 payload bits; a TDMA
frame lasts about 4.615 ms, so a single PDCH carries 268 bit / 4.615 ms which
is the 13.4 kbit/s quoted by the paper.  A 480-byte network-layer packet is
segmented into ``ceil(3840 / 268) = 15`` blocks; when ``c`` time slots are
allocated to the mobile station (multislot operation, at most 8) the blocks are
spread over the slots and the transfer takes ``ceil(blocks / c)`` frames.
"""

from __future__ import annotations

import math

from repro.traffic.units import (
    CODING_SCHEME_RATES_KBIT_S,
    DATA_PACKET_SIZE_BYTES,
    MAX_TIME_SLOTS_PER_STATION,
    TDMA_FRAME_DURATION_S,
)

__all__ = [
    "RLC_BLOCK_PAYLOAD_BITS",
    "rlc_blocks_per_packet",
    "transmission_time",
    "effective_rate_kbit_s",
]

#: Payload bits carried by one RLC block for each coding scheme.  The values
#: are chosen so that one block per TDMA frame reproduces the per-PDCH rates
#: of Table 2 (e.g. CS-2: 268 bit / 4.615 ms = 13.4 kbit/s  -> 61.8 ~ 62 bits? no,
#: 13.4 kbit/s * 4.615 ms = 61.8 bits would be a naive derivation; GPRS RLC
#: blocks are interleaved over four bursts, i.e. one radio block every 4 TDMA
#: frames, carrying 268 bits under CS-2).  We therefore model a *radio block
#: period* of four TDMA frames per block.
RLC_BLOCK_PAYLOAD_BITS: dict[str, int] = {
    "CS-1": 181,
    "CS-2": 268,
    "CS-3": 312,
    "CS-4": 428,
}

#: One RLC radio block occupies the same time slot in four consecutive TDMA
#: frames; including the idle/control frames of the 52-multiframe this yields
#: one radio block every 20 ms per PDCH (12 blocks per 240 ms multiframe),
#: which reproduces the per-PDCH rates of Table 2 exactly
#: (e.g. CS-2: 268 bit / 20 ms = 13.4 kbit/s).
RADIO_BLOCK_PERIOD_S = 0.020

#: Four consecutive TDMA frames carry one radio block (before idle frames).
TDMA_FRAMES_PER_RADIO_BLOCK = 4

# Re-export for introspection: the raw four-frame duration (without idle
# frames) is available for callers that want the finer-grained figure.
RAW_RADIO_BLOCK_DURATION_S = TDMA_FRAMES_PER_RADIO_BLOCK * TDMA_FRAME_DURATION_S


def rlc_blocks_per_packet(
    packet_size_bytes: int = DATA_PACKET_SIZE_BYTES, coding_scheme: str = "CS-2"
) -> int:
    """Return the number of RLC blocks needed to carry one network-layer packet."""
    if packet_size_bytes <= 0:
        raise ValueError("packet size must be positive")
    payload = _payload_bits(coding_scheme)
    return math.ceil(packet_size_bytes * 8 / payload)


def transmission_time(
    packet_size_bytes: int = DATA_PACKET_SIZE_BYTES,
    channels: int = 1,
    coding_scheme: str = "CS-2",
) -> float:
    """Return the downlink transfer time of one packet over ``channels`` PDCHs.

    The packet's RLC blocks are spread over the allocated time slots; each slot
    carries one block per radio-block period (20 ms).  The number of channels
    is clipped to the multislot maximum of eight.
    """
    if channels < 1:
        raise ValueError("at least one channel is required for a transfer")
    channels = min(channels, MAX_TIME_SLOTS_PER_STATION)
    blocks = rlc_blocks_per_packet(packet_size_bytes, coding_scheme)
    block_rounds = math.ceil(blocks / channels)
    return block_rounds * RADIO_BLOCK_PERIOD_S


def effective_rate_kbit_s(channels: int, coding_scheme: str = "CS-2") -> float:
    """Return the aggregate data rate of ``channels`` PDCHs in kbit/s."""
    if channels < 0:
        raise ValueError("channels must be non-negative")
    return channels * CODING_SCHEME_RATES_KBIT_S[_validated(coding_scheme)]


def _payload_bits(coding_scheme: str) -> int:
    return RLC_BLOCK_PAYLOAD_BITS[_validated(coding_scheme)]


def _validated(coding_scheme: str) -> str:
    if coding_scheme not in RLC_BLOCK_PAYLOAD_BITS:
        raise ValueError(
            f"unknown coding scheme {coding_scheme!r}; expected one of "
            f"{sorted(RLC_BLOCK_PAYLOAD_BITS)}"
        )
    return coding_scheme
