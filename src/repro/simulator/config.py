"""Configuration of the network-level GSM/GPRS simulator.

The simulator shares the cell-level parameters with the analytical model
(:class:`~repro.core.parameters.GprsModelParameters`) and adds the knobs that
only exist at the network level: the number of cells in the cluster, the TCP
behaviour, the run length, warm-up period and the number of batches for the
batch-means confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.parameters import GprsModelParameters

__all__ = ["TcpConfig", "SimulationConfig"]


@dataclass(frozen=True)
class TcpConfig:
    """Parameters of the simplified TCP Reno flow control used per GPRS session.

    Parameters
    ----------
    enabled:
        When false, packets are released into the BSC buffer as soon as the
        traffic model generates them (no flow control at all).
    initial_window:
        Initial congestion window in packets (slow start begins here).
    max_window:
        Upper bound on the congestion window (receiver window) in packets.
    initial_ssthresh:
        Initial slow-start threshold in packets.
    duplicate_ack_threshold:
        Number of duplicate ACKs that triggers a fast retransmit.
    retransmission_timeout_s:
        Initial retransmission timeout.  With ``adaptive_rto`` enabled this is
        only the starting value; the sender then tracks the measured round-trip
        time with Jacobson's estimator.
    wired_round_trip_s:
        Fixed round-trip latency of the wired path (Internet + GPRS core)
        added to the radio delay for every ACK.
    adaptive_rto:
        When true the retransmission timeout follows Jacobson's SRTT/RTTVAR
        estimation with Karn's rule (no samples from retransmitted segments),
        as in every deployed TCP.  When false the timeout stays fixed at
        ``retransmission_timeout_s`` (apart from the exponential backoff).
    min_retransmission_timeout_s, max_retransmission_timeout_s:
        Clamping bounds of the adaptive timeout.
    rto_backoff_factor:
        Multiplicative backoff applied to the timeout after every expiry
        (classic exponential backoff); reset as soon as new data is
        acknowledged.  Set to 1.0 to disable backoff.
    """

    enabled: bool = True
    initial_window: int = 1
    max_window: int = 32
    initial_ssthresh: int = 16
    duplicate_ack_threshold: int = 3
    retransmission_timeout_s: float = 3.0
    wired_round_trip_s: float = 0.1
    adaptive_rto: bool = True
    min_retransmission_timeout_s: float = 1.0
    max_retransmission_timeout_s: float = 64.0
    rto_backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.initial_window < 1:
            raise ValueError("initial_window must be at least 1")
        if self.max_window < self.initial_window:
            raise ValueError("max_window must be at least initial_window")
        if self.initial_ssthresh < 1:
            raise ValueError("initial_ssthresh must be at least 1")
        if self.duplicate_ack_threshold < 1:
            raise ValueError("duplicate_ack_threshold must be at least 1")
        if self.retransmission_timeout_s <= 0:
            raise ValueError("retransmission_timeout_s must be positive")
        if self.wired_round_trip_s < 0:
            raise ValueError("wired_round_trip_s must be non-negative")
        if self.min_retransmission_timeout_s <= 0:
            raise ValueError("min_retransmission_timeout_s must be positive")
        if self.max_retransmission_timeout_s < self.min_retransmission_timeout_s:
            raise ValueError(
                "max_retransmission_timeout_s must be at least min_retransmission_timeout_s"
            )
        if self.rto_backoff_factor < 1.0:
            raise ValueError("rto_backoff_factor must be at least 1.0")


@dataclass(frozen=True)
class SimulationConfig:
    """Complete configuration of one simulation run.

    Parameters
    ----------
    cell_parameters:
        The per-cell configuration shared with the analytical model.  The
        call arrival rates are interpreted per cell.
    number_of_cells:
        Cells in the cluster; the paper uses a cluster of seven hexagonal
        cells with measurements taken in the mid cell (index 0).
    simulation_time_s:
        Measured simulation time (after warm-up) in seconds.
    warmup_time_s:
        Warm-up period discarded before measurements start.
    batches:
        Number of batches for the batch-means confidence intervals.
    seed:
        Master random seed; every cell and traffic class receives an
        independent child stream.
    tcp:
        TCP flow-control configuration.
    """

    cell_parameters: GprsModelParameters
    number_of_cells: int = 7
    simulation_time_s: float = 20_000.0
    warmup_time_s: float = 2_000.0
    batches: int = 10
    seed: int = 20020527
    tcp: TcpConfig = field(default_factory=TcpConfig)

    def __post_init__(self) -> None:
        if self.number_of_cells < 1:
            raise ValueError("the cluster needs at least one cell")
        if self.simulation_time_s <= 0:
            raise ValueError("simulation_time_s must be positive")
        if self.warmup_time_s < 0:
            raise ValueError("warmup_time_s must be non-negative")
        if self.batches < 2:
            raise ValueError("at least two batches are required for confidence intervals")

    @property
    def batch_duration_s(self) -> float:
        """Duration of one measurement batch."""
        return self.simulation_time_s / self.batches

    @property
    def total_time_s(self) -> float:
        """Warm-up plus measured time."""
        return self.warmup_time_s + self.simulation_time_s

    def replace(self, **overrides) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)
