"""GSM voice-call traffic processes.

New voice calls arrive at every cell as a Poisson process with rate
``lambda_GSM``; each call has an exponential duration (mean 120 s) and an
exponential dwell time per cell (mean 60 s).  If the call is still active when
the dwell time expires, the mobile station hands over to a uniformly chosen
neighbouring cell; a handover into a cell without a free non-reserved channel
fails and the call is dropped (as in the Markov model, where blocked handover
arrivals are simply lost).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.des.engine import SimulationEngine
from repro.des.process import Process, Timeout
from repro.des.random_variates import RandomVariateStream
from repro.simulator.cell import Cell
from repro.simulator.cluster import HexagonalCluster

__all__ = ["VoiceCallFactory"]


class VoiceCallFactory:
    """Generates and manages GSM voice calls in every cell of the cluster.

    Parameters
    ----------
    engine:
        The simulation engine.
    cluster:
        The cell topology (handover targets).
    cells:
        The cell objects, indexed consistently with ``cluster``.
    stream:
        Random-variate stream used for arrivals, durations, dwell times and
        handover target selection.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cluster: HexagonalCluster,
        cells: Sequence[Cell],
        stream: RandomVariateStream,
    ) -> None:
        if len(cells) != cluster.number_of_cells:
            raise ValueError("number of cell objects does not match the cluster size")
        self._engine = engine
        self._cluster = cluster
        self._cells = list(cells)
        self._stream = stream
        self.calls_started = 0
        self.calls_completed = 0
        self.calls_dropped_on_handover = 0

    def start(self) -> list[Process]:
        """Start one Poisson arrival process per cell; return the processes."""
        processes = []
        for cell in self._cells:
            processes.append(
                Process(
                    self._engine,
                    self._arrival_process(cell),
                    name=f"gsm-arrivals-cell{cell.index}",
                )
            )
        return processes

    # ------------------------------------------------------------------ #
    # Processes
    # ------------------------------------------------------------------ #
    def _arrival_process(self, cell: Cell):
        """Poisson stream of new voice calls for one cell."""
        rate = cell.params.gsm_arrival_rate
        if rate <= 0:
            return
            yield  # pragma: no cover - makes this function a generator
        while True:
            yield Timeout(self._stream.exponential_rate(rate))
            if cell.try_admit_gsm_call():
                self.calls_started += 1
                Process(
                    self._engine,
                    self._call_process(cell),
                    name=f"gsm-call-cell{cell.index}",
                )

    def _call_process(self, starting_cell: Cell):
        """Lifetime of one admitted voice call, including handovers between cells."""
        cell = starting_cell
        remaining_duration = self._stream.exponential(
            cell.params.mean_gsm_call_duration_s
        )
        while True:
            dwell_time = self._stream.exponential(cell.params.mean_gsm_dwell_time_s)
            if remaining_duration <= dwell_time:
                # The call completes inside the current cell.
                yield Timeout(remaining_duration)
                cell.release_gsm_call()
                self.calls_completed += 1
                return
            # The mobile station leaves the cell before the call ends.
            yield Timeout(dwell_time)
            remaining_duration -= dwell_time
            target_index = self._cluster.handover_target(cell.index, self._stream)
            target = self._cells[target_index]
            cell.release_gsm_call()
            if target is cell:
                # Single-cell cluster: the "handover" stays in place.
                if not cell.try_admit_gsm_call():
                    self.calls_dropped_on_handover += 1
                    return
                continue
            if target.try_admit_gsm_call():
                cell = target
            else:
                # Handover failure: the call is forced to terminate.
                self.calls_dropped_on_handover += 1
                return
