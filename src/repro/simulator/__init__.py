"""Detailed network-level simulator of an integrated GSM/GPRS cell cluster.

This is the reproduction of the validation simulator of the paper (originally
written with the CSIM library): a cluster of seven hexagonal cells, each with
its own channel pool and BSC buffer, explicit user mobility with handovers
between neighbouring cells, the 3GPP packet-session traffic model, per-packet
downlink transmission with TDMA-frame/RLC-block granularity and multislot
channel allocation, and TCP flow control with slow start, congestion
avoidance, duplicate-ACK fast retransmit and timeout recovery.

Measurements are collected for the mid cell only (as in the paper) and are
reported with 95% batch-means confidence intervals.

Public entry point: :class:`~repro.simulator.simulation.GprsNetworkSimulator`.
"""

from repro.simulator.cell import Cell
from repro.simulator.cluster import HexagonalCluster
from repro.simulator.config import SimulationConfig
from repro.simulator.radio import rlc_blocks_per_packet, transmission_time
from repro.simulator.results import CellMeasurements, SimulationResults
from repro.simulator.simulation import GprsNetworkSimulator
from repro.simulator.tcp import TcpConnection

__all__ = [
    "Cell",
    "CellMeasurements",
    "GprsNetworkSimulator",
    "HexagonalCluster",
    "SimulationConfig",
    "SimulationResults",
    "TcpConnection",
    "rlc_blocks_per_packet",
    "transmission_time",
]
