"""Top-level driver of the network-level GSM/GPRS simulation.

:class:`GprsNetworkSimulator` wires the pieces together: it builds the cell
cluster, starts the per-cell radio schedulers, the GSM voice traffic and the
GPRS session factories, runs the warm-up period, then runs the configured
number of measurement batches, reading the mid-cell statistics at every batch
boundary.  The result is a :class:`~repro.simulator.results.SimulationResults`
with batch-means confidence intervals for every measure the analytical model
reports.
"""

from __future__ import annotations

from repro.des.engine import SimulationEngine
from repro.des.random_variates import RandomVariateStream
from repro.simulator.cell import Cell
from repro.simulator.cluster import HexagonalCluster
from repro.simulator.config import SimulationConfig
from repro.simulator.gprs import GprsSessionFactory
from repro.simulator.gsm import VoiceCallFactory
from repro.simulator.results import BatchObservation, CellMeasurements, SimulationResults

__all__ = ["GprsNetworkSimulator"]


class GprsNetworkSimulator:
    """Discrete-event simulator of a cluster of GSM/GPRS cells.

    Parameters
    ----------
    config:
        Complete simulation configuration (cell parameters, cluster size, run
        length, warm-up, batches, TCP behaviour, random seed).

    Example
    -------
    >>> from repro import GprsModelParameters, traffic_model
    >>> from repro.simulator import GprsNetworkSimulator, SimulationConfig
    >>> params = GprsModelParameters.from_traffic_model(
    ...     traffic_model(3), total_call_arrival_rate=0.3, buffer_size=20)
    >>> config = SimulationConfig(cell_parameters=params, number_of_cells=3,
    ...                           simulation_time_s=500.0, warmup_time_s=50.0,
    ...                           batches=5)
    >>> results = GprsNetworkSimulator(config).run()
    >>> 0.0 <= results.mean("packet_loss_probability") <= 1.0
    True
    """

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config
        self._engine = SimulationEngine()
        self._cluster = HexagonalCluster(config.number_of_cells)
        master_stream = RandomVariateStream(config.seed)
        self._voice_stream, self._data_stream = master_stream.spawn(2)
        self._cells = [
            Cell(self._engine, index, config.cell_parameters)
            for index in range(config.number_of_cells)
        ]
        self._voice_factory = VoiceCallFactory(
            self._engine, self._cluster, self._cells, self._voice_stream
        )
        self._data_factory = GprsSessionFactory(
            self._engine, self._cluster, self._cells, self._data_stream, config.tcp
        )
        self._started = False

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def engine(self) -> SimulationEngine:
        return self._engine

    @property
    def cells(self) -> list[Cell]:
        return list(self._cells)

    @property
    def mid_cell(self) -> Cell:
        return self._cells[HexagonalCluster.MID_CELL]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _start_processes(self) -> None:
        if self._started:
            return
        for cell in self._cells:
            cell.start_scheduler()
        self._voice_factory.start()
        self._data_factory.start()
        self._started = True

    def _read_batch(self, cell: Cell, batch_start: float, batch_end: float) -> BatchObservation:
        statistics = cell.statistics
        duration = batch_end - batch_start
        return BatchObservation(
            duration_s=duration,
            carried_data_traffic=statistics.pdch_in_use.time_average(batch_end),
            mean_buffer_occupancy=statistics.buffer_occupancy.time_average(batch_end),
            mean_gsm_calls=statistics.gsm_calls_active.time_average(batch_end),
            mean_gprs_sessions=statistics.gprs_sessions_active.time_average(batch_end),
            packets_offered=statistics.packets_offered.count,
            packets_lost=statistics.packets_lost.count,
            packets_served=statistics.packets_served.count,
            mean_packet_delay_s=statistics.packet_delay.mean,
            gsm_calls_offered=statistics.gsm_calls_offered.count,
            gsm_calls_blocked=statistics.gsm_calls_blocked.count,
            gprs_sessions_offered=statistics.gprs_sessions_offered.count,
            gprs_sessions_blocked=statistics.gprs_sessions_blocked.count,
        )

    def run(self) -> SimulationResults:
        """Run warm-up plus all measurement batches and return the mid-cell results."""
        config = self._config
        self._start_processes()

        # Warm-up: run and then discard all statistics.
        if config.warmup_time_s > 0:
            self._engine.run(until=config.warmup_time_s)
        for cell in self._cells:
            cell.statistics.reset(self._engine.now)

        measurements = CellMeasurements()
        batch_start = self._engine.now
        for batch_index in range(config.batches):
            batch_end = config.warmup_time_s + (batch_index + 1) * config.batch_duration_s
            self._engine.run(until=batch_end)
            observation = self._read_batch(self.mid_cell, batch_start, self._engine.now)
            measurements.add(observation)
            for cell in self._cells:
                cell.statistics.reset(self._engine.now)
            batch_start = self._engine.now

        return SimulationResults(
            mid_cell=measurements,
            total_simulated_time_s=self._engine.now,
            events_processed=self._engine.processed_events,
        )
