"""One cell of the simulated GSM/GPRS network.

A :class:`Cell` owns the scarce resources of the radio interface:

* the pool of ``N`` physical channels, of which at most ``N_GSM = N - N_GPRS``
  may be taken by circuit-switched GSM calls (GSM has priority on those
  on-demand channels; the ``N_GPRS`` reserved PDCHs are never given to voice),
* the BSC FIFO buffer of at most ``K`` data packets,
* the admission counter of active GPRS sessions (capacity ``M``).

It also owns the downlink *radio scheduler*: a simulation process that starts
packet transfers whenever packets are buffered and PDCHs are free, allocating
up to eight channels per packet (multislot operation).  All measurements of
the paper are collected per cell in a :class:`CellStatistics` object.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.parameters import GprsModelParameters
from repro.des.engine import SimulationEngine
from repro.des.process import Process, Timeout
from repro.des.statistics import Counter, Tally, TimeWeightedStatistic
from repro.simulator.radio import transmission_time
from repro.traffic.units import MAX_TIME_SLOTS_PER_STATION

__all__ = ["Packet", "Cell", "CellStatistics"]


@dataclass
class Packet:
    """One network-layer data packet travelling through the downlink.

    Attributes
    ----------
    session:
        The GPRS session (or TCP connection) the packet belongs to; the radio
        scheduler notifies it when the packet has been transmitted.
    sequence_number:
        TCP sequence number within the owning connection.
    size_bytes:
        Packet size (480 byte unless overridden).
    created_at:
        Simulation time at which the packet entered the BSC buffer.
    """

    session: object
    sequence_number: int
    size_bytes: int
    created_at: float = 0.0


@dataclass
class CellStatistics:
    """Raw measurement collectors of one cell (reset at every batch boundary)."""

    pdch_in_use: TimeWeightedStatistic = field(
        default_factory=lambda: TimeWeightedStatistic(name="pdch in use")
    )
    buffer_occupancy: TimeWeightedStatistic = field(
        default_factory=lambda: TimeWeightedStatistic(name="buffer occupancy")
    )
    gsm_calls_active: TimeWeightedStatistic = field(
        default_factory=lambda: TimeWeightedStatistic(name="gsm calls active")
    )
    gprs_sessions_active: TimeWeightedStatistic = field(
        default_factory=lambda: TimeWeightedStatistic(name="gprs sessions active")
    )
    packet_delay: Tally = field(default_factory=lambda: Tally(name="packet delay"))
    packets_offered: Counter = field(default_factory=lambda: Counter(name="packets offered"))
    packets_lost: Counter = field(default_factory=lambda: Counter(name="packets lost"))
    packets_served: Counter = field(default_factory=lambda: Counter(name="packets served"))
    gsm_calls_offered: Counter = field(default_factory=lambda: Counter(name="gsm offered"))
    gsm_calls_blocked: Counter = field(default_factory=lambda: Counter(name="gsm blocked"))
    gprs_sessions_offered: Counter = field(
        default_factory=lambda: Counter(name="gprs offered")
    )
    gprs_sessions_blocked: Counter = field(
        default_factory=lambda: Counter(name="gprs blocked")
    )

    def reset(self, time: float) -> None:
        """Restart all collectors at ``time`` (start of a new measurement batch)."""
        self.pdch_in_use.reset(time)
        self.buffer_occupancy.reset(time)
        self.gsm_calls_active.reset(time)
        self.gprs_sessions_active.reset(time)
        self.packet_delay.reset()
        self.packets_offered.reset()
        self.packets_lost.reset()
        self.packets_served.reset()
        self.gsm_calls_offered.reset()
        self.gsm_calls_blocked.reset()
        self.gprs_sessions_offered.reset()
        self.gprs_sessions_blocked.reset()


class Cell:
    """Radio resources, BSC buffer and downlink scheduler of one cell.

    Parameters
    ----------
    engine:
        The simulation engine.
    index:
        Cell index within the cluster (0 is the measured mid cell).
    params:
        The cell configuration shared with the analytical model.
    """

    def __init__(self, engine: SimulationEngine, index: int, params: GprsModelParameters):
        self._engine = engine
        self.index = index
        self.params = params
        self._gsm_in_use = 0
        self._gprs_sessions = 0
        self._data_channels_in_use = 0
        self._packets_in_transfer = 0
        self._buffer: deque[Packet] = deque()
        self.statistics = CellStatistics()
        self._scheduler_wakeup = engine.event(name=f"cell{index}.wakeup")
        self._scheduler_process: Process | None = None

    # ------------------------------------------------------------------ #
    # Channel accounting
    # ------------------------------------------------------------------ #
    @property
    def gsm_calls_in_progress(self) -> int:
        return self._gsm_in_use

    @property
    def active_gprs_sessions(self) -> int:
        return self._gprs_sessions

    @property
    def buffer_level(self) -> int:
        """Packets in the BSC buffer, including packets currently being transmitted.

        This matches the state component ``k`` of the Markov model, where a
        packet occupies a buffer place until its transmission has finished.
        """
        return len(self._buffer) + self._packets_in_transfer

    @property
    def waiting_packets(self) -> int:
        """Packets waiting in the BSC buffer (not yet being transmitted)."""
        return len(self._buffer)

    @property
    def data_channels_in_use(self) -> int:
        return self._data_channels_in_use

    @property
    def free_data_channels(self) -> int:
        """Channels currently available for packet transfer.

        All channels not occupied by voice calls may carry data (the reserved
        PDCHs plus every idle on-demand channel); channels already allocated to
        ongoing packet transfers are subtracted.  The value can momentarily be
        negative right after a voice call seized a channel that a packet
        transfer is still using; it is floored at zero because no *new*
        transfer may start in that situation.
        """
        return max(
            0,
            self.params.number_of_channels - self._gsm_in_use - self._data_channels_in_use,
        )

    # ------------------------------------------------------------------ #
    # GSM voice calls
    # ------------------------------------------------------------------ #
    def try_admit_gsm_call(self) -> bool:
        """Admit a voice call if a non-reserved channel is free; record the attempt."""
        self.statistics.gsm_calls_offered.increment()
        if self._gsm_in_use >= self.params.gsm_channels:
            self.statistics.gsm_calls_blocked.increment()
            return False
        self._gsm_in_use += 1
        self.statistics.gsm_calls_active.update(self._gsm_in_use, self._engine.now)
        return True

    def release_gsm_call(self) -> None:
        """Release the channel of a finished (or handed-over) voice call."""
        if self._gsm_in_use <= 0:
            raise RuntimeError(f"cell {self.index}: GSM channel released without a call")
        self._gsm_in_use -= 1
        self.statistics.gsm_calls_active.update(self._gsm_in_use, self._engine.now)
        self._wake_scheduler()

    # ------------------------------------------------------------------ #
    # GPRS session admission
    # ------------------------------------------------------------------ #
    def try_admit_gprs_session(self) -> bool:
        """Admit a GPRS session if fewer than ``M`` are active; record the attempt."""
        self.statistics.gprs_sessions_offered.increment()
        if self._gprs_sessions >= self.params.max_gprs_sessions:
            self.statistics.gprs_sessions_blocked.increment()
            return False
        self._gprs_sessions += 1
        self.statistics.gprs_sessions_active.update(self._gprs_sessions, self._engine.now)
        return True

    def remove_gprs_session(self) -> None:
        """Remove a session that completed or handed over to a neighbour."""
        if self._gprs_sessions <= 0:
            raise RuntimeError(f"cell {self.index}: GPRS session removed but none active")
        self._gprs_sessions -= 1
        self.statistics.gprs_sessions_active.update(self._gprs_sessions, self._engine.now)

    # ------------------------------------------------------------------ #
    # BSC buffer
    # ------------------------------------------------------------------ #
    def enqueue_packet(self, packet: Packet) -> bool:
        """Offer a packet to the BSC buffer; return ``False`` when it is lost."""
        self.statistics.packets_offered.increment()
        if self.buffer_level >= self.params.buffer_size:
            self.statistics.packets_lost.increment()
            return False
        packet.created_at = self._engine.now
        self._buffer.append(packet)
        self.statistics.buffer_occupancy.update(self.buffer_level, self._engine.now)
        self._wake_scheduler()
        return True

    # ------------------------------------------------------------------ #
    # Downlink radio scheduler
    # ------------------------------------------------------------------ #
    def start_scheduler(self) -> Process:
        """Start the downlink scheduler process (idempotent)."""
        if self._scheduler_process is None:
            self._scheduler_process = Process(
                self._engine, self._scheduler(), name=f"cell{self.index}.scheduler"
            )
        return self._scheduler_process

    def _wake_scheduler(self) -> None:
        if not self._scheduler_wakeup.triggered:
            self._scheduler_wakeup.succeed()

    def _scheduler(self):
        """Start packet transfers whenever packets and channels are available."""
        while True:
            started = True
            while started:
                started = False
                if self._buffer and self.free_data_channels > 0:
                    packet = self._buffer.popleft()
                    self._packets_in_transfer += 1
                    channels = min(MAX_TIME_SLOTS_PER_STATION, self.free_data_channels)
                    self._data_channels_in_use += channels
                    self.statistics.pdch_in_use.update(
                        self._data_channels_in_use, self._engine.now
                    )
                    Process(
                        self._engine,
                        self._transmit(packet, channels),
                        name=f"cell{self.index}.transfer",
                    )
                    started = True
            # Re-arm the wake-up event and wait for the next state change.
            self._scheduler_wakeup = self._engine.event(name=f"cell{self.index}.wakeup")
            yield self._scheduler_wakeup

    def _transmit(self, packet: Packet, channels: int):
        """Transmit one packet over ``channels`` PDCHs, then notify its session.

        A non-zero block error rate stretches the transfer by the expected
        number of RLC transmissions per block (selective-repeat ARQ goodput),
        matching the service-rate degradation of the analytical model.
        """
        duration = transmission_time(
            packet.size_bytes, channels, self.params.coding_scheme
        ) * self.params.expected_block_transmissions
        yield Timeout(duration)
        self._data_channels_in_use -= channels
        self._packets_in_transfer -= 1
        self.statistics.pdch_in_use.update(self._data_channels_in_use, self._engine.now)
        self.statistics.buffer_occupancy.update(self.buffer_level, self._engine.now)
        self.statistics.packets_served.increment()
        self.statistics.packet_delay.record(self._engine.now - packet.created_at)
        if packet.session is not None:
            packet.session.on_packet_delivered(packet)
        self._wake_scheduler()
