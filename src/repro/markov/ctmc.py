"""Continuous-time Markov chain abstraction.

A :class:`ContinuousTimeMarkovChain` wraps an infinitesimal generator matrix
``Q`` together with optional human-readable state labels and offers:

* construction from explicit transition-rate dictionaries or sparse matrices,
* validation (rows sum to zero, non-negative off-diagonal rates),
* stationary distribution via the solvers in :mod:`repro.markov.solvers`,
* transient distributions via uniformisation,
* expectation of state reward functions,
* embedded jump chain and holding-time statistics.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.markov.solvers import SteadyStateResult, solve_steady_state

__all__ = ["ContinuousTimeMarkovChain"]


class ContinuousTimeMarkovChain:
    """A finite continuous-time Markov chain defined by its generator matrix.

    Parameters
    ----------
    generator:
        Square matrix (dense or scipy sparse) whose off-diagonal entries are
        transition rates and whose rows sum to zero.  If the diagonal is not
        supplied correctly it can be fixed automatically with
        ``fix_diagonal=True``.
    labels:
        Optional sequence of hashable state labels.  When provided the chain
        can be queried by label instead of index.
    fix_diagonal:
        If true, the diagonal is recomputed as the negative off-diagonal row
        sum rather than validated.
    """

    def __init__(
        self,
        generator,
        labels: Sequence[Hashable] | None = None,
        *,
        fix_diagonal: bool = False,
        validate: bool = True,
    ) -> None:
        if sp.issparse(generator):
            q = generator.tocsr().astype(float)
        else:
            q = sp.csr_matrix(np.asarray(generator, dtype=float))
        if q.shape[0] != q.shape[1]:
            raise ValueError(f"generator must be square, got shape {q.shape}")
        if fix_diagonal:
            q = _with_recomputed_diagonal(q)
        self._generator = q
        self._labels = list(labels) if labels is not None else None
        if self._labels is not None and len(self._labels) != q.shape[0]:
            raise ValueError(
                f"number of labels ({len(self._labels)}) does not match "
                f"number of states ({q.shape[0]})"
            )
        self._label_index: dict[Hashable, int] | None = (
            {label: i for i, label in enumerate(self._labels)} if self._labels else None
        )
        if self._label_index is not None and len(self._label_index) != len(self._labels):
            raise ValueError("state labels must be unique")
        if validate:
            self.validate()
        self._steady_state: SteadyStateResult | None = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rates(
        cls,
        rates: Mapping[tuple[Hashable, Hashable], float],
        states: Iterable[Hashable] | None = None,
    ) -> "ContinuousTimeMarkovChain":
        """Build a chain from a ``{(source, target): rate}`` mapping.

        The state set is the union of all sources and targets (plus any extra
        ``states``), ordered by first appearance, unless an explicit iterable
        of states is supplied.
        """
        ordered: list[Hashable] = []
        seen: set[Hashable] = set()

        def _add(state: Hashable) -> None:
            if state not in seen:
                seen.add(state)
                ordered.append(state)

        if states is not None:
            for state in states:
                _add(state)
        for source, target in rates:
            _add(source)
            _add(target)

        index = {state: i for i, state in enumerate(ordered)}
        n = len(ordered)
        rows, cols, values = [], [], []
        for (source, target), rate in rates.items():
            if rate < 0:
                raise ValueError(f"negative rate {rate} for transition {source}->{target}")
            if source == target:
                continue
            rows.append(index[source])
            cols.append(index[target])
            values.append(float(rate))
        q = sp.coo_matrix((values, (rows, cols)), shape=(n, n)).tocsr()
        q = _with_recomputed_diagonal(q)
        return cls(q, labels=ordered, validate=True)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def generator(self) -> sp.csr_matrix:
        """The infinitesimal generator matrix ``Q`` (CSR sparse)."""
        return self._generator

    @property
    def number_of_states(self) -> int:
        return self._generator.shape[0]

    @property
    def labels(self) -> list[Hashable] | None:
        return list(self._labels) if self._labels is not None else None

    def __len__(self) -> int:
        return self.number_of_states

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"{type(self).__name__}(states={self.number_of_states}, "
            f"transitions={self._generator.nnz})"
        )

    def state_index(self, label: Hashable) -> int:
        """Return the index of a labelled state."""
        if self._label_index is None:
            raise ValueError("this chain has no state labels")
        try:
            return self._label_index[label]
        except KeyError as exc:
            raise KeyError(f"unknown state label: {label!r}") from exc

    def rate(self, source: Hashable | int, target: Hashable | int) -> float:
        """Return the transition rate between two states (by label or index)."""
        i = source if isinstance(source, (int, np.integer)) else self.state_index(source)
        j = target if isinstance(target, (int, np.integer)) else self.state_index(target)
        return float(self._generator[i, j])

    def exit_rates(self) -> np.ndarray:
        """Return the total exit rate ``-q_ii`` of every state."""
        return -self._generator.diagonal()

    def validate(self, tolerance: float = 1e-8) -> None:
        """Check generator-matrix invariants; raise ``ValueError`` on violation."""
        q = self._generator
        off_diagonal = q.copy()
        off_diagonal.setdiag(0.0)
        if off_diagonal.nnz and off_diagonal.data.min() < -tolerance:
            raise ValueError("generator has negative off-diagonal entries")
        row_sums = np.asarray(q.sum(axis=1)).ravel()
        worst = float(np.max(np.abs(row_sums))) if row_sums.size else 0.0
        scale = max(1.0, float(np.max(np.abs(q.diagonal()))) if q.shape[0] else 1.0)
        if worst > tolerance * scale:
            raise ValueError(f"generator rows do not sum to zero (max |row sum| = {worst:g})")

    # ------------------------------------------------------------------ #
    # Solutions
    # ------------------------------------------------------------------ #
    def steady_state(
        self, *, method: str = "auto", tol: float = 1e-10, refresh: bool = False
    ) -> SteadyStateResult:
        """Return (and cache) the stationary distribution of the chain."""
        if self._steady_state is None or refresh:
            self._steady_state = solve_steady_state(self._generator, method=method, tol=tol)
        return self._steady_state

    def stationary_distribution(self, *, method: str = "auto") -> np.ndarray:
        """Return the stationary probability vector as a numpy array."""
        return self.steady_state(method=method).distribution

    def expected_reward(
        self,
        reward: Callable[[int], float] | Sequence[float] | np.ndarray,
        *,
        method: str = "auto",
    ) -> float:
        """Return the stationary expectation of a per-state reward.

        ``reward`` may be a callable mapping a state index to a value or an
        array of per-state rewards.
        """
        pi = self.stationary_distribution(method=method)
        if callable(reward):
            values = np.array([reward(i) for i in range(self.number_of_states)], dtype=float)
        else:
            values = np.asarray(reward, dtype=float)
            if values.shape[0] != self.number_of_states:
                raise ValueError("reward vector length does not match number of states")
        return float(np.dot(pi, values))

    def transient_distribution(
        self, initial: np.ndarray | Sequence[float], time: float, *, tol: float = 1e-12
    ) -> np.ndarray:
        """Return the state distribution at ``time`` from ``initial`` (uniformisation)."""
        from repro.markov.transient import transient_distribution

        return transient_distribution(self._generator, initial, time, tol=tol)

    # ------------------------------------------------------------------ #
    # Derived chains
    # ------------------------------------------------------------------ #
    def embedded_jump_chain(self) -> sp.csr_matrix:
        """Return the transition matrix of the embedded (jump) DTMC.

        Absorbing states (zero exit rate) are given a self-loop probability
        of one.  Fully vectorised: one mask over the COO entries plus one
        divide, so chains with millions of transitions stay cheap.
        """
        q = self._generator.tocoo()
        exit_rates = self.exit_rates()
        n = self.number_of_states
        keep = (q.row != q.col) & (q.data > 0)
        rows = q.row[keep]
        cols = q.col[keep]
        values = q.data[keep] / exit_rates[rows]
        absorbing = np.flatnonzero(exit_rates <= 0)
        if absorbing.size:
            rows = np.concatenate([rows, absorbing])
            cols = np.concatenate([cols, absorbing])
            values = np.concatenate([values, np.ones(absorbing.size)])
        return sp.coo_matrix((values, (rows, cols)), shape=(n, n)).tocsr()

    def mean_holding_times(self) -> np.ndarray:
        """Return the mean holding time of every state (``inf`` for absorbing states)."""
        exit_rates = self.exit_rates()
        with np.errstate(divide="ignore"):
            return np.where(exit_rates > 0, 1.0 / np.maximum(exit_rates, 1e-300), np.inf)


def _with_recomputed_diagonal(q: sp.csr_matrix) -> sp.csr_matrix:
    """Return ``q`` with the diagonal replaced by the negative off-diagonal row sum.

    Works directly on the CSR arrays (zero existing diagonal entries, prune,
    sum rows, subtract a fresh diagonal); the previous LIL round-trip hid an
    O(n) Python loop that dominated construction for large chains.
    """
    q = q.tocsr().copy()
    rows = np.repeat(
        np.arange(q.shape[0], dtype=np.int64), np.diff(q.indptr).astype(np.int64)
    )
    q.data[rows == q.indices] = 0.0
    q.eliminate_zeros()
    row_sums = np.asarray(q.sum(axis=1)).ravel()
    return (q + sp.diags(-row_sums)).tocsr()
