"""Numerical steady-state solvers for continuous-time Markov chains.

All solvers compute the stationary probability vector ``pi`` satisfying

    pi @ Q = 0,     sum(pi) = 1

for an irreducible CTMC with infinitesimal generator matrix ``Q``.

The module offers several algorithms because the GPRS model is used at very
different scales: the handover-balance fixed point works on tiny Erlang-loss
chains (tens of states) where exact GTH elimination is ideal, while the full
``(n, k, m, r)`` chain of the paper has hundreds of thousands of states and
needs sparse iterative methods.

Solvers
-------
``steady_state_gth``
    Grassmann--Taksar--Heyman elimination.  Numerically the most robust (no
    subtractions), dense ``O(n^3)``; use for chains up to a few thousand states.
``steady_state_direct``
    Replace one balance equation by the normalisation condition and solve the
    sparse linear system with ``scipy.sparse.linalg.spsolve``.
``steady_state_power``
    Power iteration on the uniformised DTMC ``P = I + Q / Lambda``.
``steady_state_gauss_seidel``
    Gauss--Seidel / SOR sweeps on ``pi Q = 0`` using a sparse triangular solve
    per sweep.
``solve_steady_state``
    Adaptive front end choosing a method from the state-space size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = [
    "SolverError",
    "SteadyStateResult",
    "solve_steady_state",
    "steady_state_direct",
    "steady_state_gauss_seidel",
    "steady_state_gth",
    "steady_state_power",
    "residual_norm",
]


class SolverError(RuntimeError):
    """Raised when a steady-state solver fails to produce a valid distribution."""


@dataclass(frozen=True)
class SteadyStateResult:
    """Outcome of a steady-state computation.

    Attributes
    ----------
    distribution:
        The stationary probability vector ``pi`` (1-D numpy array, sums to 1).
    method:
        Name of the algorithm that produced the result.
    iterations:
        Number of iterations used (0 for direct methods).
    residual:
        Infinity norm of ``pi @ Q`` measured after normalisation.
    coarse_corrections:
        Accepted two-level (coarse-space) correction steps.  Only the
        structured solver's repetition-reuse pass produces them; 0 for every
        generic solver and for structured solves with the correction disabled.
    """

    distribution: np.ndarray
    method: str
    iterations: int
    residual: float
    coarse_corrections: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "distribution", np.asarray(self.distribution, dtype=float))

    def __len__(self) -> int:
        return self.distribution.shape[0]


def _as_dense(generator) -> np.ndarray:
    if sp.issparse(generator):
        return generator.toarray()
    return np.asarray(generator, dtype=float)


def _as_csr(generator) -> sp.csr_matrix:
    if sp.issparse(generator):
        return generator.tocsr()
    return sp.csr_matrix(np.asarray(generator, dtype=float))


def _validate_generator(generator) -> int:
    shape = generator.shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"generator must be square, got shape {shape}")
    return shape[0]


def residual_norm(generator, pi: np.ndarray) -> float:
    """Return ``||pi Q||_inf``, the steady-state balance residual."""
    q = _as_csr(generator)
    return float(np.max(np.abs(pi @ q))) if q.shape[0] else 0.0


def _normalise(pi: np.ndarray) -> np.ndarray:
    pi = np.asarray(pi, dtype=float)
    pi = np.where(np.abs(pi) < 1e-300, 0.0, pi)
    pi = np.maximum(pi, 0.0)
    total = pi.sum()
    if total <= 0.0 or not np.isfinite(total):
        raise SolverError("steady-state vector could not be normalised")
    return pi / total


def steady_state_gth(generator) -> SteadyStateResult:
    """Solve ``pi Q = 0`` with Grassmann--Taksar--Heyman (GTH) elimination.

    GTH is a variant of Gaussian elimination that only uses additions,
    multiplications and divisions of non-negative quantities, which makes it
    numerically stable even for stiff chains (rates differing by many orders of
    magnitude).  Complexity is ``O(n^3)`` time and ``O(n^2)`` memory, so it is
    intended for chains with at most a few thousand states.
    """
    q = _as_dense(generator).copy()
    n = _validate_generator(q)
    if n == 0:
        raise ValueError("generator must have at least one state")
    if n == 1:
        return SteadyStateResult(np.array([1.0]), "gth", 0, 0.0)

    a = q.copy()
    # Forward elimination: fold state j into states 0..j-1.
    for j in range(n - 1, 0, -1):
        scale = a[j, :j].sum()
        if scale <= 0.0:
            raise SolverError(
                f"GTH elimination failed: state {j} has no transitions to lower states; "
                "the chain may be reducible"
            )
        a[:j, j] /= scale
        # Rank-one update of the upper-left block.
        a[:j, :j] += np.outer(a[:j, j], a[j, :j])

    pi = np.zeros(n, dtype=float)
    pi[0] = 1.0
    for j in range(1, n):
        pi[j] = np.dot(pi[:j], a[:j, j])
    pi = _normalise(pi)
    return SteadyStateResult(pi, "gth", 0, residual_norm(generator, pi))


def steady_state_direct(generator) -> SteadyStateResult:
    """Solve ``pi Q = 0`` by sparse LU factorisation.

    The singular balance equations are made non-singular by fixing the
    probability of the last state to one and solving the remaining
    ``(n-1) x (n-1)`` system ("remove one equation" approach); the result is
    normalised afterwards.  Because generator matrices are (column) diagonally
    dominant M-matrices with a structurally symmetric pattern, the
    factorisation uses SuperLU's symmetric-mode ordering and diagonal
    pivoting, which keeps fill-in far lower than the default options.
    """
    q = _as_csr(generator)
    n = _validate_generator(q)
    if n == 1:
        return SteadyStateResult(np.array([1.0]), "direct", 0, 0.0)

    transposed = q.transpose().tocsr()
    submatrix = transposed[: n - 1, : n - 1].tocsc()
    rhs = -transposed[: n - 1, n - 1].toarray().ravel()
    try:
        lu = spla.splu(
            submatrix,
            permc_spec="MMD_AT_PLUS_A",
            options={"SymmetricMode": True, "DiagPivotThresh": 0.001},
        )
        head = lu.solve(rhs)
    except Exception as exc:  # pragma: no cover - scipy failure path
        raise SolverError(f"sparse direct solve failed: {exc}") from exc
    if not np.all(np.isfinite(head)):
        raise SolverError("sparse direct solve produced non-finite values")
    pi = np.concatenate([head, [1.0]])
    pi = _normalise(pi)
    residual = residual_norm(generator, pi)
    scale = max(1.0, float(np.max(np.abs(q.diagonal()))))
    if residual > 1e-6 * scale:
        # Fixing the last state fails when that state is transient (reducible
        # chain); report the failure so callers can fall back to an iterative
        # solver that handles reducibility gracefully.
        raise SolverError(
            f"sparse direct solve produced an inaccurate solution "
            f"(residual {residual:.2e}); the chain may be reducible"
        )
    return SteadyStateResult(pi, "direct", 0, residual)


def uniformization_rate(generator) -> float:
    """Return a uniformisation rate ``Lambda >= max_i |q_ii|`` for the generator."""
    q = _as_csr(generator)
    diag = np.abs(q.diagonal())
    max_rate = float(diag.max()) if diag.size else 0.0
    return max_rate * 1.02 + 1e-12


def steady_state_power(
    generator,
    *,
    tol: float = 1e-10,
    max_iterations: int = 200_000,
    initial: np.ndarray | None = None,
    check_every: int = 25,
) -> SteadyStateResult:
    """Power iteration on the uniformised chain ``P = I + Q / Lambda``.

    Each iteration is a single sparse vector-matrix product, so the method
    scales to chains with millions of states; convergence is geometric with
    ratio given by the subdominant eigenvalue of ``P``.
    """
    q = _as_csr(generator)
    n = _validate_generator(q)
    if n == 1:
        return SteadyStateResult(np.array([1.0]), "power", 0, 0.0)

    lam = uniformization_rate(q)
    p = sp.eye(n, format="csr") + q.multiply(1.0 / lam)
    p = p.tocsr()

    if initial is None:
        pi = np.full(n, 1.0 / n)
    else:
        pi = _normalise(np.asarray(initial, dtype=float))

    iterations = 0
    for iteration in range(1, max_iterations + 1):
        new_pi = pi @ p
        total = new_pi.sum()
        if total <= 0 or not np.isfinite(total):
            raise SolverError("power iteration diverged")
        new_pi /= total
        iterations = iteration
        converged = False
        if iteration % check_every == 0 or iteration == max_iterations:
            converged = float(np.max(np.abs(new_pi - pi))) < tol
        pi = new_pi
        if converged:
            break
    pi = _normalise(pi)
    return SteadyStateResult(pi, "power", iterations, residual_norm(q, pi))


def steady_state_gauss_seidel(
    generator,
    *,
    tol: float = 1e-10,
    max_iterations: int = 20_000,
    relaxation: float = 1.0,
    initial: np.ndarray | None = None,
) -> SteadyStateResult:
    """Gauss--Seidel / SOR iteration for ``pi Q = 0``.

    The system is transposed to ``Q^T x = 0`` and split into
    ``(D + L) x = -U x`` where ``D + L`` is the lower triangle of ``Q^T``;
    each sweep performs one sparse triangular solve.  With ``relaxation`` other
    than 1.0 the update becomes successive over-relaxation (SOR).
    """
    q = _as_csr(generator)
    n = _validate_generator(q)
    if n == 1:
        return SteadyStateResult(np.array([1.0]), "gauss-seidel", 0, 0.0)
    if not 0.0 < relaxation < 2.0:
        raise ValueError(f"relaxation must be in (0, 2), got {relaxation}")

    qt = q.transpose().tocsr()
    lower = sp.tril(qt, k=0, format="csc")
    upper = sp.triu(qt, k=1, format="csr")

    if initial is None:
        x = np.full(n, 1.0 / n)
    else:
        x = _normalise(np.asarray(initial, dtype=float))

    iterations = 0
    for iteration in range(1, max_iterations + 1):
        rhs = -(upper @ x)
        try:
            new_x = spla.spsolve_triangular(lower, rhs, lower=True)
        except Exception as exc:  # pragma: no cover - singular triangle
            raise SolverError(f"Gauss-Seidel sweep failed: {exc}") from exc
        if relaxation != 1.0:
            new_x = relaxation * new_x + (1.0 - relaxation) * x
        total = new_x.sum()
        if total == 0 or not np.isfinite(total):
            raise SolverError("Gauss-Seidel iteration diverged")
        new_x = new_x / total
        iterations = iteration
        delta = float(np.max(np.abs(new_x - x)))
        x = new_x
        if delta < tol:
            break
    pi = _normalise(x)
    return SteadyStateResult(pi, "gauss-seidel", iterations, residual_norm(q, pi))


# State-count thresholds used by the adaptive front end.
_GTH_LIMIT = 600
_DIRECT_LIMIT = 120_000


def solve_steady_state(
    generator,
    *,
    method: str = "auto",
    tol: float = 1e-10,
    max_iterations: int = 200_000,
    initial: np.ndarray | None = None,
) -> SteadyStateResult:
    """Compute the stationary distribution of a CTMC generator matrix.

    Parameters
    ----------
    generator:
        Square infinitesimal generator matrix (dense array or scipy sparse).
    method:
        One of ``"auto"``, ``"gth"``, ``"direct"``, ``"power"``,
        ``"gauss-seidel"``.  ``"auto"`` picks GTH for small chains, the sparse
        direct solver for medium chains, and power iteration (warm-started by
        a few Gauss--Seidel sweeps when possible) for very large chains.
    tol, max_iterations, initial:
        Passed to the iterative solvers.

    Returns
    -------
    SteadyStateResult
    """
    n = _validate_generator(generator)
    chosen = method
    if method == "auto":
        if n <= _GTH_LIMIT:
            chosen = "gth"
        elif n <= _DIRECT_LIMIT:
            chosen = "direct"
        else:
            chosen = "power"

    if chosen == "gth":
        try:
            return steady_state_gth(generator)
        except SolverError:
            if method == "auto":
                return steady_state_power(
                    generator, tol=tol, max_iterations=max_iterations, initial=initial
                )
            raise
    if chosen == "direct":
        try:
            return steady_state_direct(generator)
        except SolverError:
            if method == "auto":
                return steady_state_power(
                    generator, tol=tol, max_iterations=max_iterations, initial=initial
                )
            raise
    if chosen == "power":
        return steady_state_power(
            generator, tol=tol, max_iterations=max_iterations, initial=initial
        )
    if chosen in {"gauss-seidel", "gauss_seidel", "sor"}:
        return steady_state_gauss_seidel(
            generator, tol=tol, max_iterations=max_iterations, initial=initial
        )
    raise ValueError(f"unknown steady-state method: {method!r}")
