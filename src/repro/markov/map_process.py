"""Markovian arrival processes (MAPs).

A MAP generalises the MMPP used by the paper's traffic model: it is described
by two matrices ``(D0, D1)`` where ``D0`` holds the phase transitions without
an arrival and ``D1`` the transitions that are accompanied by an arrival;
``D = D0 + D1`` is the generator of the phase process.  Every MMPP is a MAP
with ``D1 = diag(rates)``, and superposition is again a Kronecker sum.

The GPRS library uses MAPs for two things:

* expressing the aggregate packet arrival process of ``m`` GPRS sessions in a
  form that queueing tools (the MAP/M/c/K solver in :mod:`repro.queueing`)
  understand, and
* computing second-order traffic statistics (interarrival-time correlation,
  index of dispersion) that quantify the burstiness the paper emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.mmpp import MarkovModulatedPoissonProcess
from repro.markov.solvers import solve_steady_state

import scipy.sparse as sp

__all__ = [
    "MarkovianArrivalProcess",
    "map_from_mmpp",
    "superpose_maps",
]


@dataclass(frozen=True)
class MarkovianArrivalProcess:
    """A Markovian arrival process ``MAP(D0, D1)``.

    Parameters
    ----------
    hidden_transitions:
        Matrix ``D0``: phase transition rates without arrivals; diagonal
        entries are negative and make the rows of ``D0 + D1`` sum to zero.
    arrival_transitions:
        Matrix ``D1``: phase transition rates that generate one arrival;
        all entries are non-negative.
    """

    hidden_transitions: np.ndarray
    arrival_transitions: np.ndarray

    def __post_init__(self) -> None:
        d0 = np.atleast_2d(np.asarray(self.hidden_transitions, dtype=float))
        d1 = np.atleast_2d(np.asarray(self.arrival_transitions, dtype=float))
        if d0.shape != d1.shape or d0.shape[0] != d0.shape[1]:
            raise ValueError("D0 and D1 must be square matrices of the same size")
        if np.any(d1 < -1e-12):
            raise ValueError("D1 entries must be non-negative")
        off_diagonal = d0 - np.diag(np.diag(d0))
        if np.any(off_diagonal < -1e-12):
            raise ValueError("off-diagonal entries of D0 must be non-negative")
        row_sums = (d0 + d1).sum(axis=1)
        if np.any(np.abs(row_sums) > 1e-8 * max(1.0, float(np.abs(d0).max()))):
            raise ValueError("rows of D0 + D1 must sum to zero")
        object.__setattr__(self, "hidden_transitions", d0)
        object.__setattr__(self, "arrival_transitions", d1)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def number_of_phases(self) -> int:
        return self.hidden_transitions.shape[0]

    @property
    def generator(self) -> np.ndarray:
        """Generator ``D = D0 + D1`` of the phase process."""
        return self.hidden_transitions + self.arrival_transitions

    def stationary_phase_distribution(self) -> np.ndarray:
        """Return the stationary distribution of the phase process."""
        return solve_steady_state(sp.csr_matrix(self.generator), method="gth").distribution

    def mean_arrival_rate(self) -> float:
        """Return the long-run arrival rate ``pi D1 1``."""
        pi = self.stationary_phase_distribution()
        return float(pi @ self.arrival_transitions @ np.ones(self.number_of_phases))

    # ------------------------------------------------------------------ #
    # Interarrival-time statistics
    # ------------------------------------------------------------------ #
    def embedded_phase_distribution(self) -> np.ndarray:
        """Stationary phase distribution seen just after an arrival."""
        pi = self.stationary_phase_distribution()
        weights = pi @ self.arrival_transitions
        total = weights.sum()
        if total <= 0:
            raise ValueError("the MAP never generates arrivals")
        return weights / total

    def interarrival_moment(self, order: int) -> float:
        """Return the raw moment of the stationary interarrival time.

        The interarrival time starting from the post-arrival phase
        distribution is phase-type with sub-generator ``D0``.
        """
        if order < 1:
            raise ValueError("moment order must be at least 1")
        import math

        phi = self.embedded_phase_distribution()
        inverse = np.linalg.inv(-self.hidden_transitions)
        vector = np.ones(self.number_of_phases)
        for _ in range(order):
            vector = inverse @ vector
        return float(math.factorial(order) * phi @ vector)

    def mean_interarrival_time(self) -> float:
        """Return the mean stationary interarrival time (``1 / rate``)."""
        return self.interarrival_moment(1)

    def interarrival_scv(self) -> float:
        """Return the squared coefficient of variation of the interarrival time."""
        mean = self.interarrival_moment(1)
        second = self.interarrival_moment(2)
        return (second - mean * mean) / (mean * mean)

    def interarrival_lag1_correlation(self) -> float:
        """Return the lag-1 autocorrelation of consecutive interarrival times.

        Poisson and renewal processes have zero correlation; the positive
        values produced by on--off sources quantify burstiness beyond the
        marginal distribution.
        """
        phi = self.embedded_phase_distribution()
        inverse = np.linalg.inv(-self.hidden_transitions)
        ones = np.ones(self.number_of_phases)
        # Transition kernel of the phase chain embedded at arrivals.
        kernel = inverse @ self.arrival_transitions
        mean = float(phi @ inverse @ ones)
        second = 2.0 * float(phi @ inverse @ inverse @ ones)
        variance = second - mean * mean
        if variance <= 0:
            return 0.0
        joint = float(phi @ inverse @ kernel @ inverse @ ones)
        return (joint - mean * mean) / variance

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_interarrival_times(
        self, count: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Simulate the MAP and return ``count`` consecutive interarrival times."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        n = self.number_of_phases
        phi = self.embedded_phase_distribution()
        phase = rng.choice(n, p=phi)
        d0 = self.hidden_transitions
        d1 = self.arrival_transitions
        exit_rates = -np.diag(d0)
        times = np.zeros(count)
        for k in range(count):
            elapsed = 0.0
            while True:
                total_rate = exit_rates[phase] + 0.0
                # Total rate out of the phase including arrival transitions is
                # -D0[i, i]; hidden and arrival jumps compete.
                elapsed += rng.exponential(1.0 / total_rate)
                hidden = d0[phase].copy()
                hidden[phase] = 0.0
                arrival = d1[phase]
                probabilities = np.concatenate([hidden, arrival]) / total_rate
                choice = rng.choice(2 * n, p=probabilities)
                if choice < n:
                    phase = choice
                    continue
                phase = choice - n
                times[k] = elapsed
                break
        return times


def map_from_mmpp(process: MarkovModulatedPoissonProcess) -> MarkovianArrivalProcess:
    """Return the MAP representation ``(Q - diag(rates), diag(rates))`` of an MMPP."""
    rate_matrix = np.diag(process.rates)
    return MarkovianArrivalProcess(process.generator - rate_matrix, rate_matrix)


def superpose_maps(
    first: MarkovianArrivalProcess, second: MarkovianArrivalProcess
) -> MarkovianArrivalProcess:
    """Return the superposition of two independent MAPs (Kronecker sums)."""
    n1 = first.number_of_phases
    n2 = second.number_of_phases
    eye1 = np.eye(n1)
    eye2 = np.eye(n2)
    d0 = np.kron(first.hidden_transitions, eye2) + np.kron(eye1, second.hidden_transitions)
    d1 = np.kron(first.arrival_transitions, eye2) + np.kron(eye1, second.arrival_transitions)
    return MarkovianArrivalProcess(d0, d1)
