"""Markov-modulated Poisson processes (MMPP) and the interrupted Poisson process.

The 3GPP packet-session traffic model used by the paper is represented as an
interrupted Poisson process (IPP): a two-state on--off source that emits
packets at rate ``lambda_packet`` while *on* and is silent while *off*.  The
key state-space reduction of the paper is that ``m`` statistically identical
IPPs can be aggregated into a single MMPP whose modulating chain is a
birth--death chain on ``{0, ..., m}`` counting how many sources are *off*
(Fischer & Meier-Hellstern, "The MMPP cookbook", 1993).  Both representations
are implemented here so the equivalence can be tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np
import scipy.sparse as sp

from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.markov.solvers import solve_steady_state

__all__ = [
    "MarkovModulatedPoissonProcess",
    "InterruptedPoissonProcess",
    "aggregate_identical_ipps",
    "superpose_mmpps",
]


@dataclass(frozen=True)
class MarkovModulatedPoissonProcess:
    """A Markov-modulated Poisson process ``(Q, rates)``.

    Attributes
    ----------
    generator:
        Generator matrix of the modulating CTMC (dense numpy array).
    rates:
        Per-state Poisson arrival rates (numpy array, same length as the
        number of modulating states).
    """

    generator: np.ndarray
    rates: np.ndarray

    def __post_init__(self) -> None:
        generator = np.asarray(self.generator, dtype=float)
        rates = np.asarray(self.rates, dtype=float)
        if generator.ndim != 2 or generator.shape[0] != generator.shape[1]:
            raise ValueError("generator must be a square matrix")
        if rates.ndim != 1 or rates.shape[0] != generator.shape[0]:
            raise ValueError("rates must be a vector matching the generator dimension")
        if np.any(rates < 0):
            raise ValueError("arrival rates must be non-negative")
        object.__setattr__(self, "generator", generator)
        object.__setattr__(self, "rates", rates)

    @property
    def number_of_states(self) -> int:
        return self.generator.shape[0]

    def modulating_chain(self) -> ContinuousTimeMarkovChain:
        """Return the modulating CTMC."""
        return ContinuousTimeMarkovChain(self.generator, fix_diagonal=True)

    def stationary_distribution(self) -> np.ndarray:
        """Return the stationary distribution of the modulating chain."""
        return self.modulating_chain().stationary_distribution()

    def mean_arrival_rate(self) -> float:
        """Return the long-run average arrival rate of the MMPP."""
        return float(np.dot(self.stationary_distribution(), self.rates))

    def peak_arrival_rate(self) -> float:
        """Return the largest per-state arrival rate."""
        return float(np.max(self.rates)) if self.rates.size else 0.0

    def index_of_dispersion(self, horizon: float = 1e6, samples: int = 2000) -> float:
        """Estimate the index of dispersion of counts (IDC) at a long horizon.

        The IDC at time ``t`` is ``Var[N(t)] / E[N(t)]``; for an MMPP the
        limiting value exceeds one whenever the modulating chain actually
        modulates the rate (burstiness indicator).  The estimate integrates the
        covariance of the arrival rate process numerically from the generator,
        which is accurate for the small modulating chains used here.
        """
        pi = self.stationary_distribution()
        mean_rate = float(np.dot(pi, self.rates))
        if mean_rate == 0:
            return 1.0
        # Limiting IDC = 1 + 2/mean_rate * integral_0^inf cov(rate(0), rate(t)) dt.
        # The integral equals  d @ (-Q_restricted)^{-1} applied on the centred rates
        # projected away from the stationary direction; compute it with the
        # deviation (group inverse) via a least-squares solve.
        q = self.generator.copy()
        np.fill_diagonal(q, 0.0)
        q = q - np.diag(q.sum(axis=1))
        centred = self.rates - mean_rate
        # Solve x Q = -centred_weighted, with x orthogonal to 1 (group inverse action).
        weighted = pi * centred
        a = np.vstack([q.T, np.ones(self.number_of_states)])
        b = np.concatenate([-weighted, [0.0]])
        x, *_ = np.linalg.lstsq(a, b, rcond=None)
        integral = float(np.dot(x, centred))
        return 1.0 + 2.0 * integral / mean_rate

    def composite_generator(self, buffer_levels: int) -> sp.csr_matrix:
        """Return the generator of the MMPP/M/1/K queue-length-and-phase chain.

        This utility is used by tests to cross-check the GPRS model's packet
        buffer behaviour against a textbook MMPP/M/1/K construction.  The
        service rate is one; scale externally as needed.
        """
        if buffer_levels < 1:
            raise ValueError("buffer_levels must be at least 1")
        n_phase = self.number_of_states
        size = n_phase * (buffer_levels + 1)
        rows, cols, values = [], [], []

        def idx(level: int, phase: int) -> int:
            return level * n_phase + phase

        for level in range(buffer_levels + 1):
            for phase in range(n_phase):
                # Phase transitions.
                for target in range(n_phase):
                    if target == phase:
                        continue
                    rate = self.generator[phase, target]
                    if rate > 0:
                        rows.append(idx(level, phase))
                        cols.append(idx(level, target))
                        values.append(rate)
                # Arrivals.
                if level < buffer_levels and self.rates[phase] > 0:
                    rows.append(idx(level, phase))
                    cols.append(idx(level + 1, phase))
                    values.append(self.rates[phase])
                # Service.
                if level > 0:
                    rows.append(idx(level, phase))
                    cols.append(idx(level - 1, phase))
                    values.append(1.0)
        q = sp.coo_matrix((values, (rows, cols)), shape=(size, size)).tocsr()
        diag = np.asarray(q.sum(axis=1)).ravel()
        return (q - sp.diags(diag)).tocsr()


class InterruptedPoissonProcess(MarkovModulatedPoissonProcess):
    """Two-state on--off MMPP: arrivals at ``packet_rate`` while on, silent while off.

    Parameters
    ----------
    packet_rate:
        Poisson arrival rate during the on state (packets per second);
        ``1 / D_d`` in the paper's notation.
    on_to_off_rate:
        Rate ``a = 1 / (N_d * D_d)`` of leaving the on state.
    off_to_on_rate:
        Rate ``b = 1 / D_pc`` of leaving the off state.

    State 0 is *on* and state 1 is *off*, matching the convention of the
    paper where ``r`` counts sources in the off state.
    """

    def __init__(self, packet_rate: float, on_to_off_rate: float, off_to_on_rate: float):
        if packet_rate < 0:
            raise ValueError("packet_rate must be non-negative")
        if on_to_off_rate <= 0 or off_to_on_rate <= 0:
            raise ValueError("on/off transition rates must be positive")
        generator = np.array(
            [
                [-on_to_off_rate, on_to_off_rate],
                [off_to_on_rate, -off_to_on_rate],
            ]
        )
        rates = np.array([packet_rate, 0.0])
        super().__init__(generator, rates)
        object.__setattr__(self, "packet_rate", float(packet_rate))
        object.__setattr__(self, "on_to_off_rate", float(on_to_off_rate))
        object.__setattr__(self, "off_to_on_rate", float(off_to_on_rate))

    # Attribute declarations for type checkers / docs.
    packet_rate: float
    on_to_off_rate: float
    off_to_on_rate: float

    def probability_on(self) -> float:
        """Stationary probability of the on state: ``b / (a + b)``."""
        a = self.on_to_off_rate
        b = self.off_to_on_rate
        return b / (a + b)

    def probability_off(self) -> float:
        """Stationary probability of the off state: ``a / (a + b)``."""
        return 1.0 - self.probability_on()

    def mean_on_duration(self) -> float:
        """Mean duration of an on period (a packet call), ``1 / a``."""
        return 1.0 / self.on_to_off_rate

    def mean_off_duration(self) -> float:
        """Mean duration of an off period (a reading time), ``1 / b``."""
        return 1.0 / self.off_to_on_rate

    def mean_arrival_rate(self) -> float:
        """Long-run packet arrival rate ``lambda * b / (a + b)``."""
        return self.packet_rate * self.probability_on()


def aggregate_identical_ipps(source: InterruptedPoissonProcess, count: int) -> (
    MarkovModulatedPoissonProcess
):
    """Aggregate ``count`` identical IPPs into an ``(count + 1)``-state MMPP.

    The aggregated modulating chain tracks ``r``, the number of sources
    currently *off* (matching the paper's state component ``r``).  With ``r``
    sources off:

    * arrival rate is ``(count - r) * packet_rate``,
    * transition ``r -> r + 1`` occurs at rate ``(count - r) * a`` (one of the
      on sources switches off),
    * transition ``r -> r - 1`` occurs at rate ``r * b`` (one of the off
      sources switches on).

    For ``count = 0`` the degenerate single-state MMPP with rate zero is
    returned.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    size = count + 1
    generator = np.zeros((size, size))
    rates = np.zeros(size)
    a = source.on_to_off_rate
    b = source.off_to_on_rate
    for off_count in range(size):
        on_count = count - off_count
        rates[off_count] = on_count * source.packet_rate
        if off_count < count:
            generator[off_count, off_count + 1] = on_count * a
        if off_count > 0:
            generator[off_count, off_count - 1] = off_count * b
    np.fill_diagonal(generator, 0.0)
    generator -= np.diag(generator.sum(axis=1))
    return MarkovModulatedPoissonProcess(generator, rates)


def product_form_ipps(source: InterruptedPoissonProcess, count: int) -> (
    MarkovModulatedPoissonProcess
):
    """Return the full ``2^count``-state product-form MMPP of ``count`` identical IPPs.

    Exponential in ``count``; intended only for validating
    :func:`aggregate_identical_ipps` on small ``count``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count > 16:
        raise ValueError("product-form construction is limited to 16 sources")
    states = list(product((0, 1), repeat=count))  # 0 = on, 1 = off per source
    index = {state: i for i, state in enumerate(states)}
    size = len(states)
    generator = np.zeros((size, size))
    rates = np.zeros(size)
    a = source.on_to_off_rate
    b = source.off_to_on_rate
    for state in states:
        i = index[state]
        on_count = state.count(0)
        rates[i] = on_count * source.packet_rate
        for position, phase in enumerate(state):
            flipped = list(state)
            flipped[position] = 1 - phase
            j = index[tuple(flipped)]
            generator[i, j] += a if phase == 0 else b
    np.fill_diagonal(generator, 0.0)
    generator -= np.diag(generator.sum(axis=1))
    return MarkovModulatedPoissonProcess(generator, rates)


def superpose_mmpps(
    first: MarkovModulatedPoissonProcess, second: MarkovModulatedPoissonProcess
) -> MarkovModulatedPoissonProcess:
    """Return the superposition of two independent MMPPs (Kronecker construction).

    The modulating chain of the superposition is the independent product of the
    two modulating chains (``Q = Q1 (+) Q2`` using Kronecker sums) and the
    arrival rate in a joint state is the sum of the component rates.
    """
    n1 = first.number_of_states
    n2 = second.number_of_states
    generator = np.kron(first.generator, np.eye(n2)) + np.kron(np.eye(n1), second.generator)
    rates = (
        np.kron(first.rates, np.ones(n2)) + np.kron(np.ones(n1), second.rates)
    )
    return MarkovModulatedPoissonProcess(generator, rates)


def stationary_phase_distribution(process: MarkovModulatedPoissonProcess) -> np.ndarray:
    """Return the stationary distribution of an MMPP's modulating chain.

    Thin helper kept separate so callers that only have the raw matrices do not
    need to build a full :class:`ContinuousTimeMarkovChain`.
    """
    return solve_steady_state(sp.csr_matrix(process.generator), method="gth").distribution
