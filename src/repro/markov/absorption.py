"""First-passage and absorption analysis of continuous-time Markov chains.

The paper's mobility model raises questions of the form "how long until a
busy mobile user leaves the cell" (it cites Markoulidakis et al. for exactly
that quantity).  Such questions are absorption problems: make the states of
interest absorbing and compute, for every starting state,

* the probability of reaching each absorbing state first
  (:func:`absorption_probabilities`), and
* the expected time until absorption (:func:`expected_time_to_absorption`).

Both reduce to linear systems in the transient-to-transient block of the
generator.  :func:`first_passage_time_moments` generalises the expectation to
higher moments, and :class:`AbsorbingCtmcAnalysis` packages the pieces for a
given partition of the state space.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = [
    "AbsorbingCtmcAnalysis",
    "absorption_probabilities",
    "expected_time_to_absorption",
    "first_passage_time_moments",
]


def _split_generator(
    generator, transient: Sequence[int], absorbing: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Return the (transient, transient) and (transient, absorbing) blocks."""
    if sp.issparse(generator):
        dense = generator.toarray()
    else:
        dense = np.asarray(generator, dtype=float)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValueError("generator must be a square matrix")
    transient = list(transient)
    absorbing = list(absorbing)
    if not transient:
        raise ValueError("at least one transient state is required")
    if not absorbing:
        raise ValueError("at least one absorbing state is required")
    overlap = set(transient) & set(absorbing)
    if overlap:
        raise ValueError(f"states cannot be both transient and absorbing: {sorted(overlap)}")
    q_tt = dense[np.ix_(transient, transient)]
    q_ta = dense[np.ix_(transient, absorbing)]
    return q_tt, q_ta


def expected_time_to_absorption(
    generator, transient: Sequence[int], absorbing: Sequence[int]
) -> np.ndarray:
    """Return the expected time to hit any absorbing state, per transient state.

    Solves ``Q_TT m = -1`` where ``Q_TT`` is the transient-to-transient block.
    """
    q_tt, _ = _split_generator(generator, transient, absorbing)
    ones = np.ones(q_tt.shape[0])
    return np.linalg.solve(q_tt, -ones)


def absorption_probabilities(
    generator, transient: Sequence[int], absorbing: Sequence[int]
) -> np.ndarray:
    """Return the probability of being absorbed in each absorbing state.

    The result has one row per transient state and one column per absorbing
    state; rows sum to one.  Solves ``Q_TT B = -Q_TA``.
    """
    q_tt, q_ta = _split_generator(generator, transient, absorbing)
    return np.linalg.solve(q_tt, -q_ta)


def first_passage_time_moments(
    generator, transient: Sequence[int], absorbing: Sequence[int], order: int
) -> np.ndarray:
    """Return raw moments of the absorption time for every transient state.

    Uses the recursion ``m_k = k (-Q_TT)^{-1} m_{k-1}`` with ``m_0 = 1``.
    """
    if order < 1:
        raise ValueError("order must be at least 1")
    q_tt, _ = _split_generator(generator, transient, absorbing)
    inverse = np.linalg.inv(-q_tt)
    moments = np.zeros((order, q_tt.shape[0]))
    previous = np.ones(q_tt.shape[0])
    for k in range(1, order + 1):
        previous = k * (inverse @ previous)
        moments[k - 1] = previous
    return moments


@dataclass(frozen=True)
class AbsorbingCtmcAnalysis:
    """Absorption analysis of one CTMC with a fixed transient/absorbing partition.

    Parameters
    ----------
    generator:
        Generator matrix of the full chain (the rows of absorbing states are
        ignored, so they may contain anything).
    transient_states, absorbing_states:
        Index partition of the state space.
    """

    generator: np.ndarray
    transient_states: tuple[int, ...]
    absorbing_states: tuple[int, ...]

    def __post_init__(self) -> None:
        generator = (
            self.generator.toarray()
            if sp.issparse(self.generator)
            else np.asarray(self.generator, dtype=float)
        )
        object.__setattr__(self, "generator", generator)
        object.__setattr__(self, "transient_states", tuple(self.transient_states))
        object.__setattr__(self, "absorbing_states", tuple(self.absorbing_states))
        # Validate eagerly so malformed partitions fail at construction time.
        _split_generator(generator, self.transient_states, self.absorbing_states)

    def expected_absorption_times(self) -> dict[int, float]:
        """Expected time to absorption keyed by transient state index."""
        times = expected_time_to_absorption(
            self.generator, self.transient_states, self.absorbing_states
        )
        return dict(zip(self.transient_states, times))

    def absorption_probability_matrix(self) -> dict[int, dict[int, float]]:
        """Absorption probabilities keyed by transient then absorbing state index."""
        matrix = absorption_probabilities(
            self.generator, self.transient_states, self.absorbing_states
        )
        return {
            transient: dict(zip(self.absorbing_states, row))
            for transient, row in zip(self.transient_states, matrix)
        }

    def absorption_time_std(self) -> dict[int, float]:
        """Standard deviation of the absorption time per transient state."""
        moments = first_passage_time_moments(
            self.generator, self.transient_states, self.absorbing_states, 2
        )
        result = {}
        for index, state in enumerate(self.transient_states):
            variance = moments[1, index] - moments[0, index] ** 2
            result[state] = math.sqrt(max(variance, 0.0))
        return result
