"""Quasi-birth--death (QBD) processes and block-tridiagonal chains.

The GPRS chain of the paper is block structured: grouping the states by the
buffer occupancy ``k`` gives a block-tridiagonal generator (packet arrivals
move one level up, packet services one level down, everything else stays
within a level).  Two solution techniques exploit that structure:

* :func:`solve_finite_level_chain` -- exact block elimination (a block LU /
  backward-recursion sweep) for *finite*, possibly level-dependent chains.
  This is the textbook "linear level reduction" algorithm; it serves as an
  independent cross-check of the structure-exploiting solver used by
  :mod:`repro.core` and as the engine of the MAP/M/c/K queue in
  :mod:`repro.queueing`.
* :class:`QuasiBirthDeathProcess` -- the level-independent infinite QBD with
  the matrix-geometric solution of Neuts: the stationary vector satisfies
  ``pi_{k+1} = pi_k R`` where ``R`` is the minimal solution of
  ``A0 + R A1 + R^2 A2 = 0``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuasiBirthDeathProcess",
    "solve_finite_level_chain",
]


def _as_blocks(blocks: Sequence[np.ndarray], name: str) -> list[np.ndarray]:
    converted = [np.atleast_2d(np.asarray(block, dtype=float)) for block in blocks]
    for block in converted:
        if block.shape[0] != block.shape[1] and name == "local":
            raise ValueError("local blocks must be square")
    return converted


def solve_finite_level_chain(
    local_blocks: Sequence[np.ndarray],
    up_blocks: Sequence[np.ndarray],
    down_blocks: Sequence[np.ndarray],
) -> list[np.ndarray]:
    """Solve a finite block-tridiagonal CTMC by backward block elimination.

    Parameters
    ----------
    local_blocks:
        ``A1^(k)`` for levels ``k = 0 .. K``: transitions within level ``k``
        **including** the diagonal (so that the full generator's rows sum to
        zero once the up and down blocks are added).
    up_blocks:
        ``A0^(k)`` for ``k = 0 .. K-1``: transitions from level ``k`` to
        ``k + 1``.
    down_blocks:
        ``A2^(k)`` for ``k = 1 .. K``: transitions from level ``k`` to
        ``k - 1``.

    Returns
    -------
    list of numpy.ndarray
        The stationary probability vector of every level, normalised so the
        grand total is one.

    Notes
    -----
    The algorithm eliminates levels from the top: with
    ``S_K = A1^(K)`` and ``S_k = A1^(k) + A0^(k) (-S_{k+1})^{-1} A2^(k+1)``,
    level 0 satisfies ``x_0 S_0 = 0``; the remaining levels follow from
    ``x_{k+1} = x_k A0^(k) (-S_{k+1})^{-1}``.
    """
    local = _as_blocks(local_blocks, "local")
    up = _as_blocks(up_blocks, "up")
    down = _as_blocks(down_blocks, "down")
    levels = len(local)
    if levels < 1:
        raise ValueError("at least one level is required")
    if len(up) != levels - 1 or len(down) != levels - 1:
        raise ValueError(
            "need exactly one up block and one down block per level boundary "
            f"(levels={levels}, up={len(up)}, down={len(down)})"
        )

    # Backward sweep building the censored level generators S_k.
    censored = [None] * levels
    censored[levels - 1] = local[levels - 1]
    for level in range(levels - 2, -1, -1):
        inverse = np.linalg.inv(-censored[level + 1])
        censored[level] = local[level] + up[level] @ inverse @ down[level]

    # Solve x_0 S_0 = 0 with normalisation later.
    s0 = censored[0]
    size = s0.shape[0]
    a = np.vstack([s0.T, np.ones((1, size))])
    b = np.zeros(size + 1)
    b[-1] = 1.0
    x0, *_ = np.linalg.lstsq(a, b, rcond=None)
    x0 = np.maximum(x0, 0.0)

    vectors = [x0]
    for level in range(levels - 1):
        inverse = np.linalg.inv(-censored[level + 1])
        vectors.append(vectors[level] @ up[level] @ inverse)

    total = sum(float(vector.sum()) for vector in vectors)
    if total <= 0:
        raise ValueError("the chain has no positive stationary mass (is it irreducible?)")
    return [vector / total for vector in vectors]


@dataclass(frozen=True)
class QuasiBirthDeathProcess:
    """A level-independent infinite QBD solved with the matrix-geometric method.

    Parameters
    ----------
    boundary_block:
        ``B`` -- local transitions (including the diagonal) of level zero.
    up_block:
        ``A0`` -- transitions one level up (identical at every level).
    local_block:
        ``A1`` -- local transitions (including diagonal) of the repeating levels.
    down_block:
        ``A2`` -- transitions one level down.
    boundary_up_block:
        Optional ``B0`` -- transitions from level zero up; defaults to ``A0``.
    boundary_down_block:
        Optional ``B1`` -- transitions from level one down to level zero;
        defaults to ``A2``.
    """

    boundary_block: np.ndarray
    up_block: np.ndarray
    local_block: np.ndarray
    down_block: np.ndarray
    boundary_up_block: np.ndarray | None = None
    boundary_down_block: np.ndarray | None = None

    def __post_init__(self) -> None:
        for name in ("boundary_block", "up_block", "local_block", "down_block"):
            value = np.atleast_2d(np.asarray(getattr(self, name), dtype=float))
            object.__setattr__(self, name, value)
        for name in ("boundary_up_block", "boundary_down_block"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, np.atleast_2d(np.asarray(value, dtype=float)))
        size = self.local_block.shape[0]
        for name in ("up_block", "down_block", "boundary_block"):
            if getattr(self, name).shape != (size, size):
                raise ValueError("all blocks must be square and of identical size")

    @property
    def phase_count(self) -> int:
        return self.local_block.shape[0]

    # ------------------------------------------------------------------ #
    # Matrix-geometric machinery
    # ------------------------------------------------------------------ #
    def rate_matrix(self, *, tol: float = 1e-12, max_iterations: int = 100_000) -> np.ndarray:
        """Return the minimal non-negative solution ``R`` of ``A0 + R A1 + R^2 A2 = 0``.

        Computed with the standard fixed-point iteration
        ``R <- -(A0 + R^2 A2) A1^{-1}``, which converges for positive-recurrent
        QBDs.
        """
        a0 = self.up_block
        a1 = self.local_block
        a2 = self.down_block
        a1_inverse = np.linalg.inv(a1)
        r = np.zeros_like(a0)
        for _ in range(max_iterations):
            updated = -(a0 + r @ r @ a2) @ a1_inverse
            if np.max(np.abs(updated - r)) < tol:
                return updated
            r = updated
        raise RuntimeError("the R-matrix iteration did not converge; is the QBD stable?")

    def spectral_radius(self) -> float:
        """Return the spectral radius of ``R`` (< 1 for a stable QBD)."""
        return float(np.max(np.abs(np.linalg.eigvals(self.rate_matrix()))))

    def is_stable(self) -> bool:
        """Return whether the QBD is positive recurrent (drift condition)."""
        a = self.up_block + self.local_block + self.down_block
        size = self.phase_count
        matrix = np.vstack([a.T, np.ones((1, size))])
        rhs = np.zeros(size + 1)
        rhs[-1] = 1.0
        pi, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
        upward_drift = float(pi @ self.up_block @ np.ones(size))
        downward_drift = float(pi @ self.down_block @ np.ones(size))
        return upward_drift < downward_drift

    def stationary_distribution(self, levels: int) -> list[np.ndarray]:
        """Return the stationary vectors of levels ``0 .. levels - 1``.

        The returned vectors are exact for the infinite QBD (each level ``k``
        has mass ``pi_0 R^k`` beyond the boundary); only the reported prefix is
        materialised.
        """
        if levels < 1:
            raise ValueError("levels must be at least 1")
        if not self.is_stable():
            raise ValueError("the QBD is not stable; no stationary distribution exists")
        r = self.rate_matrix()
        size = self.phase_count
        b0 = self.boundary_up_block if self.boundary_up_block is not None else self.up_block
        b1 = self.boundary_down_block if self.boundary_down_block is not None else self.down_block
        # Boundary equation: pi_0 (B + R B1) = 0  with the matrix-geometric tail.
        boundary = self.boundary_block + r @ b1
        matrix = np.vstack([boundary.T, np.ones((1, size))])
        rhs = np.zeros(size + 1)
        rhs[-1] = 1.0
        pi0, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
        pi0 = np.maximum(pi0, 0.0)
        # Normalise over the infinite tail: total = pi0 (I - R)^{-1} 1.
        tail = np.linalg.inv(np.eye(size) - r)
        total = float(pi0 @ tail @ np.ones(size))
        if total <= 0:
            raise ValueError("degenerate boundary solution")
        pi0 = pi0 / total
        distribution = [pi0]
        current = pi0
        for _ in range(levels - 1):
            current = current @ r
            distribution.append(current)
        # Consistency of the boundary blocks (B0 enters through the generator's
        # row sums; it is referenced here to keep the API honest even though the
        # standard boundary equation only needs B and B1).
        _ = b0
        return distribution

    def mean_level(self) -> float:
        """Return the stationary mean level ``sum_k k |pi_k|`` of the infinite QBD."""
        if not self.is_stable():
            raise ValueError("the QBD is not stable")
        r = self.rate_matrix()
        size = self.phase_count
        pi0 = self.stationary_distribution(1)[0]
        eye = np.eye(size)
        inverse = np.linalg.inv(eye - r)
        # sum_k k pi_0 R^k 1 = pi_0 R (I - R)^{-2} 1.
        return float(pi0 @ r @ inverse @ inverse @ np.ones(size))
