"""General continuous- and discrete-time Markov chain library.

This subpackage provides the numerical machinery used by the GPRS model in
:mod:`repro.core`:

* :class:`~repro.markov.ctmc.ContinuousTimeMarkovChain` -- a CTMC defined by a
  (sparse or dense) infinitesimal generator matrix, with steady-state and
  transient solution methods.
* :class:`~repro.markov.dtmc.DiscreteTimeMarkovChain` -- a DTMC defined by a
  stochastic matrix.
* :mod:`~repro.markov.solvers` -- numerical steady-state solvers: GTH
  elimination, direct sparse linear solve, uniformised power iteration, Jacobi,
  Gauss--Seidel and SOR sweeps.
* :mod:`~repro.markov.mmpp` -- Markov-modulated Poisson processes, the
  interrupted Poisson process (IPP) used by the 3GPP traffic model, and the
  aggregation of ``m`` identical two-state sources into an ``(m + 1)``-state
  birth--death modulating chain (the key state-space reduction of the paper).
* :mod:`~repro.markov.birth_death` -- closed-form birth--death chain solutions.
* :mod:`~repro.markov.transient` -- transient analysis via uniformisation.
* :mod:`~repro.markov.phase_type` -- phase-type distributions (Erlang,
  hyperexponential, Coxian, two-moment fitting) for relaxing the exponential
  assumptions of the model.
* :mod:`~repro.markov.map_process` -- Markovian arrival processes, the
  second-order generalisation of the MMPP traffic model.
* :mod:`~repro.markov.qbd` -- block-tridiagonal (quasi-birth--death) solution
  techniques: finite-level block elimination and the matrix-geometric method.
* :mod:`~repro.markov.absorption` -- first-passage and absorption analysis
  (e.g. the time until a busy mobile leaves the cell).
"""

from repro.markov.absorption import (
    AbsorbingCtmcAnalysis,
    absorption_probabilities,
    expected_time_to_absorption,
    first_passage_time_moments,
)
from repro.markov.birth_death import BirthDeathChain
from repro.markov.map_process import MarkovianArrivalProcess, map_from_mmpp, superpose_maps
from repro.markov.phase_type import (
    PhaseTypeDistribution,
    coxian_ph,
    erlang_ph,
    exponential_ph,
    fit_two_moments,
    hyperexponential_ph,
)
from repro.markov.qbd import QuasiBirthDeathProcess, solve_finite_level_chain
from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.markov.dtmc import DiscreteTimeMarkovChain
from repro.markov.mmpp import (
    InterruptedPoissonProcess,
    MarkovModulatedPoissonProcess,
    aggregate_identical_ipps,
    superpose_mmpps,
)
from repro.markov.solvers import (
    SolverError,
    SteadyStateResult,
    solve_steady_state,
    steady_state_direct,
    steady_state_gauss_seidel,
    steady_state_gth,
    steady_state_power,
)
from repro.markov.transient import transient_distribution, uniformize

__all__ = [
    "AbsorbingCtmcAnalysis",
    "BirthDeathChain",
    "ContinuousTimeMarkovChain",
    "DiscreteTimeMarkovChain",
    "InterruptedPoissonProcess",
    "MarkovModulatedPoissonProcess",
    "MarkovianArrivalProcess",
    "PhaseTypeDistribution",
    "QuasiBirthDeathProcess",
    "SolverError",
    "SteadyStateResult",
    "absorption_probabilities",
    "aggregate_identical_ipps",
    "coxian_ph",
    "erlang_ph",
    "expected_time_to_absorption",
    "exponential_ph",
    "first_passage_time_moments",
    "fit_two_moments",
    "hyperexponential_ph",
    "map_from_mmpp",
    "solve_finite_level_chain",
    "solve_steady_state",
    "steady_state_direct",
    "steady_state_gauss_seidel",
    "steady_state_gth",
    "steady_state_power",
    "superpose_maps",
    "superpose_mmpps",
    "transient_distribution",
    "uniformize",
]
