"""Transient analysis of CTMCs via uniformisation (Jensen's method).

Uniformisation expresses the transient distribution of a CTMC as a Poisson
mixture of powers of the uniformised DTMC,

    pi(t) = sum_{k >= 0} PoissonPMF(k; Lambda t) * pi(0) P^k,

with ``P = I + Q / Lambda`` and ``Lambda >= max_i |q_ii|``.  The series is
truncated once the accumulated Poisson weight exceeds ``1 - tol``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.markov.solvers import uniformization_rate

__all__ = ["uniformize", "transient_distribution", "poisson_truncation_point"]


def uniformize(generator, rate: float | None = None) -> tuple[sp.csr_matrix, float]:
    """Return the uniformised DTMC matrix ``P`` and the uniformisation rate.

    Parameters
    ----------
    generator:
        CTMC generator matrix (dense or sparse).
    rate:
        Uniformisation rate ``Lambda``; must be at least the largest exit rate.
        Chosen automatically when omitted.
    """
    if sp.issparse(generator):
        q = generator.tocsr().astype(float)
    else:
        q = sp.csr_matrix(np.asarray(generator, dtype=float))
    lam = uniformization_rate(q) if rate is None else float(rate)
    max_exit = float(np.max(np.abs(q.diagonal()))) if q.shape[0] else 0.0
    if lam < max_exit:
        raise ValueError(
            f"uniformisation rate {lam} is smaller than the maximum exit rate {max_exit}"
        )
    if lam <= 0:
        # Degenerate chain with no transitions at all.
        return sp.eye(q.shape[0], format="csr"), 1.0
    p = sp.eye(q.shape[0], format="csr") + q.multiply(1.0 / lam)
    return p.tocsr(), lam


#: Mean above which :func:`poisson_truncation_point` switches from the exact
#: linear scan to the guarded normal-approximation jump.  Below it the scan is
#: bitwise-identical to the historical implementation.
_SCAN_MEAN_THRESHOLD = 32.0


def poisson_truncation_point(mean: float, tol: float) -> int:
    """Return a ``k`` such that the Poisson CDF at ``k`` exceeds ``1 - tol``.

    For ``mean <= 32`` this is the *smallest* such ``k``, found by the exact
    linear scan (bitwise-identical to the historical implementation).  For
    larger means -- the paper preset's 26k-state chain pushes ``Lambda * t``
    into the tens of thousands, where an O(mean) scan per uniformisation step
    dominates the solve -- the start point jumps straight to the
    Cornish-Fisher normal-approximation quantile and then walks upward until
    a certified geometric tail bound proves the coverage, returning in
    O(sqrt(mean)) arithmetic operations.  The result may exceed the smallest
    admissible ``k`` by a few terms (the bound is conservative), which only
    costs the caller some vanishing-weight series terms; the coverage
    guarantee ``CDF(k) >= 1 - tol`` always holds.
    """
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if mean == 0:
        return 0
    if mean <= _SCAN_MEAN_THRESHOLD:
        # Walk the PMF recursively; for small means this is cheap and avoids
        # scipy.stats overhead inside tight loops.
        pmf = np.exp(-mean)
        cdf = pmf
        k = 0
        # Upper guard: mean + 12 * sqrt(mean) + 30 comfortably covers tol >= 1e-15.
        guard = int(mean + 12.0 * np.sqrt(mean) + 30.0)
        while cdf < 1.0 - tol and k < guard:
            k += 1
            pmf *= mean / k
            cdf += pmf
        return k

    from math import lgamma, log, sqrt

    from scipy.special import ndtri

    # Cornish-Fisher expansion of the Poisson quantile: the normal quantile z
    # corrected for the skewness 1 / sqrt(mean).
    z = max(0.0, float(ndtri(min(1.0 - tol, 1.0 - 1e-16))))
    k = int(mean + z * sqrt(mean) + (z * z - 1.0) / 6.0) + 1
    k = max(k, int(mean) + 1)

    # Certified coverage: P(X > k) <= pmf(k+1) / (1 - mean / (k + 2)) because
    # the PMF beyond the mode decays at least geometrically with ratio
    # mean / (k + 2).  Walk k upward (incremental log-PMF updates) until the
    # bound proves the tail below tol; from the Cornish-Fisher start this
    # takes O(sqrt(mean)) unit steps at worst.
    log_mean = log(mean)
    log_pmf_next = -mean + (k + 1) * log_mean - lgamma(k + 2.0)
    guard = k + int(12.0 * sqrt(mean) + 30.0)
    while k < guard:
        ratio = mean / (k + 2.0)
        log_tail_bound = log_pmf_next - log(1.0 - ratio)
        if log_tail_bound <= log(tol):
            break
        k += 1
        log_pmf_next += log_mean - log(k + 1.0)
    return k


def transient_distribution(
    generator,
    initial: np.ndarray | Sequence[float],
    time: float,
    *,
    tol: float = 1e-12,
) -> np.ndarray:
    """Return the CTMC state distribution at ``time`` starting from ``initial``.

    Parameters
    ----------
    generator:
        CTMC generator matrix.
    initial:
        Initial probability vector.
    time:
        Elapsed time; must be non-negative.
    tol:
        Truncation error bound for the Poisson series.
    """
    if time < 0:
        raise ValueError("time must be non-negative")
    pi0 = np.asarray(initial, dtype=float)
    if pi0.ndim != 1:
        raise ValueError("initial distribution must be a vector")
    total = pi0.sum()
    if total <= 0 or not np.isfinite(total):
        raise ValueError("initial distribution must have positive finite mass")
    pi0 = pi0 / total

    p, lam = uniformize(generator)
    if pi0.shape[0] != p.shape[0]:
        raise ValueError("initial distribution length does not match number of states")
    if time == 0:
        return pi0.copy()

    # For long horizons the Poisson weights of a single expansion underflow
    # (exp(-lam * t) vanishes), so the horizon is split into steps with a
    # bounded uniformisation mean and the distribution is propagated step by
    # step: pi(t) = pi(t/n) applied n times.
    mean = lam * time
    max_step_mean = 200.0
    if mean > max_step_mean:
        steps = int(np.ceil(mean / max_step_mean))
        step_time = time / steps
        current = pi0.copy()
        for _ in range(steps):
            current = transient_distribution(generator, current, step_time, tol=tol)
        return current

    truncation = poisson_truncation_point(mean, tol)

    result = np.zeros_like(pi0)
    term = pi0.copy()
    log_weight = -mean  # log of Poisson PMF at k = 0
    weight = np.exp(log_weight)
    result += weight * term
    for k in range(1, truncation + 1):
        term = term @ p
        weight *= mean / k
        if weight > 0:
            result += weight * term
    # Account for the truncated tail by renormalising.
    total = result.sum()
    if total > 0:
        result /= total
    return result
