"""Transient analysis of CTMCs via uniformisation (Jensen's method).

Uniformisation expresses the transient distribution of a CTMC as a Poisson
mixture of powers of the uniformised DTMC,

    pi(t) = sum_{k >= 0} PoissonPMF(k; Lambda t) * pi(0) P^k,

with ``P = I + Q / Lambda`` and ``Lambda >= max_i |q_ii|``.  The series is
truncated once the accumulated Poisson weight exceeds ``1 - tol``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.markov.solvers import uniformization_rate

__all__ = ["uniformize", "transient_distribution", "poisson_truncation_point"]


def uniformize(generator, rate: float | None = None) -> tuple[sp.csr_matrix, float]:
    """Return the uniformised DTMC matrix ``P`` and the uniformisation rate.

    Parameters
    ----------
    generator:
        CTMC generator matrix (dense or sparse).
    rate:
        Uniformisation rate ``Lambda``; must be at least the largest exit rate.
        Chosen automatically when omitted.
    """
    if sp.issparse(generator):
        q = generator.tocsr().astype(float)
    else:
        q = sp.csr_matrix(np.asarray(generator, dtype=float))
    lam = uniformization_rate(q) if rate is None else float(rate)
    max_exit = float(np.max(np.abs(q.diagonal()))) if q.shape[0] else 0.0
    if lam < max_exit:
        raise ValueError(
            f"uniformisation rate {lam} is smaller than the maximum exit rate {max_exit}"
        )
    if lam <= 0:
        # Degenerate chain with no transitions at all.
        return sp.eye(q.shape[0], format="csr"), 1.0
    p = sp.eye(q.shape[0], format="csr") + q.multiply(1.0 / lam)
    return p.tocsr(), lam


def poisson_truncation_point(mean: float, tol: float) -> int:
    """Return the smallest ``k`` such that the Poisson CDF at ``k`` exceeds ``1 - tol``."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if mean == 0:
        return 0
    # Walk the PMF recursively; for the chain sizes used here this is cheap and
    # avoids scipy.stats overhead inside tight loops.
    pmf = np.exp(-mean)
    cdf = pmf
    k = 0
    # Upper guard: mean + 12 * sqrt(mean) + 30 comfortably covers tol >= 1e-15.
    guard = int(mean + 12.0 * np.sqrt(mean) + 30.0)
    while cdf < 1.0 - tol and k < guard:
        k += 1
        pmf *= mean / k
        cdf += pmf
    return k


def transient_distribution(
    generator,
    initial: np.ndarray | Sequence[float],
    time: float,
    *,
    tol: float = 1e-12,
) -> np.ndarray:
    """Return the CTMC state distribution at ``time`` starting from ``initial``.

    Parameters
    ----------
    generator:
        CTMC generator matrix.
    initial:
        Initial probability vector.
    time:
        Elapsed time; must be non-negative.
    tol:
        Truncation error bound for the Poisson series.
    """
    if time < 0:
        raise ValueError("time must be non-negative")
    pi0 = np.asarray(initial, dtype=float)
    if pi0.ndim != 1:
        raise ValueError("initial distribution must be a vector")
    total = pi0.sum()
    if total <= 0 or not np.isfinite(total):
        raise ValueError("initial distribution must have positive finite mass")
    pi0 = pi0 / total

    p, lam = uniformize(generator)
    if pi0.shape[0] != p.shape[0]:
        raise ValueError("initial distribution length does not match number of states")
    if time == 0:
        return pi0.copy()

    # For long horizons the Poisson weights of a single expansion underflow
    # (exp(-lam * t) vanishes), so the horizon is split into steps with a
    # bounded uniformisation mean and the distribution is propagated step by
    # step: pi(t) = pi(t/n) applied n times.
    mean = lam * time
    max_step_mean = 200.0
    if mean > max_step_mean:
        steps = int(np.ceil(mean / max_step_mean))
        step_time = time / steps
        current = pi0.copy()
        for _ in range(steps):
            current = transient_distribution(generator, current, step_time, tol=tol)
        return current

    truncation = poisson_truncation_point(mean, tol)

    result = np.zeros_like(pi0)
    term = pi0.copy()
    log_weight = -mean  # log of Poisson PMF at k = 0
    weight = np.exp(log_weight)
    result += weight * term
    for k in range(1, truncation + 1):
        term = term @ p
        weight *= mean / k
        if weight > 0:
            result += weight * term
    # Account for the truncated tail by renormalising.
    total = result.sum()
    if total > 0:
        result /= total
    return result
