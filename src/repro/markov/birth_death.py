"""Birth--death chains with closed-form stationary distributions.

Birth--death chains appear throughout the GPRS model:

* the M/M/c/c Erlang-loss chains describing the number of active GSM calls and
  GPRS sessions (Section 4.2 of the paper),
* the aggregated ``(m + 1)``-state modulating chain of ``m`` identical on--off
  traffic sources,
* the BSC buffer occupancy conditioned on a fixed phase.

The closed form

    pi_j proportional to prod_{i < j} birth_i / death_{i+1}

is evaluated in log space so that chains with hundreds of states and widely
varying rates do not overflow.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.markov.ctmc import ContinuousTimeMarkovChain

__all__ = ["BirthDeathChain"]


class BirthDeathChain:
    """A finite birth--death chain on states ``0 .. n``.

    Parameters
    ----------
    birth_rates:
        ``birth_rates[i]`` is the rate of the transition ``i -> i + 1``;
        length ``n``.
    death_rates:
        ``death_rates[i]`` is the rate of the transition ``i + 1 -> i``;
        length ``n``.  All death rates must be positive (otherwise the chain
        would not be irreducible).
    """

    def __init__(self, birth_rates: Sequence[float], death_rates: Sequence[float]) -> None:
        births = np.asarray(birth_rates, dtype=float)
        deaths = np.asarray(death_rates, dtype=float)
        if births.ndim != 1 or deaths.ndim != 1:
            raise ValueError("birth and death rates must be one-dimensional sequences")
        if births.shape[0] != deaths.shape[0]:
            raise ValueError("birth and death rate sequences must have equal length")
        if np.any(births < 0) or np.any(deaths < 0):
            raise ValueError("rates must be non-negative")
        if np.any(deaths[births > 0] <= 0):
            raise ValueError("every reachable state must have a positive death rate")
        self._births = births
        self._deaths = deaths

    @property
    def birth_rates(self) -> np.ndarray:
        return self._births.copy()

    @property
    def death_rates(self) -> np.ndarray:
        return self._deaths.copy()

    @property
    def number_of_states(self) -> int:
        return self._births.shape[0] + 1

    def stationary_distribution(self) -> np.ndarray:
        """Return the closed-form stationary distribution.

        States that are unreachable because an earlier birth rate is zero get
        probability zero.
        """
        n = self.number_of_states
        log_weights = np.full(n, -np.inf)
        log_weights[0] = 0.0
        running = 0.0
        for i in range(n - 1):
            if self._births[i] <= 0:
                break
            running += np.log(self._births[i]) - np.log(self._deaths[i])
            log_weights[i + 1] = running
        shift = np.max(log_weights[np.isfinite(log_weights)])
        weights = np.exp(log_weights - shift, where=np.isfinite(log_weights), out=np.zeros(n))
        return weights / weights.sum()

    def mean(self) -> float:
        """Return the stationary mean state index."""
        pi = self.stationary_distribution()
        return float(np.dot(pi, np.arange(self.number_of_states)))

    def blocking_probability(self) -> float:
        """Return the stationary probability of the highest state (loss probability)."""
        return float(self.stationary_distribution()[-1])

    def to_ctmc(self) -> ContinuousTimeMarkovChain:
        """Return the equivalent :class:`ContinuousTimeMarkovChain`."""
        n = self.number_of_states
        generator = np.zeros((n, n))
        for i in range(n - 1):
            generator[i, i + 1] = self._births[i]
            generator[i + 1, i] = self._deaths[i]
        generator -= np.diag(generator.sum(axis=1))
        return ContinuousTimeMarkovChain(generator)

    @classmethod
    def erlang_loss(cls, arrival_rate: float, service_rate: float, servers: int) -> (
        "BirthDeathChain"
    ):
        """Return the M/M/c/c chain with ``servers`` servers (Erlang loss system)."""
        if servers < 1:
            raise ValueError("servers must be at least 1")
        if arrival_rate < 0 or service_rate <= 0:
            raise ValueError("arrival rate must be non-negative and service rate positive")
        births = np.full(servers, arrival_rate)
        deaths = service_rate * np.arange(1, servers + 1)
        return cls(births, deaths)

    @classmethod
    def mmck(
        cls, arrival_rate: float, service_rate: float, servers: int, capacity: int
    ) -> "BirthDeathChain":
        """Return the M/M/c/K chain (``capacity`` >= ``servers`` total places)."""
        if capacity < servers:
            raise ValueError("capacity must be at least the number of servers")
        births = np.full(capacity, arrival_rate)
        deaths = np.array(
            [service_rate * min(i + 1, servers) for i in range(capacity)], dtype=float
        )
        return cls(births, deaths)
