"""Discrete-time Markov chain abstraction.

The DTMC class is used in two places in this repository:

* as the embedded jump chain of a CTMC (see
  :meth:`repro.markov.ctmc.ContinuousTimeMarkovChain.embedded_jump_chain`), and
* as the uniformised chain underlying the power-iteration steady-state solver
  and transient uniformisation.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["DiscreteTimeMarkovChain"]


class DiscreteTimeMarkovChain:
    """A finite discrete-time Markov chain defined by a stochastic matrix.

    Parameters
    ----------
    transition_matrix:
        Square row-stochastic matrix (dense or scipy sparse).
    labels:
        Optional sequence of hashable state labels.
    """

    def __init__(
        self,
        transition_matrix,
        labels: Sequence[Hashable] | None = None,
        *,
        validate: bool = True,
    ) -> None:
        if sp.issparse(transition_matrix):
            p = transition_matrix.tocsr().astype(float)
        else:
            p = sp.csr_matrix(np.asarray(transition_matrix, dtype=float))
        if p.shape[0] != p.shape[1]:
            raise ValueError(f"transition matrix must be square, got shape {p.shape}")
        self._matrix = p
        self._labels = list(labels) if labels is not None else None
        if self._labels is not None and len(self._labels) != p.shape[0]:
            raise ValueError("number of labels does not match number of states")
        if validate:
            self.validate()

    @property
    def transition_matrix(self) -> sp.csr_matrix:
        return self._matrix

    @property
    def number_of_states(self) -> int:
        return self._matrix.shape[0]

    @property
    def labels(self) -> list[Hashable] | None:
        return list(self._labels) if self._labels is not None else None

    def __len__(self) -> int:
        return self.number_of_states

    def validate(self, tolerance: float = 1e-8) -> None:
        """Check that the matrix is row-stochastic with non-negative entries."""
        p = self._matrix
        if p.nnz and p.data.min() < -tolerance:
            raise ValueError("transition matrix has negative entries")
        row_sums = np.asarray(p.sum(axis=1)).ravel()
        if row_sums.size and np.max(np.abs(row_sums - 1.0)) > tolerance:
            raise ValueError("transition matrix rows do not sum to one")

    def step(self, distribution: np.ndarray | Sequence[float], steps: int = 1) -> np.ndarray:
        """Propagate a distribution forward by ``steps`` transitions."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        current = np.asarray(distribution, dtype=float)
        if current.shape[0] != self.number_of_states:
            raise ValueError("distribution length does not match number of states")
        for _ in range(steps):
            current = current @ self._matrix
        return current

    def stationary_distribution(
        self, *, tol: float = 1e-12, max_iterations: int = 500_000
    ) -> np.ndarray:
        """Return the stationary distribution ``pi = pi P`` via power iteration."""
        n = self.number_of_states
        if n == 1:
            return np.array([1.0])
        pi = np.full(n, 1.0 / n)
        for _ in range(max_iterations):
            new_pi = pi @ self._matrix
            total = new_pi.sum()
            if total <= 0 or not np.isfinite(total):
                raise RuntimeError("power iteration diverged")
            new_pi /= total
            if float(np.max(np.abs(new_pi - pi))) < tol:
                return new_pi
            pi = new_pi
        return pi

    def occupation_frequencies(
        self, initial_state: int, steps: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Simulate a trajectory and return the empirical state-visit frequencies.

        This is a convenience used by statistical tests that compare simulated
        visit fractions against the stationary distribution.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        dense = self._matrix.toarray()
        counts = np.zeros(self.number_of_states, dtype=float)
        state = initial_state
        for _ in range(steps):
            counts[state] += 1
            state = int(rng.choice(self.number_of_states, p=dense[state]))
        return counts / counts.sum()
