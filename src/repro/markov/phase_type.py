"""Continuous phase-type distributions.

The Markov model of the paper assumes exponentially distributed call
durations, dwell times, reading times and packet inter-arrival times.
Phase-type (PH) distributions are the natural tool for checking how sensitive
the results are to that assumption: they are dense in the set of positive
distributions, closed under the operations used in the model, and any PH
holding time keeps the overall process Markovian (at the cost of a larger
state space).

A PH distribution is the time to absorption of a CTMC with ``n`` transient
phases, initial phase distribution ``alpha`` (row vector) and sub-generator
``S`` (the transient-to-transient block of the generator); the absorption rate
vector is ``s = -S @ 1``.

This module provides the standard constructors (exponential, Erlang,
hyperexponential, Coxian), density/distribution/moment evaluation, sampling,
and the classic two-moment fit that picks an Erlang for squared coefficients
of variation below one and a balanced hyperexponential above one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.linalg

__all__ = [
    "PhaseTypeDistribution",
    "exponential_ph",
    "erlang_ph",
    "hyperexponential_ph",
    "coxian_ph",
    "fit_two_moments",
]


@dataclass(frozen=True)
class PhaseTypeDistribution:
    """A continuous phase-type distribution ``PH(alpha, S)``.

    Parameters
    ----------
    initial_distribution:
        Row vector ``alpha`` of initial phase probabilities; its sum may be
        less than one, the remainder being an atom at zero.
    sub_generator:
        Square matrix ``S`` of transition rates among the transient phases;
        off-diagonal entries are non-negative and every row sum is
        non-positive (the deficit is the absorption rate of the phase).
    """

    initial_distribution: np.ndarray
    sub_generator: np.ndarray

    def __post_init__(self) -> None:
        alpha = np.atleast_1d(np.asarray(self.initial_distribution, dtype=float))
        s = np.atleast_2d(np.asarray(self.sub_generator, dtype=float))
        if s.shape[0] != s.shape[1]:
            raise ValueError("sub_generator must be square")
        if alpha.shape[0] != s.shape[0]:
            raise ValueError("initial_distribution length must match the number of phases")
        if np.any(alpha < -1e-12) or alpha.sum() > 1.0 + 1e-9:
            raise ValueError("initial_distribution must be a (sub-)probability vector")
        off_diagonal = s - np.diag(np.diag(s))
        if np.any(off_diagonal < -1e-12):
            raise ValueError("sub_generator off-diagonal entries must be non-negative")
        exit_rates = -s.sum(axis=1)
        if np.any(exit_rates < -1e-9):
            raise ValueError("sub_generator row sums must be non-positive")
        if np.any(np.diag(s) >= 0):
            raise ValueError("sub_generator diagonal entries must be negative")
        object.__setattr__(self, "initial_distribution", alpha)
        object.__setattr__(self, "sub_generator", s)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def number_of_phases(self) -> int:
        return self.sub_generator.shape[0]

    @property
    def exit_rate_vector(self) -> np.ndarray:
        """Absorption rate of every phase, ``s = -S @ 1``."""
        return -self.sub_generator.sum(axis=1)

    def moment(self, order: int) -> float:
        """Return the raw moment ``E[X^k] = k! * alpha (-S)^{-k} 1``."""
        if order < 1:
            raise ValueError("moment order must be at least 1")
        ones = np.ones(self.number_of_phases)
        inverse = np.linalg.inv(-self.sub_generator)
        vector = ones
        for _ in range(order):
            vector = inverse @ vector
        return float(math.factorial(order) * self.initial_distribution @ vector)

    def mean(self) -> float:
        """Return the expectation of the distribution."""
        return self.moment(1)

    def variance(self) -> float:
        """Return the variance of the distribution."""
        first = self.moment(1)
        return self.moment(2) - first * first

    def squared_coefficient_of_variation(self) -> float:
        """Return ``Var[X] / E[X]^2`` (1 for the exponential distribution)."""
        mean = self.mean()
        if mean == 0:
            raise ZeroDivisionError("the distribution has zero mean")
        return self.variance() / (mean * mean)

    # ------------------------------------------------------------------ #
    # Density, distribution and hazard
    # ------------------------------------------------------------------ #
    def cdf(self, time: float) -> float:
        """Return ``P(X <= time)``."""
        if time < 0:
            return 0.0
        transient_mass = self.initial_distribution @ scipy.linalg.expm(
            self.sub_generator * time
        )
        return float(1.0 - transient_mass.sum())

    def survival(self, time: float) -> float:
        """Return ``P(X > time)``."""
        return 1.0 - self.cdf(time)

    def pdf(self, time: float) -> float:
        """Return the probability density at ``time``."""
        if time < 0:
            return 0.0
        transient_mass = self.initial_distribution @ scipy.linalg.expm(
            self.sub_generator * time
        )
        return float(transient_mass @ self.exit_rate_vector)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, size: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``size`` independent samples by simulating the absorbing chain."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        n = self.number_of_phases
        alpha = self.initial_distribution
        atom_at_zero = 1.0 - alpha.sum()
        exit_rates = self.exit_rate_vector
        total_rates = -np.diag(self.sub_generator)
        # Per-phase jump distribution over (other phases ..., absorption).
        jump_probabilities = np.zeros((n, n + 1))
        for i in range(n):
            jump_probabilities[i, :n] = self.sub_generator[i] / total_rates[i]
            jump_probabilities[i, i] = 0.0
            jump_probabilities[i, n] = exit_rates[i] / total_rates[i]
        samples = np.zeros(size)
        for k in range(size):
            if atom_at_zero > 0 and rng.random() < atom_at_zero:
                samples[k] = 0.0
                continue
            phase = rng.choice(n, p=alpha / alpha.sum())
            elapsed = 0.0
            while True:
                elapsed += rng.exponential(1.0 / total_rates[phase])
                nxt = rng.choice(n + 1, p=jump_probabilities[phase])
                if nxt == n:
                    break
                phase = nxt
            samples[k] = elapsed
        return samples


# --------------------------------------------------------------------------- #
# Constructors
# --------------------------------------------------------------------------- #
def exponential_ph(rate: float) -> PhaseTypeDistribution:
    """Return the exponential distribution with the given rate as a one-phase PH."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return PhaseTypeDistribution(np.array([1.0]), np.array([[-rate]]))


def erlang_ph(stages: int, rate: float) -> PhaseTypeDistribution:
    """Return an Erlang-``k`` distribution (``k`` exponential stages in series).

    The mean is ``stages / rate`` and the squared coefficient of variation is
    ``1 / stages``.
    """
    if stages < 1:
        raise ValueError("stages must be at least 1")
    if rate <= 0:
        raise ValueError("rate must be positive")
    s = np.zeros((stages, stages))
    for i in range(stages):
        s[i, i] = -rate
        if i + 1 < stages:
            s[i, i + 1] = rate
    alpha = np.zeros(stages)
    alpha[0] = 1.0
    return PhaseTypeDistribution(alpha, s)


def hyperexponential_ph(
    probabilities: np.ndarray | list[float], rates: np.ndarray | list[float]
) -> PhaseTypeDistribution:
    """Return a hyperexponential distribution (probabilistic mixture of exponentials)."""
    probabilities = np.asarray(probabilities, dtype=float)
    rates = np.asarray(rates, dtype=float)
    if probabilities.shape != rates.shape or probabilities.ndim != 1:
        raise ValueError("probabilities and rates must be vectors of the same length")
    if np.any(probabilities < 0) or not math.isclose(probabilities.sum(), 1.0, rel_tol=1e-9):
        raise ValueError("probabilities must be non-negative and sum to one")
    if np.any(rates <= 0):
        raise ValueError("all rates must be positive")
    return PhaseTypeDistribution(probabilities, np.diag(-rates))


def coxian_ph(rates: np.ndarray | list[float], continuation: np.ndarray | list[float]) -> (
    PhaseTypeDistribution
):
    """Return a Coxian distribution: stages in series with early-exit probabilities.

    Parameters
    ----------
    rates:
        Per-stage exponential rates (length ``k``).
    continuation:
        Probability of continuing to the next stage after each of the first
        ``k - 1`` stages (the last stage always absorbs).
    """
    rates = np.asarray(rates, dtype=float)
    continuation = np.asarray(continuation, dtype=float)
    if rates.ndim != 1 or rates.size < 1:
        raise ValueError("rates must be a non-empty vector")
    if continuation.shape != (rates.size - 1,):
        raise ValueError("continuation must have one entry fewer than rates")
    if np.any(rates <= 0):
        raise ValueError("all rates must be positive")
    if np.any(continuation < 0) or np.any(continuation > 1):
        raise ValueError("continuation probabilities must be in [0, 1]")
    k = rates.size
    s = np.diag(-rates)
    for i in range(k - 1):
        s[i, i + 1] = rates[i] * continuation[i]
    alpha = np.zeros(k)
    alpha[0] = 1.0
    return PhaseTypeDistribution(alpha, s)


def fit_two_moments(mean: float, scv: float) -> PhaseTypeDistribution:
    """Fit a phase-type distribution to a mean and squared coefficient of variation.

    The classic recipe:

    * ``scv == 1``   -- exponential;
    * ``scv < 1``    -- Erlang-``k`` with ``k = ceil(1 / scv)``, adjusted with a
      Coxian-style first stage so both moments match exactly;
    * ``scv > 1``    -- balanced-means two-phase hyperexponential.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if scv <= 0:
        raise ValueError("the squared coefficient of variation must be positive")
    if math.isclose(scv, 1.0, rel_tol=1e-9):
        return exponential_ph(1.0 / mean)
    if scv > 1.0:
        # Balanced-means hyperexponential (Whitt's recipe).
        p = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
        rate1 = 2.0 * p / mean
        rate2 = 2.0 * (1.0 - p) / mean
        return hyperexponential_ph([p, 1.0 - p], [rate1, rate2])
    # scv < 1: mixture of Erlang-(k-1) and Erlang-k with common rate.
    k = math.ceil(1.0 / scv)
    if k < 2:
        k = 2
    # Probability of using k - 1 stages (standard two-moment Erlang mixture).
    p = (k * scv - math.sqrt(k * (1.0 + scv) - k * k * scv)) / (1.0 + scv)
    p = min(max(p, 0.0), 1.0)
    rate = (k - p) / mean
    stages = k
    s = np.zeros((stages, stages))
    for i in range(stages):
        s[i, i] = -rate
        if i + 1 < stages:
            s[i, i + 1] = rate
    # With probability p the process starts in stage 2 (skipping one stage),
    # producing an Erlang-(k-1); otherwise it runs through all k stages.
    alpha = np.zeros(stages)
    alpha[0] = 1.0 - p
    alpha[1] = p
    return PhaseTypeDistribution(alpha, s)
