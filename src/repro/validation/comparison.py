"""Point-wise and curve-wise comparison of analytical and simulated results.

The validation criterion of the paper is coverage: an analytical point is
"validated" when it lies inside the 95% batch-means confidence interval of the
corresponding simulation estimate.  These helpers compute that coverage for
whole curves, together with relative errors, and render a compact textual
report used by the examples and by EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "PointComparison",
    "CurveComparison",
    "ValidationReport",
    "compare_series",
    "compare_model_with_simulation",
]


@dataclass(frozen=True)
class PointComparison:
    """Comparison of one analytical value against one simulation interval."""

    x: float
    analytical: float
    simulation_mean: float
    confidence_half_width: float

    @property
    def inside_interval(self) -> bool:
        """Whether the analytical value lies inside the simulation interval."""
        return (
            self.simulation_mean - self.confidence_half_width - 1e-15
            <= self.analytical
            <= self.simulation_mean + self.confidence_half_width + 1e-15
        )

    @property
    def absolute_error(self) -> float:
        return abs(self.analytical - self.simulation_mean)

    @property
    def relative_error(self) -> float:
        """Relative error against the simulation mean (0 when both are zero)."""
        if self.simulation_mean == 0.0:
            return 0.0 if self.analytical == 0.0 else float("inf")
        return self.absolute_error / abs(self.simulation_mean)


@dataclass(frozen=True)
class CurveComparison:
    """Comparison of one metric curve (analytical vs. simulated)."""

    metric: str
    points: tuple[PointComparison, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a curve comparison needs at least one point")
        object.__setattr__(self, "points", tuple(self.points))

    @property
    def coverage(self) -> float:
        """Fraction of points whose analytical value lies inside the interval."""
        inside = sum(1 for point in self.points if point.inside_interval)
        return inside / len(self.points)

    @property
    def max_relative_error(self) -> float:
        return max(point.relative_error for point in self.points)

    @property
    def mean_relative_error(self) -> float:
        finite = [p.relative_error for p in self.points if p.relative_error != float("inf")]
        if not finite:
            return float("inf")
        return sum(finite) / len(finite)

    def passes(self, *, min_coverage: float = 0.8, max_mean_relative_error: float = 0.5) -> bool:
        """Return whether the curve meets the validation thresholds.

        The defaults encode the paper's "almost all curves lie in the
        confidence intervals" with a tolerance for the scaled configurations
        used in CI.
        """
        return (
            self.coverage >= min_coverage
            or self.mean_relative_error <= max_mean_relative_error
        )


@dataclass(frozen=True)
class ValidationReport:
    """Comparison of several metric curves for one experiment."""

    experiment: str
    curves: tuple[CurveComparison, ...]

    def curve(self, metric: str) -> CurveComparison:
        for curve in self.curves:
            if curve.metric == metric:
                return curve
        raise KeyError(f"no comparison recorded for metric {metric!r}")

    def overall_coverage(self) -> float:
        """Return the coverage over all points of all curves."""
        points = [point for curve in self.curves for point in curve.points]
        inside = sum(1 for point in points if point.inside_interval)
        return inside / len(points) if points else 1.0

    def to_text(self) -> str:
        """Render a compact, monospace-friendly summary table."""
        lines = [f"validation report: {self.experiment}"]
        header = f"{'metric':<32} {'coverage':>9} {'mean rel err':>13} {'max rel err':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        for curve in self.curves:
            lines.append(
                f"{curve.metric:<32} {curve.coverage:>8.0%} "
                f"{curve.mean_relative_error:>13.3f} {curve.max_relative_error:>12.3f}"
            )
        lines.append(f"overall coverage: {self.overall_coverage():.0%}")
        return "\n".join(lines)


def compare_series(
    metric: str,
    x_values: Sequence[float],
    analytical: Sequence[float],
    simulation_means: Sequence[float],
    confidence_half_widths: Sequence[float] | None = None,
) -> CurveComparison:
    """Build a :class:`CurveComparison` from aligned sequences.

    ``confidence_half_widths`` defaults to zero (pure relative-error
    comparison) when the simulation did not report intervals.
    """
    n = len(x_values)
    if not (len(analytical) == len(simulation_means) == n):
        raise ValueError("all series must have the same length")
    if confidence_half_widths is None:
        confidence_half_widths = [0.0] * n
    if len(confidence_half_widths) != n:
        raise ValueError("confidence_half_widths must match the series length")
    points = tuple(
        PointComparison(
            x=float(x),
            analytical=float(a),
            simulation_mean=float(s),
            confidence_half_width=float(h),
        )
        for x, a, s, h in zip(x_values, analytical, simulation_means, confidence_half_widths)
    )
    return CurveComparison(metric=metric, points=points)


def compare_model_with_simulation(
    experiment: str,
    analytical_measures,
    simulation_results,
    metrics: Sequence[str],
) -> ValidationReport:
    """Compare one analytical solution against one simulation run.

    Parameters
    ----------
    experiment:
        Name used in the report header.
    analytical_measures:
        A :class:`~repro.core.measures.GprsPerformanceMeasures` instance (or
        anything exposing the requested metrics as attributes).
    simulation_results:
        A :class:`~repro.simulator.results.SimulationResults` instance (or
        anything exposing ``interval(metric)`` with ``mean`` / ``half_width``).
    metrics:
        Metric names present on both sides.
    """
    curves = []
    for metric in metrics:
        analytical_value = float(getattr(analytical_measures, metric))
        interval = simulation_results.interval(metric)
        curves.append(
            CurveComparison(
                metric=metric,
                points=(
                    PointComparison(
                        x=0.0,
                        analytical=analytical_value,
                        simulation_mean=float(interval.mean),
                        confidence_half_width=float(interval.half_width),
                    ),
                ),
            )
        )
    return ValidationReport(experiment=experiment, curves=tuple(curves))
