"""Validation utilities: comparing model, simulation and paper claims.

Section 5.2 of the paper validates the Markov model by checking that "almost
all performance curves derived from the Markov model lie in the confidence
intervals of the corresponding curve of the simulator".  This package turns
that criterion -- and the qualitative claims made about every figure -- into
reusable, testable checks:

* :mod:`repro.validation.comparison` -- point-wise and curve-wise comparison
  of analytical values against simulation confidence intervals (coverage
  fraction, relative errors, summary report);
* :mod:`repro.validation.shapes` -- assertions about curve *shapes*:
  monotonicity, dominance/ordering of curves, crossover points, saturation --
  the properties EXPERIMENTS.md records for every reproduced figure.
* :mod:`repro.validation.network` -- the homogeneity anchor of the
  multi-cell layer: a uniform wrap-around network must reproduce the paper's
  single-cell fixed point in every cell.
* :mod:`repro.validation.transient` -- the constant-schedule anchor of the
  transient layer: a time-homogeneous trajectory must preserve (and, from
  any start, converge to) the steady-state solver's measures.
"""

from repro.validation.comparison import (
    CurveComparison,
    PointComparison,
    ValidationReport,
    compare_model_with_simulation,
    compare_series,
)
from repro.validation.network import HomogeneityCheck, check_network_homogeneity
from repro.validation.transient import (
    TransientAnchorCheck,
    check_transient_steady_state,
)
from repro.validation.shapes import (
    crossover_points,
    curves_are_ordered,
    find_threshold_crossing,
    fraction_within_tolerance,
    is_monotone,
    relative_spread,
)

__all__ = [
    "CurveComparison",
    "HomogeneityCheck",
    "check_network_homogeneity",
    "PointComparison",
    "TransientAnchorCheck",
    "ValidationReport",
    "check_transient_steady_state",
    "compare_model_with_simulation",
    "compare_series",
    "crossover_points",
    "curves_are_ordered",
    "find_threshold_crossing",
    "fraction_within_tolerance",
    "is_monotone",
    "relative_spread",
]
