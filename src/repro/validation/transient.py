"""Transient-level validation: the constant-schedule anchor.

The time-dependent model of :mod:`repro.transient` must collapse onto the
paper's steady-state model whenever its premises collapse onto the paper's:
under a *constant* schedule the chain is time-homogeneous, so a trajectory
that starts in the stationary distribution must stay on the steady-state
solver's measures at every sample, and a trajectory started anywhere else
must converge to them as the horizon grows.  This check quantifies that
agreement; the test suite and the transient CI smoke job assert it to 1e-8.

Two regimes are covered by the ``initial`` knob:

* ``"stationary"`` (the default) starts *on* the fixed point: the propagator
  must preserve it exactly, and the early-stop detector should prove
  stationarity after a single matrix-vector product -- this is cheap at any
  state-space size, including the full paper preset.
* ``"empty"`` starts from an idle cell and exercises genuine relaxation; the
  horizon must then cover several multiples of the slowest time constant
  (the GSM call duration, by default 120 s) for the 1e-8 agreement to be
  reachable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.transient.model import TransientModel
from repro.transient.schedule import constant_workload

__all__ = ["TransientAnchorCheck", "check_transient_steady_state"]


@dataclass(frozen=True)
class TransientAnchorCheck:
    """Worst-case deviation of a constant-schedule trajectory from steady state."""

    horizon_s: float
    initial: str
    tolerance: float
    worst_measure_error: float
    worst_measure: str
    final_measure_error: float
    early_stopped: bool
    matvecs: int

    @property
    def passed(self) -> bool:
        return self.final_measure_error <= self.tolerance

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"transient anchor (constant schedule, {self.initial} start, "
            f"horizon {self.horizon_s:g}s): {status} -- final measure error "
            f"{self.final_measure_error:.2e} vs. tolerance "
            f"{self.tolerance:.0e}; worst along the trajectory "
            f"{self.worst_measure_error:.2e} ({self.worst_measure}), "
            f"{self.matvecs} matvec(s), early stop: {self.early_stopped}"
        )


def check_transient_steady_state(
    params: GprsModelParameters,
    *,
    horizon_s: float = 600.0,
    samples: int = 6,
    initial: str = "stationary",
    tolerance: float = 1e-8,
    solver_method: str = "auto",
    steady_state_tol: float | None = None,
) -> TransientAnchorCheck:
    """Compare a constant-schedule trajectory against the steady-state solver.

    The trajectory runs ``params`` unchanged for ``horizon_s`` seconds and
    its sampled measures are compared with a plain
    :class:`~repro.core.model.GprsMarkovModel` solve.  With
    ``initial="stationary"`` every sample must agree to ``tolerance``; with
    ``initial="empty"`` only the final sample is asserted (the early samples
    legitimately reflect the relaxation from the empty cell -- their worst
    error is still reported).

    ``steady_state_tol`` defaults by regime: the stationary start keeps the
    early-stop detector on (that the one-matvec stationarity proof fires *is*
    part of what the anchor validates), while the empty start disables it --
    the residual threshold bounds ``||pi Q|| / Lambda``, not the distance to
    stationarity, so a slow-mixing chain could otherwise freeze the
    trajectory before the slow modes have decayed to ``tolerance``.
    """
    if steady_state_tol is None:
        steady_state_tol = 1e-9 if initial == "stationary" else 0.0
    steady = GprsMarkovModel(params, solver_method=solver_method).solve()
    reference = steady.measures.as_dict()

    result = TransientModel(
        constant_workload(horizon_s, samples=samples, initial=initial),
        params,
        solver_method=solver_method,
        steady_state_tol=steady_state_tol,
    ).solve()

    worst = 0.0
    worst_key = "none"
    final = 0.0
    last_index = len(result.points) - 1
    for index, point in enumerate(result.points):
        for key, value in reference.items():
            error = abs(point.values[key] - value)
            if error > worst:
                worst = error
                worst_key = key
            if index == last_index:
                final = max(final, error)
    if initial == "stationary":
        final = worst
    return TransientAnchorCheck(
        horizon_s=horizon_s,
        initial=initial,
        tolerance=tolerance,
        worst_measure_error=worst,
        worst_measure=worst_key,
        final_measure_error=final,
        early_stopped=result.early_stopped_segments > 0,
        matvecs=result.matvecs,
    )
