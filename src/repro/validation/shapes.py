"""Curve-shape checks: monotonicity, ordering, crossovers, thresholds.

The reproduction brief for this library is explicit that absolute numbers need
not match the paper's 2002 testbed, but the *shapes* must: who wins, by what
factor, and where crossovers fall.  The helpers in this module express those
shape claims as plain functions over numeric series so that benchmarks, tests
and EXPERIMENTS.md all rely on the same definitions.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = [
    "is_monotone",
    "curves_are_ordered",
    "crossover_points",
    "find_threshold_crossing",
    "relative_spread",
    "fraction_within_tolerance",
]


def is_monotone(
    values: Sequence[float], *, increasing: bool = True, tolerance: float = 0.0
) -> bool:
    """Return whether a series is monotone up to an absolute tolerance.

    Parameters
    ----------
    values:
        The series to check.
    increasing:
        Check for a non-decreasing (default) or non-increasing series.
    tolerance:
        Allowed violation per step (useful for noisy simulation output).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if len(values) < 2:
        return True
    for earlier, later in zip(values, values[1:]):
        if increasing and later < earlier - tolerance:
            return False
        if not increasing and later > earlier + tolerance:
            return False
    return True


def curves_are_ordered(
    curves: Sequence[Sequence[float]], *, tolerance: float = 0.0
) -> bool:
    """Return whether ``curves[0] <= curves[1] <= ...`` point-wise.

    Used for claims like "reserving more PDCHs lowers the loss probability at
    every arrival rate" (Figure 8): pass the curves from the lowest expected
    one upwards.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if len(curves) < 2:
        return True
    length = len(curves[0])
    if any(len(curve) != length for curve in curves):
        raise ValueError("all curves must have the same length")
    for lower, upper in zip(curves, curves[1:]):
        for a, b in zip(lower, upper):
            if b < a - tolerance:
                return False
    return True


def crossover_points(
    x_values: Sequence[float], first: Sequence[float], second: Sequence[float]
) -> list[float]:
    """Return the x positions where two curves cross (linear interpolation).

    A touching point (equality) is reported once; parallel identical segments
    are not reported.
    """
    if not (len(x_values) == len(first) == len(second)):
        raise ValueError("all series must have the same length")
    crossings: list[float] = []
    for i in range(len(x_values) - 1):
        difference_left = first[i] - second[i]
        difference_right = first[i + 1] - second[i + 1]
        if difference_left == 0.0:
            if not crossings or crossings[-1] != x_values[i]:
                crossings.append(float(x_values[i]))
            continue
        if difference_left * difference_right < 0:
            # Linear interpolation of the sign change.
            fraction = abs(difference_left) / (abs(difference_left) + abs(difference_right))
            crossings.append(
                float(x_values[i] + fraction * (x_values[i + 1] - x_values[i]))
            )
    if len(x_values) >= 1 and first[-1] == second[-1]:
        if not crossings or crossings[-1] != x_values[-1]:
            crossings.append(float(x_values[-1]))
    return crossings


def find_threshold_crossing(
    x_values: Sequence[float],
    values: Sequence[float],
    threshold: float,
    *,
    from_above: bool = True,
) -> float | None:
    """Return the first x at which a curve crosses a threshold.

    Parameters
    ----------
    from_above:
        ``True`` finds the first point where the curve drops *below* the
        threshold (e.g. "the arrival rate at which the per-user throughput
        falls below 50% of its unloaded value"); ``False`` finds the first
        point where it rises above it (e.g. "the load at which the blocking
        probability exceeds 1%").

    Returns ``None`` when the curve never crosses.  Linear interpolation is
    used between grid points.
    """
    if len(x_values) != len(values):
        raise ValueError("x_values and values must have the same length")
    for i, value in enumerate(values):
        crossed = value < threshold if from_above else value > threshold
        if crossed:
            if i == 0:
                return float(x_values[0])
            x0, x1 = x_values[i - 1], x_values[i]
            y0, y1 = values[i - 1], values[i]
            if y1 == y0:
                return float(x1)
            fraction = (threshold - y0) / (y1 - y0)
            fraction = min(max(fraction, 0.0), 1.0)
            return float(x0 + fraction * (x1 - x0))
    return None


def relative_spread(curves: Sequence[Sequence[float]]) -> float:
    """Return the largest point-wise relative spread between several curves.

    Used for claims like "the carried data traffic is nearly the same whether
    1, 2 or 4 PDCHs are reserved" (Figure 7): the spread is
    ``(max - min) / max`` evaluated at every x and the largest value is
    returned (0 means the curves coincide).
    """
    if len(curves) < 2:
        return 0.0
    length = len(curves[0])
    if any(len(curve) != length for curve in curves):
        raise ValueError("all curves must have the same length")
    worst = 0.0
    for i in range(length):
        column = [curve[i] for curve in curves]
        largest = max(column)
        smallest = min(column)
        if largest > 0:
            worst = max(worst, (largest - smallest) / largest)
    return worst


def fraction_within_tolerance(
    first: Sequence[float], second: Sequence[float], *, relative_tolerance: float
) -> float:
    """Return the fraction of points where two curves agree within a relative tolerance."""
    if len(first) != len(second):
        raise ValueError("both curves must have the same length")
    if relative_tolerance < 0:
        raise ValueError("relative_tolerance must be non-negative")
    if not first:
        return 1.0
    within = 0
    for a, b in zip(first, second):
        scale = max(abs(a), abs(b))
        if scale == 0.0 or abs(a - b) <= relative_tolerance * scale:
            within += 1
    return within / len(first)
