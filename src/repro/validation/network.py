"""Network-level validation: the homogeneity anchor.

The multi-cell model of :mod:`repro.network` must collapse onto the paper's
single-cell model whenever its premises collapse onto the paper's: a uniform
network (no per-cell overrides) on doubly stochastic routing satisfies the
homogeneity assumption of Eqs. (4)-(5) in every cell, so every cell's
balanced handover rates and performance measures must match a plain
:class:`~repro.core.model.GprsMarkovModel` solve.  This check quantifies that
agreement; the test suite and the network CI smoke job assert it to 1e-8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.network.model import NetworkModel
from repro.network.topology import CellTopology, hexagonal_cluster

__all__ = ["HomogeneityCheck", "check_network_homogeneity"]


@dataclass(frozen=True)
class HomogeneityCheck:
    """Worst-case deviation of a uniform network from the single-cell model."""

    cells: int
    tolerance: float
    worst_rate_error: float
    worst_measure_error: float
    worst_measure: str

    @property
    def passed(self) -> bool:
        return (
            self.worst_rate_error <= self.tolerance
            and self.worst_measure_error <= self.tolerance
        )

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"homogeneity anchor ({self.cells} cells): {status} -- "
            f"worst handover-rate error {self.worst_rate_error:.2e}, worst "
            f"measure error {self.worst_measure_error:.2e} "
            f"({self.worst_measure}) vs. tolerance {self.tolerance:.0e}"
        )


def check_network_homogeneity(
    params: GprsModelParameters,
    *,
    topology: CellTopology | None = None,
    tolerance: float = 1e-8,
    solver_method: str = "auto",
    jobs: int = 1,
) -> HomogeneityCheck:
    """Compare a uniform network against the paper's single-cell fixed point.

    ``topology`` defaults to the seven-cell wrap-around cluster; it must be
    homogeneous (no overrides) and doubly stochastic, otherwise the anchor
    premise does not hold and a ``ValueError`` is raised.
    """
    topology = topology if topology is not None else hexagonal_cluster(7)
    if not topology.is_homogeneous():
        raise ValueError("the homogeneity anchor needs a topology without overrides")
    if not topology.is_doubly_stochastic():
        raise ValueError(
            "the homogeneity anchor needs doubly stochastic routing "
            "(wrap-around cluster, ring or torus grid)"
        )

    single = GprsMarkovModel(params, solver_method=solver_method).solve()
    network = NetworkModel(
        topology, params, solver_method=solver_method, jobs=jobs
    ).solve()

    reference = single.measures.as_dict()
    worst_rate = 0.0
    worst_measure = 0.0
    worst_key = "none"
    for cell in network.cells:
        worst_rate = max(
            worst_rate,
            abs(cell.gsm_incoming_rate - single.handover.gsm_handover_arrival_rate),
            abs(cell.gprs_incoming_rate - single.handover.gprs_handover_arrival_rate),
        )
        values = cell.measures.as_dict()
        for key, value in reference.items():
            error = abs(values[key] - value)
            if error > worst_measure:
                worst_measure = error
                worst_key = key
    return HomogeneityCheck(
        cells=topology.number_of_cells,
        tolerance=tolerance,
        worst_rate_error=worst_rate,
        worst_measure_error=worst_measure,
        worst_measure=worst_key,
    )
