"""Regeneration of the parameter tables of the paper (Tables 2 and 3).

These tables do not require any computation -- they document the base
parameter setting and the three traffic models -- but regenerating them from
the library guarantees that the values hard-wired into the code match the
paper and gives the benchmark harness something concrete to check.
"""

from __future__ import annotations

from repro.core.parameters import GprsModelParameters
from repro.traffic.presets import TRAFFIC_MODELS

__all__ = ["table2", "table3"]


def table2() -> dict[str, float | str]:
    """Return the base parameter setting of the Markov model (Table 2).

    The values are produced by the same :class:`~repro.core.parameters.GprsModelParameters`
    defaults every experiment uses, so any drift between code and paper shows
    up as a failing benchmark assertion.
    """
    params = GprsModelParameters(total_call_arrival_rate=0.0)
    description = params.describe()
    return {
        "Number of physical channels, N": description["number of physical channels N"],
        "Number of fixed PDCHs, N_GPRS": description["number of fixed PDCHs N_GPRS"],
        "BSC buffer size, K [data packets]": description["BSC buffer size K [packets]"],
        "Transfer rate for one PDCH (CS-2) [kbit/s]": description[
            "transfer rate for one PDCH [kbit/s]"
        ],
        "Average GSM voice call duration, 1/mu_GSM [s]": description[
            "average GSM voice call duration 1/mu_GSM [s]"
        ],
        "Average GSM voice call dwell time, 1/mu_h,GSM [s]": description[
            "average GSM voice call dwell time 1/mu_h,GSM [s]"
        ],
        "Average GPRS session dwell time, 1/mu_h,GPRS [s]": description[
            "average GPRS session dwell time 1/mu_h,GPRS [s]"
        ],
        "Percentage of GSM users": description["percentage of GSM users"],
        "Percentage of GPRS users": description["percentage of GPRS users"],
    }


def table3() -> dict[str, dict[str, float]]:
    """Return the parameter setting of the three traffic models (Table 3).

    The returned mapping has one entry per traffic model ("traffic model 1"
    .. "traffic model 3") whose value is the corresponding column of Table 3.
    """
    table: dict[str, dict[str, float]] = {}
    for number, preset in sorted(TRAFFIC_MODELS.items()):
        row = preset.describe()
        table[f"traffic model {number}"] = {
            "Maximum number of active GPRS sessions, M": row[
                "max active GPRS sessions M"
            ],
            "Average GPRS session duration, 1/mu_GPRS [s]": row[
                "average GPRS session duration 1/mu_GPRS [s]"
            ],
            "Average arrival rate of data packets [kbit/s]": row[
                "average arrival rate of data packets [kbit/s]"
            ],
            "Average duration of a packet call, 1/a [s]": row[
                "average duration of a packet call 1/a [s]"
            ],
            "Average reading time between packet calls, 1/b [s]": row[
                "average reading time between packet calls 1/b [s]"
            ],
        }
    return table
