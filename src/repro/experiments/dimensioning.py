"""PDCH dimensioning and adaptive channel allocation.

The conclusion of the paper states that the number of reserved PDCHs is a
trade-off between GSM and GPRS performance, that the model's curves "give
valuable hints for network designers on how many PDCHs should be allocated",
and that *future work* will consider "the dynamic adjustment of the number of
PDCHs with respect to the current GSM and GPRS traffic load and the desired
performance requirements" (adaptive performance management).

This module turns both of those into an API:

* :class:`QosProfile` -- the operator's requirements (maximum per-user
  throughput degradation, maximum voice blocking probability, optional packet
  loss and delay limits);
* :func:`evaluate_configuration` -- check a single configuration against a
  profile;
* :func:`maximum_supported_arrival_rate` -- the largest call arrival rate a
  given reservation level can sustain (the numbers quoted in Section 5.3 and
  the conclusions);
* :func:`recommend_reserved_pdch` -- the smallest number of reserved PDCHs
  that satisfies the profile at a target arrival rate;
* :class:`AdaptivePdchController` -- the future-work feature: a controller
  that, given observed GSM/GPRS load, re-dimensions the number of reserved
  PDCHs on the fly using the analytical model as its decision engine.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.measures import GprsPerformanceMeasures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters

__all__ = [
    "QosProfile",
    "QosAssessment",
    "evaluate_configuration",
    "maximum_supported_arrival_rate",
    "recommend_reserved_pdch",
    "AdaptivePdchController",
    "AllocationDecision",
]


@dataclass(frozen=True)
class QosProfile:
    """Quality-of-service requirements of the network operator.

    Parameters
    ----------
    max_throughput_degradation:
        Largest tolerated relative drop of the per-user throughput compared to
        the unloaded cell (the paper's example uses 0.5, i.e. "at most 50%
        degradation").
    max_voice_blocking:
        Largest tolerated GSM voice blocking probability.
    max_packet_loss:
        Optional limit on the packet loss probability (``None`` = don't care).
    max_queueing_delay_s:
        Optional limit on the mean queueing delay in seconds.
    """

    max_throughput_degradation: float = 0.5
    max_voice_blocking: float = 0.02
    max_packet_loss: float | None = None
    max_queueing_delay_s: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_throughput_degradation < 1.0:
            raise ValueError("max_throughput_degradation must be in [0, 1)")
        if not 0.0 < self.max_voice_blocking <= 1.0:
            raise ValueError("max_voice_blocking must be in (0, 1]")
        if self.max_packet_loss is not None and not 0.0 <= self.max_packet_loss <= 1.0:
            raise ValueError("max_packet_loss must be in [0, 1]")
        if self.max_queueing_delay_s is not None and self.max_queueing_delay_s <= 0:
            raise ValueError("max_queueing_delay_s must be positive")


@dataclass(frozen=True)
class QosAssessment:
    """Result of checking one configuration against a :class:`QosProfile`."""

    satisfied: bool
    throughput_degradation: float
    reference_throughput_kbit_s: float
    measures: GprsPerformanceMeasures
    violated_criteria: tuple[str, ...]


def _reference_throughput(
    parameters: GprsModelParameters, *, solver: str, reference_arrival_rate: float
) -> float:
    """Per-user throughput of an almost unloaded cell (the 100% reference)."""
    unloaded = parameters.with_arrival_rate(reference_arrival_rate)
    return GprsMarkovModel(unloaded, solver_method=solver).measures().throughput_per_user_kbit_s


def evaluate_configuration(
    parameters: GprsModelParameters,
    profile: QosProfile,
    *,
    solver: str = "auto",
    reference_arrival_rate: float = 0.01,
    reference_throughput_kbit_s: float | None = None,
) -> QosAssessment:
    """Check whether a configuration satisfies a QoS profile.

    Parameters
    ----------
    parameters:
        The configuration to check (its arrival rate is the operating point).
    profile:
        The operator requirements.
    solver:
        Steady-state solver for the analytical model.
    reference_arrival_rate:
        Arrival rate used to define the "unloaded" per-user throughput against
        which the degradation is measured.
    reference_throughput_kbit_s:
        Pre-computed reference throughput (skips one model solution when
        sweeping many operating points for the same cell configuration).
    """
    if reference_throughput_kbit_s is None:
        reference_throughput_kbit_s = _reference_throughput(
            parameters, solver=solver, reference_arrival_rate=reference_arrival_rate
        )
    measures = GprsMarkovModel(parameters, solver_method=solver).measures()
    if reference_throughput_kbit_s > 0:
        degradation = 1.0 - measures.throughput_per_user_kbit_s / reference_throughput_kbit_s
    else:
        degradation = 0.0
    degradation = max(0.0, degradation)

    violations: list[str] = []
    if degradation > profile.max_throughput_degradation:
        violations.append("throughput degradation")
    if measures.voice_blocking_probability > profile.max_voice_blocking:
        violations.append("voice blocking")
    if (
        profile.max_packet_loss is not None
        and measures.packet_loss_probability > profile.max_packet_loss
    ):
        violations.append("packet loss")
    if (
        profile.max_queueing_delay_s is not None
        and measures.queueing_delay > profile.max_queueing_delay_s
    ):
        violations.append("queueing delay")

    return QosAssessment(
        satisfied=not violations,
        throughput_degradation=degradation,
        reference_throughput_kbit_s=reference_throughput_kbit_s,
        measures=measures,
        violated_criteria=tuple(violations),
    )


def maximum_supported_arrival_rate(
    parameters: GprsModelParameters,
    profile: QosProfile,
    arrival_rates: Iterable[float],
    *,
    solver: str = "auto",
) -> float:
    """Return the largest swept arrival rate at which the profile still holds.

    Returns 0.0 if even the smallest rate violates the profile.  The sweep is
    assumed to be sorted in increasing order; evaluation stops at the first
    violation (performance degrades monotonically with load in this model).
    """
    rates = sorted(float(rate) for rate in arrival_rates)
    if not rates:
        raise ValueError("at least one arrival rate is required")
    reference = _reference_throughput(parameters, solver=solver, reference_arrival_rate=0.01)
    supported = 0.0
    for rate in rates:
        assessment = evaluate_configuration(
            parameters.with_arrival_rate(rate),
            profile,
            solver=solver,
            reference_throughput_kbit_s=reference,
        )
        if assessment.satisfied:
            supported = rate
        else:
            break
    return supported


def recommend_reserved_pdch(
    parameters: GprsModelParameters,
    profile: QosProfile,
    target_arrival_rate: float,
    *,
    candidate_reservations: Sequence[int] = (0, 1, 2, 3, 4, 6, 8),
    solver: str = "auto",
) -> int | None:
    """Return the smallest PDCH reservation satisfying the profile at the target load.

    Returns ``None`` when no candidate satisfies the profile (the paper's
    recommendation in that situation is to tighten call admission instead).
    """
    for reserved in sorted(set(candidate_reservations)):
        if reserved >= parameters.number_of_channels:
            continue
        candidate = parameters.replace(
            reserved_pdch=reserved, total_call_arrival_rate=target_arrival_rate
        )
        if evaluate_configuration(candidate, profile, solver=solver).satisfied:
            return reserved
    return None


@dataclass(frozen=True)
class AllocationDecision:
    """One decision of the adaptive controller."""

    observed_arrival_rate: float
    reserved_pdch: int
    satisfied: bool
    assessment: QosAssessment


class AdaptivePdchController:
    """Adaptive adjustment of the number of reserved PDCHs (the paper's future work).

    The controller watches the offered call arrival rate (e.g. estimated from
    recent admissions) and uses the analytical model to pick, for every
    observation, the smallest PDCH reservation that meets the QoS profile.  A
    hysteresis margin avoids flapping between two adjacent reservations when
    the load sits exactly at a boundary.

    Parameters
    ----------
    base_parameters:
        Cell configuration; its ``reserved_pdch`` field is the initial
        allocation.
    profile:
        The QoS profile to enforce.
    candidate_reservations:
        Reservation levels the controller may choose from.
    hysteresis:
        Relative load change (e.g. 0.05 = 5%) below which the controller keeps
        its previous decision instead of re-optimising.
    """

    def __init__(
        self,
        base_parameters: GprsModelParameters,
        profile: QosProfile,
        *,
        candidate_reservations: Sequence[int] = (0, 1, 2, 3, 4, 6, 8),
        hysteresis: float = 0.05,
        solver: str = "auto",
    ) -> None:
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self._parameters = base_parameters
        self._profile = profile
        self._candidates = tuple(sorted(set(candidate_reservations)))
        self._hysteresis = hysteresis
        self._solver = solver
        self._current_reserved = base_parameters.reserved_pdch
        self._last_rate: float | None = None
        self._history: list[AllocationDecision] = []

    @property
    def current_reserved_pdch(self) -> int:
        """The reservation currently in force."""
        return self._current_reserved

    @property
    def history(self) -> list[AllocationDecision]:
        """All decisions taken so far (most recent last)."""
        return list(self._history)

    def observe(self, arrival_rate: float) -> AllocationDecision:
        """Feed one load observation and return the (possibly unchanged) decision."""
        if arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if (
            self._last_rate is not None
            and self._last_rate > 0
            and abs(arrival_rate - self._last_rate) <= self._hysteresis * self._last_rate
            and self._history
        ):
            # Within the hysteresis band: keep the previous allocation.
            previous = self._history[-1]
            decision = AllocationDecision(
                observed_arrival_rate=arrival_rate,
                reserved_pdch=previous.reserved_pdch,
                satisfied=previous.satisfied,
                assessment=previous.assessment,
            )
            self._history.append(decision)
            return decision

        recommended = recommend_reserved_pdch(
            self._parameters,
            self._profile,
            arrival_rate,
            candidate_reservations=self._candidates,
            solver=self._solver,
        )
        if recommended is None:
            # No reservation satisfies the profile: fall back to the largest
            # candidate (best effort) and report the violation.
            reserved = max(
                candidate
                for candidate in self._candidates
                if candidate < self._parameters.number_of_channels
            )
            satisfied = False
        else:
            reserved = recommended
            satisfied = True
        assessment = evaluate_configuration(
            self._parameters.replace(
                reserved_pdch=reserved, total_call_arrival_rate=max(arrival_rate, 1e-6)
            ),
            self._profile,
            solver=self._solver,
        )
        decision = AllocationDecision(
            observed_arrival_rate=arrival_rate,
            reserved_pdch=reserved,
            satisfied=satisfied,
            assessment=assessment,
        )
        self._current_reserved = reserved
        self._last_rate = arrival_rate
        self._history.append(decision)
        return decision

    def run(self, arrival_rates: Iterable[float]) -> list[AllocationDecision]:
        """Feed a whole sequence of load observations and return all decisions."""
        return [self.observe(rate) for rate in arrival_rates]
