"""Regeneration of every figure of the paper's evaluation section (Figs. 5-15).

Each ``figureN`` function reproduces the corresponding figure as data: it
sweeps the GSM/GPRS call arrival rate for every curve shown in the paper and
returns a :class:`FigureResult` whose series carry the same labels as the
original legend.  Figures 5 and 6 (the validation experiments) can in addition
run the network-level simulator and attach simulation means and confidence
half-widths to the result.

The functions accept an :class:`~repro.experiments.scale.ExperimentScale` so
that the same code serves three purposes: quick smoke tests, the CI benchmark
harness (scaled sizes), and full-fidelity paper reproduction.

The analytical sweeps run through the scenario runtime
(:mod:`repro.runtime`): wrapping a figure call in
:func:`repro.runtime.executor.execution_options` (as ``run_experiment`` and
the CLI ``--jobs``/``--no-cache`` flags do) shards every curve's sweep across
worker processes and serves previously solved points from the
content-addressed result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import GprsModelParameters
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import sweep_arrival_rates
from repro.simulator.config import SimulationConfig, TcpConfig
from repro.simulator.simulation import GprsNetworkSimulator
from repro.traffic.presets import TRAFFIC_MODEL_1, TRAFFIC_MODEL_2, TRAFFIC_MODEL_3

__all__ = [
    "FigureSeries",
    "FigureResult",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
]


@dataclass(frozen=True)
class FigureSeries:
    """One labelled curve of a figure.

    Attributes
    ----------
    label:
        Legend label, matching the paper (e.g. ``"2 reserved PDCHs"``).
    arrival_rates:
        The x axis: GSM/GPRS call arrival rates in calls per second.
    values:
        Mapping from metric name to the y values of this curve.
    half_widths:
        Optional mapping from metric name to 95% confidence half-widths
        (only present for simulation series).
    """

    label: str
    arrival_rates: tuple[float, ...]
    values: dict[str, tuple[float, ...]]
    half_widths: dict[str, tuple[float, ...]] = field(default_factory=dict)

    def metric(self, name: str) -> tuple[float, ...]:
        """Return the series of one metric."""
        return self.values[name]


@dataclass(frozen=True)
class FigureResult:
    """All curves of one reproduced figure."""

    figure: str
    description: str
    metrics: tuple[str, ...]
    series: tuple[FigureSeries, ...]

    def labels(self) -> tuple[str, ...]:
        return tuple(series.label for series in self.series)

    def get(self, label: str) -> FigureSeries:
        """Return the series with the given label."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"figure {self.figure} has no series labelled {label!r}")


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _base_parameters(
    preset,
    scale: ExperimentScale,
    *,
    gprs_fraction: float = 0.05,
    reserved_pdch: int = 1,
    max_sessions: int | None = None,
    tcp_threshold: float = 0.7,
) -> GprsModelParameters:
    """Build model parameters for one curve from a traffic preset and the scale."""
    sessions = max_sessions if max_sessions is not None else (
        scale.effective_max_sessions(preset.max_active_sessions)
    )
    return GprsModelParameters.from_traffic_model(
        preset,
        total_call_arrival_rate=scale.arrival_rates[0],
        gprs_fraction=gprs_fraction,
        reserved_pdch=reserved_pdch,
        buffer_size=scale.effective_buffer_size(100),
        max_gprs_sessions=sessions,
        tcp_threshold=tcp_threshold,
    )


def _analytical_series(
    label: str,
    params: GprsModelParameters,
    scale: ExperimentScale,
    metrics: tuple[str, ...],
) -> FigureSeries:
    """Sweep the analytical model and package the requested metrics.

    The sweep inherits the ambient execution options (worker processes and
    result cache) installed via
    :func:`repro.runtime.executor.execution_options`.
    """
    sweep = sweep_arrival_rates(params, scale.arrival_rates, solver=scale.solver)
    return FigureSeries(
        label=label,
        arrival_rates=sweep.arrival_rates,
        values={metric: sweep.series(metric) for metric in metrics},
    )


_SIMULATION_METRIC_NAMES = {
    "carried_data_traffic": "carried_data_traffic",
    "packet_loss_probability": "packet_loss_probability",
    "queueing_delay": "queueing_delay",
    "throughput_per_user": "throughput_per_user",
    "throughput_per_user_kbit_s": "throughput_per_user_kbit_s",
    "carried_voice_traffic": "carried_voice_traffic",
    "voice_blocking_probability": "voice_blocking_probability",
    "average_gprs_sessions": "average_gprs_sessions",
    "gprs_blocking_probability": "gprs_blocking_probability",
    "mean_queue_length": "mean_queue_length",
}


def _simulation_series(
    label: str,
    params: GprsModelParameters,
    scale: ExperimentScale,
    metrics: tuple[str, ...],
    *,
    tcp_enabled: bool = True,
    seed: int = 20020527,
) -> FigureSeries:
    """Run the network simulator at every arrival rate and package the metrics."""
    values: dict[str, list[float]] = {metric: [] for metric in metrics}
    half_widths: dict[str, list[float]] = {metric: [] for metric in metrics}
    for rate in scale.arrival_rates:
        config = SimulationConfig(
            cell_parameters=params.with_arrival_rate(rate),
            number_of_cells=scale.simulation_cells,
            simulation_time_s=scale.simulation_time_s,
            warmup_time_s=scale.simulation_warmup_s,
            batches=scale.simulation_batches,
            seed=seed,
            tcp=TcpConfig(enabled=tcp_enabled),
        )
        results = GprsNetworkSimulator(config).run()
        for metric in metrics:
            interval = results.interval(_SIMULATION_METRIC_NAMES[metric])
            values[metric].append(interval.mean)
            half_widths[metric].append(interval.half_width)
    return FigureSeries(
        label=label,
        arrival_rates=scale.arrival_rates,
        values={metric: tuple(series) for metric, series in values.items()},
        half_widths={metric: tuple(series) for metric, series in half_widths.items()},
    )


# --------------------------------------------------------------------------- #
# Figure 5: calibration of the TCP threshold eta
# --------------------------------------------------------------------------- #
def figure5(
    scale: ExperimentScale | None = None,
    *,
    thresholds: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 1.0),
    include_simulation: bool = False,
) -> FigureResult:
    """Packet loss probability for different TCP thresholds ``eta`` (traffic model 3).

    The paper uses this experiment to calibrate the threshold approximation of
    TCP flow control against the detailed simulator: ``eta = 1`` (no flow
    control) drives the loss probability towards one, small ``eta`` throttles
    too early, and ``eta ~ 0.7`` tracks the simulation best.
    """
    scale = scale or ExperimentScale.default()
    metrics = ("packet_loss_probability",)
    series = []
    for eta in thresholds:
        params = _base_parameters(TRAFFIC_MODEL_3, scale, tcp_threshold=eta)
        series.append(
            _analytical_series(f"Markov model, eta = {eta:g}", params, scale, metrics)
        )
    if include_simulation:
        params = _base_parameters(TRAFFIC_MODEL_3, scale)
        series.append(
            _simulation_series("simulation (TCP)", params, scale, metrics)
        )
    return FigureResult(
        figure="figure5",
        description="Calibrating the threshold eta to represent TCP flow control",
        metrics=metrics,
        series=tuple(series),
    )


# --------------------------------------------------------------------------- #
# Figure 6: validation of CDT and ATU against the simulator
# --------------------------------------------------------------------------- #
def figure6(
    scale: ExperimentScale | None = None,
    *,
    gprs_fractions: tuple[float, ...] = (0.02, 0.05, 0.10),
    include_simulation: bool = False,
) -> FigureResult:
    """Carried data traffic and throughput per user, Markov model vs. simulator.

    Traffic model 3 with one reserved PDCH; one pair of curves per GPRS user
    percentage (2%, 5%, 10%).
    """
    scale = scale or ExperimentScale.default()
    metrics = ("carried_data_traffic", "throughput_per_user_kbit_s")
    series = []
    for fraction in gprs_fractions:
        params = _base_parameters(TRAFFIC_MODEL_3, scale, gprs_fraction=fraction)
        series.append(
            _analytical_series(
                f"Markov model, {fraction:.0%} GPRS users", params, scale, metrics
            )
        )
        if include_simulation:
            series.append(
                _simulation_series(
                    f"simulation, {fraction:.0%} GPRS users", params, scale, metrics
                )
            )
    return FigureResult(
        figure="figure6",
        description="Validation of numerical results with the detailed simulator "
        "(1 reserved PDCH, traffic model 3)",
        metrics=metrics,
        series=tuple(series),
    )


# --------------------------------------------------------------------------- #
# Figures 7-9: traffic models 1 and 2 with 1 / 2 / 4 reserved PDCHs
# --------------------------------------------------------------------------- #
def _reserved_pdch_comparison(
    figure: str,
    description: str,
    metrics: tuple[str, ...],
    scale: ExperimentScale,
    reserved: tuple[int, ...] = (1, 2, 4),
) -> FigureResult:
    series = []
    for preset in (TRAFFIC_MODEL_1, TRAFFIC_MODEL_2):
        for pdch in reserved:
            params = _base_parameters(preset, scale, reserved_pdch=pdch)
            series.append(
                _analytical_series(
                    f"traffic model {preset.number}, {pdch} reserved PDCH",
                    params,
                    scale,
                    metrics,
                )
            )
    return FigureResult(figure=figure, description=description, metrics=metrics,
                        series=tuple(series))


def figure7(scale: ExperimentScale | None = None) -> FigureResult:
    """Carried data traffic for traffic models 1 and 2 with 1, 2 and 4 reserved PDCHs."""
    return _reserved_pdch_comparison(
        "figure7",
        "Carried data traffic (CDT) for traffic model 1 (left) and 2 (right)",
        ("carried_data_traffic",),
        scale or ExperimentScale.default(),
    )


def figure8(scale: ExperimentScale | None = None) -> FigureResult:
    """Packet loss probability for traffic models 1 and 2 with 1, 2 and 4 reserved PDCHs."""
    return _reserved_pdch_comparison(
        "figure8",
        "Packet loss probability (PLP) for traffic model 1 (left) and 2 (right)",
        ("packet_loss_probability",),
        scale or ExperimentScale.default(),
    )


def figure9(scale: ExperimentScale | None = None) -> FigureResult:
    """Queueing delay for traffic models 1 and 2 with 1, 2 and 4 reserved PDCHs."""
    return _reserved_pdch_comparison(
        "figure9",
        "Queueing delay (QD) for traffic model 1 (left) and 2 (right)",
        ("queueing_delay",),
        scale or ExperimentScale.default(),
    )


# --------------------------------------------------------------------------- #
# Figure 10: impact of the session limit M
# --------------------------------------------------------------------------- #
def figure10(
    scale: ExperimentScale | None = None,
    *,
    session_limits: tuple[int, ...] = (50, 100, 150),
    reserved_pdch: int = 2,
) -> FigureResult:
    """Carried data traffic and GPRS session blocking for M = 50, 100, 150.

    Traffic model 1 with two reserved PDCHs.  With the scaled preset the three
    session limits are scaled proportionally (e.g. 10 / 20 / 30) so the
    qualitative effect -- raising M removes blocking while CDT stays below two
    PDCHs -- is preserved.
    """
    scale = scale or ExperimentScale.default()
    metrics = ("carried_data_traffic", "gprs_blocking_probability")
    series = []
    for limit in session_limits:
        scaled_limit = scale.scaled_session_limit(limit, paper_reference=50)
        params = _base_parameters(
            TRAFFIC_MODEL_1,
            scale,
            reserved_pdch=reserved_pdch,
            max_sessions=scaled_limit,
        )
        series.append(
            _analytical_series(
                f"M = {scaled_limit} (paper: {limit})", params, scale, metrics
            )
        )
    return FigureResult(
        figure="figure10",
        description="CDT and GPRS session blocking probability for different "
        "session limits M (traffic model 1, 2 reserved PDCHs)",
        metrics=metrics,
        series=tuple(series),
    )


# --------------------------------------------------------------------------- #
# Figures 11-13: CDT and throughput per user for 2% / 5% / 10% GPRS users
# --------------------------------------------------------------------------- #
def _gprs_share_figure(
    figure: str,
    gprs_fraction: float,
    scale: ExperimentScale,
    reserved: tuple[int, ...] = (0, 1, 2, 4),
) -> FigureResult:
    metrics = ("carried_data_traffic", "throughput_per_user_kbit_s")
    series = []
    for pdch in reserved:
        params = _base_parameters(
            TRAFFIC_MODEL_3, scale, gprs_fraction=gprs_fraction, reserved_pdch=pdch
        )
        series.append(
            _analytical_series(f"{pdch} reserved PDCH", params, scale, metrics)
        )
    return FigureResult(
        figure=figure,
        description=(
            f"CDT and throughput per user for {gprs_fraction:.0%} GPRS users "
            "(traffic model 3, 0/1/2/4 reserved PDCHs)"
        ),
        metrics=metrics,
        series=tuple(series),
    )


def figure11(scale: ExperimentScale | None = None) -> FigureResult:
    """CDT and throughput per user for 2% GPRS users (traffic model 3)."""
    return _gprs_share_figure("figure11", 0.02, scale or ExperimentScale.default())


def figure12(scale: ExperimentScale | None = None) -> FigureResult:
    """CDT and throughput per user for 5% GPRS users (traffic model 3)."""
    return _gprs_share_figure("figure12", 0.05, scale or ExperimentScale.default())


def figure13(scale: ExperimentScale | None = None) -> FigureResult:
    """CDT and throughput per user for 10% GPRS users (traffic model 3)."""
    return _gprs_share_figure("figure13", 0.10, scale or ExperimentScale.default())


# --------------------------------------------------------------------------- #
# Figure 14: influence of GPRS on the GSM voice service
# --------------------------------------------------------------------------- #
def figure14(
    scale: ExperimentScale | None = None,
    *,
    reserved: tuple[int, ...] = (0, 1, 2, 4),
) -> FigureResult:
    """Carried voice traffic and voice blocking probability for 0/1/2/4 reserved PDCHs.

    95% GSM users (base setting); shows that reserving PDCHs costs the voice
    service only a marginal increase in blocking probability.
    """
    scale = scale or ExperimentScale.default()
    metrics = ("carried_voice_traffic", "voice_blocking_probability")
    series = []
    for pdch in reserved:
        params = _base_parameters(TRAFFIC_MODEL_3, scale, reserved_pdch=pdch)
        series.append(
            _analytical_series(f"{pdch} reserved PDCH", params, scale, metrics)
        )
    return FigureResult(
        figure="figure14",
        description="Influence of GPRS on the GSM voice service (95% GSM calls)",
        metrics=metrics,
        series=tuple(series),
    )


# --------------------------------------------------------------------------- #
# Figure 15: average number of GPRS users and GPRS blocking probability
# --------------------------------------------------------------------------- #
def figure15(
    scale: ExperimentScale | None = None,
    *,
    gprs_fractions: tuple[float, ...] = (0.02, 0.05, 0.10),
) -> FigureResult:
    """Average number of GPRS users in the cell and GPRS session blocking probability.

    Traffic model 3 with one reserved PDCH; one curve per GPRS user percentage.
    """
    scale = scale or ExperimentScale.default()
    metrics = ("average_gprs_sessions", "gprs_blocking_probability")
    series = []
    for fraction in gprs_fractions:
        params = _base_parameters(TRAFFIC_MODEL_3, scale, gprs_fraction=fraction)
        series.append(
            _analytical_series(f"{fraction:.0%} GPRS users", params, scale, metrics)
        )
    return FigureResult(
        figure="figure15",
        description="Average number of GPRS users in the cell and GPRS user "
        "blocking probability (traffic model 3)",
        metrics=metrics,
        series=tuple(series),
    )
