"""Experiment registry and runner used by the command-line interface.

Every regenerable artefact of the paper -- Tables 2 and 3 and Figures 5 to 15
-- is registered here under its paper name so that ``gprs-repro run figure12``
(or ``python -m repro run figure12``) reproduces it without writing any code.

``run_experiment`` accepts ``jobs`` and ``cache`` and installs them as the
ambient execution options for the duration of the run, so every arrival-rate
sweep inside the experiment is sharded across worker processes and served
from the content-addressed result cache (see :mod:`repro.runtime`).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments import figures, tables
from repro.experiments.reporting import format_figure_result, format_table
from repro.experiments.scale import ExperimentScale
from repro.runtime.cache import ResultCache
from repro.runtime.executor import execution_options

__all__ = ["EXPERIMENTS", "run_experiment"]


def _run_table2(_: ExperimentScale) -> str:
    return format_table("Table 2: base parameter setting of the Markov model", tables.table2())


def _run_table3(_: ExperimentScale) -> str:
    blocks = []
    for name, rows in tables.table3().items():
        blocks.append(format_table(f"Table 3: {name}", rows))
    return "\n\n".join(blocks)


def _figure_runner(function: Callable[..., figures.FigureResult]) -> Callable[
    [ExperimentScale], str
]:
    def run(scale: ExperimentScale) -> str:
        return format_figure_result(function(scale))

    return run


#: Mapping from experiment name to a callable that runs it and returns text.
EXPERIMENTS: dict[str, Callable[[ExperimentScale], str]] = {
    "table2": _run_table2,
    "table3": _run_table3,
    "figure5": _figure_runner(figures.figure5),
    "figure6": _figure_runner(figures.figure6),
    "figure7": _figure_runner(figures.figure7),
    "figure8": _figure_runner(figures.figure8),
    "figure9": _figure_runner(figures.figure9),
    "figure10": _figure_runner(figures.figure10),
    "figure11": _figure_runner(figures.figure11),
    "figure12": _figure_runner(figures.figure12),
    "figure13": _figure_runner(figures.figure13),
    "figure14": _figure_runner(figures.figure14),
    "figure15": _figure_runner(figures.figure15),
}


def run_experiment(
    name: str,
    scale: ExperimentScale | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    warm: bool = True,
    chunk_size: int | None = None,
    retry=None,
    task_timeout: float | None = None,
    strict: bool = False,
    checkpoint=None,
) -> str:
    """Run one registered experiment by name and return its textual report.

    Parameters
    ----------
    name:
        One of the keys of :data:`EXPERIMENTS` (``"table2"`` ... ``"figure15"``).
    scale:
        Experiment scale; defaults to the CI-friendly scaled preset.
    jobs:
        Worker processes used for the arrival-rate sweeps (1 = serial).
    cache:
        Optional result cache consulted before, and filled after, each solve.
    warm:
        Enable sweep-aware incremental solving within chunks of adjacent
        arrival rates (``False`` = independent per-point solves).
    chunk_size:
        Points per warm-started chunk; ``None`` keeps the executor default.
    retry, task_timeout, strict, checkpoint:
        Resilience knobs installed as ambient execution options (see
        :mod:`repro.runtime.resilience`); a figure run treats any terminal
        per-point failure as fatal regardless of ``strict``, because its
        columns cannot carry holes.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from exc
    from repro.runtime.executor import DEFAULT_CHUNK_SIZE

    with execution_options(
        jobs=jobs,
        cache=cache,
        warm=warm,
        chunk_size=DEFAULT_CHUNK_SIZE if chunk_size is None else chunk_size,
        retry=retry,
        task_timeout=task_timeout,
        strict=strict,
        checkpoint=checkpoint,
    ):
        return runner(scale or ExperimentScale.default())
