"""Parameter sweeps of the analytical GPRS model.

Every figure of the paper plots one or more performance measures against the
GSM/GPRS call arrival rate.  :func:`sweep_arrival_rates` solves the analytical
model at each arrival rate of a sweep and returns the measures as columns, so
the figure functions only have to select which columns to plot.

Execution is delegated to the scenario runtime
(:mod:`repro.runtime.executor`): every sweep -- serial or parallel, cached or
not -- runs through the same chunked executor, so adjacent points share one
state space and generator template and warm-start each other's handover
balance and steady-state solve (disable with ``warm=False`` for A/B timing).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.measures import GprsPerformanceMeasures
from repro.core.parameters import GprsModelParameters

__all__ = ["SweepResult", "sweep_arrival_rates"]


@dataclass(frozen=True)
class SweepResult:
    """Result of sweeping the call arrival rate for one model configuration.

    Attributes
    ----------
    base_parameters:
        The configuration that was swept (arrival rate field is irrelevant).
    arrival_rates:
        The swept arrival rates (calls per second).
    measures:
        One :class:`~repro.core.measures.GprsPerformanceMeasures` per rate.
    """

    base_parameters: GprsModelParameters
    arrival_rates: tuple[float, ...]
    measures: tuple[GprsPerformanceMeasures, ...]

    def __len__(self) -> int:
        return len(self.arrival_rates)

    def series(self, metric: str) -> tuple[float, ...]:
        """Return one metric as a tuple aligned with ``arrival_rates``.

        ``metric`` is any attribute of
        :class:`~repro.core.measures.GprsPerformanceMeasures`, e.g.
        ``"carried_data_traffic"`` or ``"packet_loss_probability"``.
        """
        return tuple(getattr(measure, metric) for measure in self.measures)

    def as_table(self, metrics: Sequence[str]) -> list[dict[str, float]]:
        """Return the sweep as a list of row dictionaries (one per arrival rate)."""
        rows = []
        for rate, measure in zip(self.arrival_rates, self.measures):
            row = {"total_call_arrival_rate": rate}
            for metric in metrics:
                row[metric] = getattr(measure, metric)
            rows.append(row)
        return rows


def sweep_arrival_rates(
    base_parameters: GprsModelParameters,
    arrival_rates: Iterable[float],
    *,
    solver: str = "auto",
    solver_tol: float = 1e-9,
    jobs: int | None = None,
    cache="ambient",
    warm: bool | None = None,
    chunk_size: int | None = None,
) -> SweepResult:
    """Solve the analytical model at every arrival rate of the sweep.

    Parameters
    ----------
    base_parameters:
        Model configuration; its own arrival rate is replaced by each swept
        value in turn.
    arrival_rates:
        The call arrival rates (calls/s) to evaluate.
    solver, solver_tol:
        Passed to :class:`~repro.core.model.GprsMarkovModel`.
    jobs:
        Worker processes for the sweep; ``None`` takes the ambient
        :func:`repro.runtime.executor.execution_options` value (default 1).
    cache:
        A :class:`~repro.runtime.cache.ResultCache`, ``None`` to force an
        uncached sweep, or the default sentinel ``"ambient"`` to take the
        cache installed via ``execution_options`` (itself ``None`` unless
        installed) -- the same convention as
        :func:`repro.runtime.executor.run_sweep`.
    warm, chunk_size:
        Sweep-aware incremental solving knobs (``None`` = ambient values):
        with ``warm`` enabled, chunks of adjacent rates share one state space
        and generator template, and each point warm-starts from its
        predecessors' stationary vectors and handover rates.  ``warm=False``
        solves every point independently, exactly as a single
        :class:`~repro.core.model.GprsMarkovModel` run would.
    """
    rates = tuple(float(rate) for rate in arrival_rates)
    if not rates:
        raise ValueError("at least one arrival rate is required")

    # Imported lazily: repro.runtime depends on repro.experiments.scale, so a
    # module-level import here would tangle the package initialisation order.
    from repro.runtime.executor import current_options, sweep_measure_dicts

    options = current_options()
    solved = sweep_measure_dicts(
        base_parameters,
        rates,
        solver=solver,
        solver_tol=solver_tol,
        jobs=options.jobs if jobs is None else jobs,
        cache=options.cache if cache == "ambient" else cache,
        warm=options.warm if warm is None else warm,
        chunk_size=options.chunk_size if chunk_size is None else chunk_size,
        retry=options.retry,
        task_timeout=options.task_timeout,
        strict=options.strict,
        checkpoint=options.checkpoint,
    )
    failed = [index for index, (values, _) in enumerate(solved) if values is None]
    if failed:
        # A figure column cannot carry holes: any terminal per-point failure
        # (non-strict mode) aborts the figure with the indices named.
        raise RuntimeError(
            "sweep failed at arrival-rate point(s) "
            + ", ".join(str(index) for index in failed)
            + "; re-run (failed tasks are retried) or raise --max-attempts"
        )
    measures = [GprsPerformanceMeasures(**values) for values, _ in solved]
    return SweepResult(
        base_parameters=base_parameters,
        arrival_rates=rates,
        measures=tuple(measures),
    )
