"""Parameter sweeps of the analytical GPRS model.

Every figure of the paper plots one or more performance measures against the
GSM/GPRS call arrival rate.  :func:`sweep_arrival_rates` solves the analytical
model at each arrival rate of a sweep and returns the measures as columns, so
the figure functions only have to select which columns to plot.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.measures import GprsPerformanceMeasures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters

__all__ = ["SweepResult", "sweep_arrival_rates"]


@dataclass(frozen=True)
class SweepResult:
    """Result of sweeping the call arrival rate for one model configuration.

    Attributes
    ----------
    base_parameters:
        The configuration that was swept (arrival rate field is irrelevant).
    arrival_rates:
        The swept arrival rates (calls per second).
    measures:
        One :class:`~repro.core.measures.GprsPerformanceMeasures` per rate.
    """

    base_parameters: GprsModelParameters
    arrival_rates: tuple[float, ...]
    measures: tuple[GprsPerformanceMeasures, ...]

    def __len__(self) -> int:
        return len(self.arrival_rates)

    def series(self, metric: str) -> tuple[float, ...]:
        """Return one metric as a tuple aligned with ``arrival_rates``.

        ``metric`` is any attribute of
        :class:`~repro.core.measures.GprsPerformanceMeasures`, e.g.
        ``"carried_data_traffic"`` or ``"packet_loss_probability"``.
        """
        return tuple(getattr(measure, metric) for measure in self.measures)

    def as_table(self, metrics: Sequence[str]) -> list[dict[str, float]]:
        """Return the sweep as a list of row dictionaries (one per arrival rate)."""
        rows = []
        for rate, measure in zip(self.arrival_rates, self.measures):
            row = {"total_call_arrival_rate": rate}
            for metric in metrics:
                row[metric] = getattr(measure, metric)
            rows.append(row)
        return rows


def sweep_arrival_rates(
    base_parameters: GprsModelParameters,
    arrival_rates: Iterable[float],
    *,
    solver: str = "auto",
    solver_tol: float = 1e-9,
) -> SweepResult:
    """Solve the analytical model at every arrival rate of the sweep.

    Parameters
    ----------
    base_parameters:
        Model configuration; its own arrival rate is replaced by each swept
        value in turn.
    arrival_rates:
        The call arrival rates (calls/s) to evaluate.
    solver, solver_tol:
        Passed to :class:`~repro.core.model.GprsMarkovModel`.
    """
    rates = tuple(float(rate) for rate in arrival_rates)
    if not rates:
        raise ValueError("at least one arrival rate is required")
    measures = []
    for rate in rates:
        model = GprsMarkovModel(
            base_parameters.with_arrival_rate(rate),
            solver_method=solver,
            solver_tol=solver_tol,
        )
        measures.append(model.solve().measures)
    return SweepResult(
        base_parameters=base_parameters,
        arrival_rates=rates,
        measures=tuple(measures),
    )
