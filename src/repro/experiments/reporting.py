"""Plain-text rendering of experiment results.

The paper presents its results as figures; this repository regenerates them as
data and prints them as aligned text tables (one row per arrival rate, one
column per curve) plus optional CSV export, which is what the CLI and the
benchmark harness display.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping
from typing import TYPE_CHECKING

from repro.experiments.figures import FigureResult

if TYPE_CHECKING:
    from repro.network.sweep import NetworkSweepResult
    from repro.runtime.executor import ScenarioRunResult
    from repro.transient.sweep import TransientSweepResult

__all__ = [
    "format_table",
    "format_figure_result",
    "format_network_result",
    "format_scenario_result",
    "format_transient_result",
    "figure_result_to_csv",
]


def format_table(title: str, rows: Mapping[str, float | str], *, width: int = 58) -> str:
    """Render a ``{label: value}`` mapping as an aligned two-column text table."""
    lines = [title, "-" * max(len(title), 20)]
    for label, value in rows.items():
        if isinstance(value, float):
            rendered = f"{value:.6g}"
        else:
            rendered = str(value)
        lines.append(f"{label:<{width}} {rendered}")
    return "\n".join(lines)


def format_figure_result(result: FigureResult, *, precision: int = 5) -> str:
    """Render a :class:`~repro.experiments.figures.FigureResult` as text tables.

    One table is produced per metric; rows are arrival rates, columns are the
    labelled curves of the figure.  Simulation series additionally show their
    95% confidence half-width as ``value +/- half_width``.
    """
    blocks = [f"{result.figure}: {result.description}"]
    for metric in result.metrics:
        header = ["arrival rate"] + [series.label for series in result.series]
        rates = result.series[0].arrival_rates
        rows = []
        for index, rate in enumerate(rates):
            row = [f"{rate:.3g}"]
            for series in result.series:
                value = series.values[metric][index]
                if metric in series.half_widths:
                    half = series.half_widths[metric][index]
                    row.append(f"{value:.{precision}g} +/- {half:.2g}")
                else:
                    row.append(f"{value:.{precision}g}")
            rows.append(row)
        lines = [f"\n[{metric}]"]
        lines.extend(_format_aligned(header, rows))
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


def format_scenario_result(result: "ScenarioRunResult", *, precision: int = 5) -> str:
    """Render a scenario sweep as one aligned table (rows: rates, columns: metrics).

    The header records the scenario, how it was executed and how many points
    came from the result cache, so a pasted report is self-describing.
    """
    spec = result.spec
    lines = [
        f"{spec.name}: {spec.description}",
        f"solver={spec.solver}  points={len(result.points)}  "
        f"cache: {result.cache_hits} hit(s), {result.cache_misses} solved",
    ]
    failed = sum(1 for point in result.points if getattr(point, "failed", False))
    if failed:
        lines.append(f"WARNING: {failed} point(s) failed; rows marked FAILED")
    header = ["arrival rate", *spec.metrics]
    rows = []
    for point in result.points:
        if getattr(point, "failed", False):
            rows.append([f"{point.arrival_rate:.3g}"] + ["FAILED"] * len(spec.metrics))
            continue
        rows.append(
            [f"{point.arrival_rate:.3g}"]
            + [f"{point.values[metric]:.{precision}g}" for metric in spec.metrics]
        )
    lines.extend(_format_aligned(header, rows))
    return "\n".join(lines)


def _format_aligned(header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        for col in range(len(header))
    ]
    lines = ["  ".join(cell.ljust(width) for cell, width in zip(header, widths))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return lines


def format_network_result(result: "NetworkSweepResult", *, precision: int = 5) -> str:
    """Render a network sweep: one per-cell table per arrival rate.

    Every block shows the scenario's metrics plus the balanced incoming
    handover rates for each cell, a ``mean`` row (the network aggregates) and
    the convergence/warm-start accounting of the joint solve.
    """
    spec = result.spec
    topology = spec.network
    lines = [
        f"{spec.name}: {spec.description}",
        f"topology={topology.name}  cells={topology.number_of_cells}  "
        f"solver={spec.solver}  points={len(result.points)}  "
        f"cache: {result.cache_hits} hit(s), {result.cache_misses} solved",
    ]
    header = ["cell", *spec.metrics, "gsm handover in", "gprs handover in"]
    for point in result.points:
        payload = point.payload
        if payload is None:
            lines.append("")
            lines.append(f"[arrival rate {point.arrival_rate:.3g}]  FAILED")
            continue
        status = "converged" if payload["converged"] else "NOT converged"
        frozen = payload.get("frozen_solves", 0)
        pipelined = payload.get("pipelined_jobs", 0)
        origin = "cache" if point.from_cache else (
            f"{payload['solver_calls']} solver call(s), "
            f"{payload['cold_solves']} cold / "
            f"{payload['solver_calls'] - payload['cold_solves']} warm"
            + (f", {frozen} frozen" if frozen else "")
            + (f", {pipelined} pipelined" if pipelined else "")
        )
        lines.append("")
        lines.append(
            f"[arrival rate {point.arrival_rate:.3g}]  "
            f"outer iterations: {payload['outer_iterations']} ({status}), {origin}"
        )
        rows = []
        for cell in payload["cells"]:
            rows.append(
                [str(cell["index"])]
                + [f"{cell['values'][metric]:.{precision}g}" for metric in spec.metrics]
                + [
                    f"{cell['gsm_incoming_rate']:.{precision}g}",
                    f"{cell['gprs_incoming_rate']:.{precision}g}",
                ]
            )
        aggregates = payload["aggregates"]
        rows.append(
            ["mean"]
            + [f"{aggregates[metric]:.{precision}g}" for metric in spec.metrics]
            + [
                f"{aggregates['gsm_handover_arrival_rate']:.{precision}g}",
                f"{aggregates['gprs_handover_arrival_rate']:.{precision}g}",
            ]
        )
        lines.extend(_format_aligned(header, rows))
    return "\n".join(lines)


def format_transient_result(result: "TransientSweepResult", *, precision: int = 5) -> str:
    """Render a transient sweep: one trajectory table per base arrival rate.

    Every block shows the scenario's metrics over time (one row per sample,
    with the active schedule segment and effective load), a closing
    ``time avg`` row, and the solve accounting (matrix-vector products,
    template reuse, early-stopped segments).
    """
    spec = result.spec
    profile = spec.transient
    lines = [
        f"{spec.name}: {spec.description}",
        f"profile={profile.name}  duration={profile.total_duration_s:g}s  "
        f"segments={profile.schedule.number_of_segments}  "
        f"initial={profile.initial}  solver={spec.solver}  "
        f"cache: {result.cache_hits} hit(s), {result.cache_misses} solved",
    ]
    header = ["time [s]", "seg", "load", *spec.metrics]
    for point in result.points:
        payload = point.payload
        if payload is None:
            lines.append("")
            lines.append(f"[base arrival rate {point.arrival_rate:.3g}]  FAILED")
            continue
        replays = payload.get("propagator_hits", 0)
        origin = "cache" if point.from_cache else (
            f"{payload['matvecs']} matvec(s), "
            f"{payload['templates_built']} template(s) built, "
            f"{payload['early_stopped_segments']} early stop(s)"
            + (f", {replays} propagator replay(s)" if replays else "")
        )
        lines.append("")
        lines.append(f"[base arrival rate {point.arrival_rate:.3g}]  {origin}")
        rows = []
        for sample in payload["points"]:
            rows.append(
                [
                    f"{sample['time_s']:.4g}",
                    str(sample["segment"]),
                    f"{sample['arrival_rate']:.3g}",
                ]
                + [
                    f"{sample['values'][metric]:.{precision}g}"
                    for metric in spec.metrics
                ]
            )
        averages = payload["time_averages"]
        rows.append(
            ["time avg", "", ""]
            + [f"{averages[metric]:.{precision}g}" for metric in spec.metrics]
        )
        lines.extend(_format_aligned(header, rows))
    return "\n".join(lines)


def figure_result_to_csv(result: FigureResult) -> str:
    """Return the figure data as CSV (long format: figure, metric, label, rate, value)."""
    output = io.StringIO()
    writer = csv.writer(output)
    writer.writerow(["figure", "metric", "series", "arrival_rate", "value", "half_width"])
    for metric in result.metrics:
        for series in result.series:
            half_widths = series.half_widths.get(metric)
            for index, rate in enumerate(series.arrival_rates):
                writer.writerow(
                    [
                        result.figure,
                        metric,
                        series.label,
                        rate,
                        series.values[metric][index],
                        half_widths[index] if half_widths else "",
                    ]
                )
    return output.getvalue()
