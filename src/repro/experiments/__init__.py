"""Experiment harness: parameter sweeps and figure/table regeneration.

Every table and figure of the paper's evaluation section has a corresponding
function here:

* :func:`~repro.experiments.tables.table2` and
  :func:`~repro.experiments.tables.table3` -- the parameter tables,
* :func:`~repro.experiments.figures.figure5` ...
  :func:`~repro.experiments.figures.figure15` -- the performance curves.

All figure functions sweep the GSM/GPRS call arrival rate with the analytical
model (and optionally the network simulator for the validation figures 5 and
6) and return a :class:`~repro.experiments.figures.FigureResult` containing
one labelled series per curve of the original figure.  By default the sweeps
run at a *scaled* configuration (smaller BSC buffer and session cap, fewer
arrival-rate points) so that the complete benchmark suite finishes in CI time;
pass ``scale=ExperimentScale.paper()`` for the full Table 2 / Table 3 sizes.
"""

from repro.experiments.dimensioning import (
    AdaptivePdchController,
    AllocationDecision,
    QosAssessment,
    QosProfile,
    evaluate_configuration,
    maximum_supported_arrival_rate,
    recommend_reserved_pdch,
)
from repro.experiments.extensions import (
    AdaptiveComparison,
    GuardChannelTradeoff,
    LinkAdaptationPoint,
    adaptive_policy_comparison,
    arq_impact,
    guard_channel_tradeoff,
    link_adaptation_gain,
)
from repro.experiments.figures import (
    FigureResult,
    FigureSeries,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.reporting import format_figure_result, format_table
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.scale import ExperimentScale
from repro.experiments.sensitivity import (
    SensitivityResult,
    sweep_block_error_rate,
    sweep_buffer_size,
    sweep_coding_scheme,
    sweep_gprs_dwell_time,
    sweep_tcp_threshold,
)
from repro.experiments.sweep import SweepResult, sweep_arrival_rates
from repro.experiments.tables import table2, table3

__all__ = [
    "AdaptiveComparison",
    "AdaptivePdchController",
    "AllocationDecision",
    "EXPERIMENTS",
    "ExperimentScale",
    "GuardChannelTradeoff",
    "LinkAdaptationPoint",
    "QosAssessment",
    "QosProfile",
    "FigureResult",
    "FigureSeries",
    "SensitivityResult",
    "SweepResult",
    "adaptive_policy_comparison",
    "arq_impact",
    "guard_channel_tradeoff",
    "link_adaptation_gain",
    "sweep_block_error_rate",
    "sweep_buffer_size",
    "sweep_coding_scheme",
    "sweep_gprs_dwell_time",
    "sweep_tcp_threshold",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "format_figure_result",
    "format_table",
    "evaluate_configuration",
    "maximum_supported_arrival_rate",
    "recommend_reserved_pdch",
    "run_experiment",
    "sweep_arrival_rates",
    "table2",
    "table3",
]
