"""Extension experiments beyond the paper's evaluation section.

These experiments exercise the subsystems that implement the paper's stated
future work and the natural next questions of its analysis.  They are labelled
"beyond the paper" in EXPERIMENTS.md and have their own ablation benchmarks:

* :func:`arq_impact` -- the throughput cost of RLC retransmissions (the paper
  assumes an error-free link and defers this to future work);
* :func:`link_adaptation_gain` -- goodput of adaptive coding-scheme selection
  versus the fixed CS-2 of the paper, across link qualities;
* :func:`guard_channel_tradeoff` -- prioritising handover calls with guard
  channels: handover failure versus new-call blocking;
* :func:`adaptive_policy_comparison` -- the future-work question proper: a
  model-driven adaptive PDCH reservation against the best and worst static
  reservations over a daily load profile.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.parameters import GprsModelParameters
from repro.experiments.dimensioning import QosProfile
from repro.experiments.sensitivity import SensitivityResult, sweep_block_error_rate
from repro.queueing.guard_channel import GuardChannelSystem
from repro.radio.bler import block_error_rate
from repro.radio.link_adaptation import best_coding_scheme, goodput_kbit_s

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.adaptive.controller import PolicyEvaluation

# NOTE: repro.adaptive is imported lazily inside adaptive_policy_comparison().
# The adaptive package itself consumes repro.experiments.dimensioning, so a
# module-level import here would create an import cycle whenever repro.adaptive
# is imported before repro.experiments.

__all__ = [
    "AdaptiveComparison",
    "GuardChannelTradeoff",
    "LinkAdaptationPoint",
    "adaptive_policy_comparison",
    "arq_impact",
    "guard_channel_tradeoff",
    "link_adaptation_gain",
]


# --------------------------------------------------------------------------- #
# ARQ impact
# --------------------------------------------------------------------------- #
def arq_impact(
    base_parameters: GprsModelParameters,
    block_error_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    *,
    solver: str = "auto",
) -> SensitivityResult:
    """Return the model measures as the RLC block error rate grows.

    A thin named wrapper around
    :func:`repro.experiments.sensitivity.sweep_block_error_rate`, kept separate
    because it is an experiment of its own in EXPERIMENTS.md.
    """
    return sweep_block_error_rate(base_parameters, block_error_rates, solver=solver)


# --------------------------------------------------------------------------- #
# Link adaptation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LinkAdaptationPoint:
    """Goodput comparison at one carrier-to-interference ratio."""

    ci_db: float
    fixed_cs2_goodput_kbit_s: float
    adapted_scheme: str
    adapted_goodput_kbit_s: float

    @property
    def gain(self) -> float:
        """Relative goodput gain of link adaptation over fixed CS-2."""
        if self.fixed_cs2_goodput_kbit_s <= 0:
            return float("inf") if self.adapted_goodput_kbit_s > 0 else 0.0
        return self.adapted_goodput_kbit_s / self.fixed_cs2_goodput_kbit_s - 1.0


def link_adaptation_gain(
    ci_values_db: Sequence[float] = (2.0, 5.0, 8.0, 11.0, 14.0, 18.0, 24.0, 30.0),
) -> list[LinkAdaptationPoint]:
    """Compare adaptive coding-scheme selection against the paper's fixed CS-2."""
    points = []
    for ci in ci_values_db:
        fixed = goodput_kbit_s("CS-2", ci)
        scheme = best_coding_scheme(ci)
        points.append(
            LinkAdaptationPoint(
                ci_db=float(ci),
                fixed_cs2_goodput_kbit_s=fixed,
                adapted_scheme=scheme,
                adapted_goodput_kbit_s=goodput_kbit_s(scheme, ci),
            )
        )
    return points


# --------------------------------------------------------------------------- #
# Guard channels
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GuardChannelTradeoff:
    """Blocking/dropping trade-off for one guard-channel count."""

    guard_channels: int
    new_call_blocking: float
    handover_failure: float
    carried_traffic_erlangs: float


def guard_channel_tradeoff(
    base_parameters: GprsModelParameters,
    guard_channel_counts: Sequence[int] = (0, 1, 2, 3, 4),
    *,
    handover_fraction: float = 0.4,
) -> list[GuardChannelTradeoff]:
    """Evaluate handover prioritisation on the voice channels of the cell.

    The voice arrival stream of the base configuration is split into new calls
    and incoming handovers (``handover_fraction`` of the total, matching the
    1-2 handovers per call of the base setting), and the guard-channel loss
    system of :mod:`repro.queueing.guard_channel` is solved for every requested
    guard-channel count.
    """
    if not 0.0 <= handover_fraction < 1.0:
        raise ValueError("handover_fraction must be in [0, 1)")
    total_rate = base_parameters.gsm_arrival_rate / max(1.0 - handover_fraction, 1e-9)
    handover_rate = total_rate * handover_fraction
    service_rate = (
        base_parameters.gsm_completion_rate + base_parameters.gsm_handover_departure_rate
    )
    results = []
    for guard in guard_channel_counts:
        if guard > base_parameters.gsm_channels:
            continue
        system = GuardChannelSystem(
            new_call_rate=base_parameters.gsm_arrival_rate,
            handover_rate=handover_rate,
            service_rate=service_rate,
            servers=base_parameters.gsm_channels,
            guard_channels=int(guard),
        )
        results.append(
            GuardChannelTradeoff(
                guard_channels=int(guard),
                new_call_blocking=system.new_call_blocking_probability(),
                handover_failure=system.handover_failure_probability(),
                carried_traffic_erlangs=system.carried_traffic(),
            )
        )
    if not results:
        raise ValueError("no guard-channel count fits the configured voice channels")
    return results


# --------------------------------------------------------------------------- #
# Adaptive allocation vs. static reservations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AdaptiveComparison:
    """Outcome of the adaptive-versus-static reservation experiment."""

    trajectory: tuple[float, ...]
    static_evaluations: dict[int, "PolicyEvaluation"]
    adaptive_evaluation: "PolicyEvaluation"

    def best_static_reservation(self) -> int:
        """Static reservation with the highest mean per-user throughput."""
        return max(
            self.static_evaluations,
            key=lambda reserved: self.static_evaluations[
                reserved
            ].mean_throughput_per_user_kbit_s(),
        )

    def adaptive_matches_best_static_throughput(self, tolerance: float = 0.05) -> bool:
        """Whether the adaptive policy is within ``tolerance`` of the best static one."""
        best = self.static_evaluations[
            self.best_static_reservation()
        ].mean_throughput_per_user_kbit_s()
        if best <= 0:
            return True
        return self.adaptive_evaluation.mean_throughput_per_user_kbit_s() >= best * (
            1.0 - tolerance
        )


def adaptive_policy_comparison(
    base_parameters: GprsModelParameters,
    load_trajectory: Sequence[float] = (0.1, 0.3, 0.6, 0.9, 0.6, 0.2),
    *,
    static_reservations: Sequence[int] = (1, 2, 4),
    profile: QosProfile | None = None,
    solver: str = "auto",
) -> AdaptiveComparison:
    """Compare a model-driven adaptive reservation with fixed reservations.

    Every policy sees the same deterministic busy-hour load trajectory; static
    policies keep their reservation throughout, while the adaptive policy asks
    the analytical model for the smallest reservation meeting the QoS profile
    at each epoch.
    """
    from repro.adaptive.controller import evaluate_policy
    from repro.adaptive.policies import ModelDrivenPolicy, StaticAllocationPolicy

    profile = profile or QosProfile(max_throughput_degradation=0.5)
    trajectory = tuple(float(rate) for rate in load_trajectory)
    static_evaluations = {
        reserved: evaluate_policy(
            base_parameters, StaticAllocationPolicy(reserved), trajectory, solver=solver
        )
        for reserved in static_reservations
    }
    adaptive_policy = ModelDrivenPolicy(
        base_parameters,
        profile,
        candidate_reservations=tuple(sorted(set(static_reservations))),
        solver=solver,
    )
    adaptive_evaluation = evaluate_policy(
        base_parameters, adaptive_policy, trajectory, solver=solver
    )
    return AdaptiveComparison(
        trajectory=trajectory,
        static_evaluations=static_evaluations,
        adaptive_evaluation=adaptive_evaluation,
    )


def expected_cs2_bler(ci_db: float) -> float:
    """Convenience re-export: BLER of CS-2 at a given C/I (used by examples)."""
    return block_error_rate("CS-2", ci_db)
