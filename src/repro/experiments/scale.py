"""Experiment scaling presets.

The paper's full configurations (BSC buffer of 100 packets, up to 150
concurrent GPRS sessions) lead to Markov chains with 10^5 - 10^6 states; the
authors report minutes of CPU time per point on a 2002 PC and our solvers are
in the same ballpark.  Sweeping every figure at full size is therefore too
expensive for a CI benchmark run.

:class:`ExperimentScale` captures the knobs that trade fidelity for speed:

* ``paper()`` -- the exact sizes of Tables 2 and 3 (use for one-off,
  high-fidelity reproduction runs),
* ``default()`` -- a scaled configuration (smaller buffer, smaller session
  cap, fewer arrival-rate points) that preserves all qualitative shapes and is
  used by the benchmark harness; EXPERIMENTS.md records which preset produced
  each reported number,
* ``smoke()`` -- a minimal configuration for fast functional tests.

Presets compose with the scenario runtime (:mod:`repro.runtime`): a
:class:`~repro.runtime.spec.ScenarioSpec` stores *paper-scale* sizes and the
active :class:`ExperimentScale` caps them at materialisation time
(:meth:`effective_buffer_size` / :meth:`effective_max_sessions`), so one
declarative scenario serves smoke tests, CI benchmarks and full-fidelity
runs.  The content-addressed result cache keys on the *effective* (capped)
parameters of each sweep point, which means every (scenario, preset)
combination caches independently and switching presets can never serve
results of the wrong size.  :meth:`from_name` resolves the preset names used
by the CLI and by serialised run records; :meth:`to_dict`/:meth:`from_dict`
round-trip a scale through plain dictionaries for those records.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

__all__ = ["ExperimentScale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs shared by all figure-regeneration functions.

    Attributes
    ----------
    buffer_size:
        BSC buffer size ``K`` used in the sweeps (``None`` keeps the paper
        value of the underlying configuration).
    max_sessions_cap:
        Upper bound applied to the session cap ``M`` of the traffic model
        (``None`` keeps the paper value).  Figures that vary ``M`` themselves
        scale their ``M`` values proportionally.
    arrival_rates:
        The call arrival rates (calls/s) swept on the x axis.
    simulation_time_s, simulation_warmup_s, simulation_batches, simulation_cells:
        Size of the validation simulation runs used by figures 5 and 6.
    solver:
        Steady-state solver passed to the analytical model.
    """

    buffer_size: int | None
    max_sessions_cap: int | None
    arrival_rates: tuple[float, ...]
    simulation_time_s: float
    simulation_warmup_s: float
    simulation_batches: int
    simulation_cells: int
    solver: str = "auto"

    def __post_init__(self) -> None:
        if not self.arrival_rates:
            raise ValueError("at least one arrival rate is required")
        if any(rate < 0 for rate in self.arrival_rates):
            raise ValueError("arrival rates must be non-negative")
        if self.buffer_size is not None and self.buffer_size < 2:
            raise ValueError("buffer_size must be at least 2")
        if self.max_sessions_cap is not None and self.max_sessions_cap < 1:
            raise ValueError("max_sessions_cap must be at least 1")

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Full-fidelity configuration matching Tables 2 and 3 of the paper."""
        return cls(
            buffer_size=None,
            max_sessions_cap=None,
            arrival_rates=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
            simulation_time_s=40_000.0,
            simulation_warmup_s=4_000.0,
            simulation_batches=10,
            simulation_cells=7,
        )

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Scaled configuration used by the benchmark harness (CI friendly)."""
        return cls(
            buffer_size=20,
            max_sessions_cap=10,
            arrival_rates=(0.1, 0.3, 0.5, 0.7, 1.0),
            simulation_time_s=4_000.0,
            simulation_warmup_s=400.0,
            simulation_batches=5,
            simulation_cells=7,
        )

    @classmethod
    def from_name(cls, name: str) -> "ExperimentScale":
        """Return the preset called ``name`` (``"smoke"``, ``"default"`` or ``"paper"``)."""
        presets = {"smoke": cls.smoke, "default": cls.default, "paper": cls.paper}
        try:
            return presets[name]()
        except KeyError as exc:
            raise ValueError(
                f"unknown scale preset {name!r}; available: {', '.join(sorted(presets))}"
            ) from exc

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Minimal configuration for fast functional tests."""
        return cls(
            buffer_size=8,
            max_sessions_cap=4,
            arrival_rates=(0.2, 0.8),
            simulation_time_s=600.0,
            simulation_warmup_s=60.0,
            simulation_batches=3,
            simulation_cells=3,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def effective_max_sessions(self, paper_value: int) -> int:
        """Return the session cap to use given the paper's value for this experiment."""
        if self.max_sessions_cap is None:
            return paper_value
        return min(paper_value, self.max_sessions_cap)

    def effective_buffer_size(self, paper_value: int) -> int:
        """Return the buffer size to use given the paper's value (100)."""
        if self.buffer_size is None:
            return paper_value
        return min(paper_value, self.buffer_size)

    def scaled_session_limit(self, paper_value: int, paper_reference: int) -> int:
        """Scale an experiment-specific ``M`` proportionally to the cap.

        Figure 10 varies ``M`` over 50 / 100 / 150 while the base traffic model
        uses ``M = 50``; with a cap of 10 those become 10 / 20 / 30.
        """
        if self.max_sessions_cap is None:
            return paper_value
        scaled = round(paper_value * self.max_sessions_cap / paper_reference)
        return max(1, scaled)

    def replace(self, **overrides) -> "ExperimentScale":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    # Serialisation (run records and worker processes)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Return the scale as a plain, JSON-serialisable dictionary."""
        values = asdict(self)
        values["arrival_rates"] = list(self.arrival_rates)
        return values

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentScale":
        """Rebuild a scale from :meth:`to_dict` output."""
        values = dict(data)
        values["arrival_rates"] = tuple(float(r) for r in values["arrival_rates"])
        return cls(**values)
