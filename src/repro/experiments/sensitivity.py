"""Sensitivity analyses of the GPRS model's secondary parameters.

The paper sweeps the call arrival rate and the number of reserved PDCHs; every
other parameter of Table 2 is fixed.  The functions in this module vary those
fixed parameters one at a time -- the TCP threshold ``eta``, the BSC buffer
size ``K``, the GPRS dwell time, the channel coding scheme and the block error
rate -- and report how the headline measures react, quantifying how robust the
paper's conclusions are to its parameter choices.

Every function returns a :class:`SensitivityResult`, a small table keyed by the
varied parameter, so the reporting and benchmark code can treat all analyses
uniformly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.measures import GprsPerformanceMeasures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters

__all__ = [
    "SensitivityResult",
    "sweep_tcp_threshold",
    "sweep_buffer_size",
    "sweep_gprs_dwell_time",
    "sweep_coding_scheme",
    "sweep_block_error_rate",
]


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of varying one parameter while keeping everything else fixed.

    Attributes
    ----------
    parameter:
        Name of the varied parameter.
    values:
        The parameter values, in the order they were evaluated.
    measures:
        The model measures at each value.
    """

    parameter: str
    values: tuple[float | str, ...]
    measures: tuple[GprsPerformanceMeasures, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.measures):
            raise ValueError("values and measures must have the same length")
        if not self.values:
            raise ValueError("a sensitivity sweep needs at least one value")

    def series(self, metric: str) -> tuple[float, ...]:
        """Return one metric across the sweep (attribute of the measures)."""
        return tuple(getattr(measure, metric) for measure in self.measures)

    def as_rows(self, metrics: Sequence[str]) -> list[dict[str, float | str]]:
        """Return the sweep as a list of dictionaries, one per parameter value."""
        rows = []
        for value, measure in zip(self.values, self.measures):
            row: dict[str, float | str] = {self.parameter: value}
            for metric in metrics:
                row[metric] = getattr(measure, metric)
            rows.append(row)
        return rows


def _solve(parameters: GprsModelParameters, solver: str) -> GprsPerformanceMeasures:
    return GprsMarkovModel(parameters, solver_method=solver).measures()


def sweep_tcp_threshold(
    base_parameters: GprsModelParameters,
    thresholds: Sequence[float] = (0.3, 0.5, 0.7, 0.9, 1.0),
    *,
    solver: str = "auto",
) -> SensitivityResult:
    """Vary the TCP flow-control threshold ``eta`` (the calibration of Figure 5)."""
    values = tuple(float(value) for value in thresholds)
    measures = tuple(
        _solve(base_parameters.replace(tcp_threshold=value), solver) for value in values
    )
    return SensitivityResult("tcp_threshold", values, measures)


def sweep_buffer_size(
    base_parameters: GprsModelParameters,
    buffer_sizes: Sequence[int] = (10, 20, 50, 100),
    *,
    solver: str = "auto",
) -> SensitivityResult:
    """Vary the BSC buffer size ``K`` (loss/delay trade-off of the FIFO buffer)."""
    values = tuple(int(value) for value in buffer_sizes)
    measures = tuple(
        _solve(base_parameters.replace(buffer_size=value), solver) for value in values
    )
    return SensitivityResult("buffer_size", values, measures)


def sweep_gprs_dwell_time(
    base_parameters: GprsModelParameters,
    dwell_times_s: Sequence[float] = (30.0, 60.0, 120.0, 240.0),
    *,
    solver: str = "auto",
) -> SensitivityResult:
    """Vary the GPRS session dwell time (the mobility assumption of Section 5.1)."""
    values = tuple(float(value) for value in dwell_times_s)
    measures = tuple(
        _solve(base_parameters.replace(mean_gprs_dwell_time_s=value), solver)
        for value in values
    )
    return SensitivityResult("mean_gprs_dwell_time_s", values, measures)


def sweep_coding_scheme(
    base_parameters: GprsModelParameters,
    coding_schemes: Sequence[str] = ("CS-1", "CS-2", "CS-3", "CS-4"),
    *,
    solver: str = "auto",
) -> SensitivityResult:
    """Vary the channel coding scheme (the paper fixes CS-2) on an error-free link."""
    values = tuple(str(value) for value in coding_schemes)
    measures = tuple(
        _solve(base_parameters.replace(coding_scheme=value), solver) for value in values
    )
    return SensitivityResult("coding_scheme", values, measures)


def sweep_block_error_rate(
    base_parameters: GprsModelParameters,
    block_error_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    *,
    solver: str = "auto",
) -> SensitivityResult:
    """Vary the RLC block error rate (the ARQ goodput extension of repro.radio)."""
    values = tuple(float(value) for value in block_error_rates)
    measures = tuple(
        _solve(base_parameters.replace(block_error_rate=value), solver) for value in values
    )
    return SensitivityResult("block_error_rate", values, measures)
