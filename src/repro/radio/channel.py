"""Gilbert--Elliott burst-error channel for the GPRS radio link.

Block errors on a mobile radio channel are not independent: fading dips wipe
out several consecutive RLC blocks.  The classic two-state Gilbert--Elliott
model captures this with a *good* and a *bad* channel state, each with its own
block error probability, and exponential sojourn times in both states.  The
model is a two-state CTMC, so it reuses the Markov library of this package and
can be composed with the rest of the analytical machinery.

The channel is used in two ways:

* analytically -- the stationary block error rate and the burst-length
  statistics parameterise the ARQ analysis of :mod:`repro.radio.arq`;
* in Monte-Carlo form -- :meth:`GilbertElliottChannel.sample_block_errors`
  draws correlated error sequences for the link-level examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.ctmc import ContinuousTimeMarkovChain

__all__ = ["GilbertElliottChannel"]


@dataclass(frozen=True)
class GilbertElliottChannel:
    """Two-state burst-error channel.

    Parameters
    ----------
    good_block_error_rate:
        Block error probability while the channel is in the good state.
    bad_block_error_rate:
        Block error probability while the channel is in the bad state (a
        fading dip); must not be smaller than the good-state probability.
    mean_good_duration_s:
        Mean sojourn time in the good state in seconds.
    mean_bad_duration_s:
        Mean sojourn time in the bad state in seconds.
    block_period_s:
        Duration of one RLC radio block (20 ms for GPRS); used to convert the
        continuous-time state process into per-block error probabilities.
    """

    good_block_error_rate: float = 0.02
    bad_block_error_rate: float = 0.5
    mean_good_duration_s: float = 2.0
    mean_bad_duration_s: float = 0.2
    block_period_s: float = 0.020

    def __post_init__(self) -> None:
        if not 0.0 <= self.good_block_error_rate < 1.0:
            raise ValueError("good_block_error_rate must be in [0, 1)")
        if not 0.0 <= self.bad_block_error_rate <= 1.0:
            raise ValueError("bad_block_error_rate must be in [0, 1]")
        if self.bad_block_error_rate < self.good_block_error_rate:
            raise ValueError("the bad state cannot be better than the good state")
        if self.mean_good_duration_s <= 0 or self.mean_bad_duration_s <= 0:
            raise ValueError("state sojourn times must be positive")
        if self.block_period_s <= 0:
            raise ValueError("block_period_s must be positive")

    # ------------------------------------------------------------------ #
    # Analytical properties
    # ------------------------------------------------------------------ #
    @property
    def good_to_bad_rate(self) -> float:
        """Transition rate from the good state into a fading dip (per second)."""
        return 1.0 / self.mean_good_duration_s

    @property
    def bad_to_good_rate(self) -> float:
        """Transition rate out of a fading dip (per second)."""
        return 1.0 / self.mean_bad_duration_s

    @property
    def probability_good(self) -> float:
        """Stationary probability of the good state."""
        return self.mean_good_duration_s / (
            self.mean_good_duration_s + self.mean_bad_duration_s
        )

    @property
    def probability_bad(self) -> float:
        """Stationary probability of the bad state."""
        return 1.0 - self.probability_good

    def stationary_block_error_rate(self) -> float:
        """Return the long-run average block error probability."""
        return (
            self.probability_good * self.good_block_error_rate
            + self.probability_bad * self.bad_block_error_rate
        )

    def mean_error_burst_length_blocks(self) -> float:
        """Return the mean number of consecutive blocks spanned by one bad period."""
        return max(self.mean_bad_duration_s / self.block_period_s, 1.0)

    def to_ctmc(self) -> ContinuousTimeMarkovChain:
        """Return the two-state modulating CTMC (state 0 = good, 1 = bad)."""
        generator = np.array(
            [
                [-self.good_to_bad_rate, self.good_to_bad_rate],
                [self.bad_to_good_rate, -self.bad_to_good_rate],
            ]
        )
        return ContinuousTimeMarkovChain(generator, labels=["good", "bad"])

    # ------------------------------------------------------------------ #
    # Monte Carlo
    # ------------------------------------------------------------------ #
    def sample_block_errors(
        self, number_of_blocks: int, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Draw a correlated sequence of per-block error indicators.

        The channel state evolves in discrete steps of one block period using
        the exact exponential sojourn dynamics; each block is then lost with
        the error probability of the state it was transmitted in.

        Parameters
        ----------
        number_of_blocks:
            Length of the sampled sequence.
        rng:
            Optional numpy random generator (a fresh default generator is used
            when omitted, which makes the call non-deterministic).

        Returns
        -------
        numpy.ndarray
            Boolean array of length ``number_of_blocks``; ``True`` marks a
            block that must be retransmitted.
        """
        if number_of_blocks < 0:
            raise ValueError("number_of_blocks must be non-negative")
        if rng is None:
            rng = np.random.default_rng()
        # Per-block transition probabilities of the discretised two-state chain.
        p_good_to_bad = 1.0 - np.exp(-self.good_to_bad_rate * self.block_period_s)
        p_bad_to_good = 1.0 - np.exp(-self.bad_to_good_rate * self.block_period_s)
        errors = np.zeros(number_of_blocks, dtype=bool)
        in_bad_state = rng.random() < self.probability_bad
        for i in range(number_of_blocks):
            error_probability = (
                self.bad_block_error_rate if in_bad_state else self.good_block_error_rate
            )
            errors[i] = rng.random() < error_probability
            if in_bad_state:
                if rng.random() < p_bad_to_good:
                    in_bad_state = False
            else:
                if rng.random() < p_good_to_bad:
                    in_bad_state = True
        return errors

    def empirical_block_error_rate(
        self, number_of_blocks: int, rng: np.random.Generator | None = None
    ) -> float:
        """Return the error fraction of one sampled sequence (Monte-Carlo check)."""
        if number_of_blocks <= 0:
            raise ValueError("number_of_blocks must be positive")
        return float(np.mean(self.sample_block_errors(number_of_blocks, rng)))
