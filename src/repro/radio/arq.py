"""RLC selective-repeat ARQ analysis: retransmissions, goodput, residual loss.

GPRS runs an automatic repeat request (ARQ) protocol in the RLC layer: every
radio block that fails its block check is retransmitted until it arrives (or
until the retransmission limit is exhausted).  The paper assumes an error-free
link ("almost all packet losses can be recovered by the FEC mechanism") and
names the throughput cost of retransmissions as future work; this module
provides that analysis.

With independent block errors of probability ``p`` and an unbounded
selective-repeat ARQ the number of transmissions of one block is geometric
with mean ``1 / (1 - p)``, so the *goodput* of a PDCH shrinks from the nominal
coding-scheme rate ``R`` to ``R * (1 - p)``.  With a bounded number of
transmissions ``L`` a block is lost for good with probability ``p ** L``
(the residual loss that the LLC or TCP layer has to handle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.radio.bler import block_error_rate
from repro.simulator.radio import rlc_blocks_per_packet, transmission_time
from repro.traffic.units import (
    CODING_SCHEME_RATES_KBIT_S,
    DATA_PACKET_SIZE_BYTES,
    kbit_per_s_to_packets_per_s,
)

__all__ = [
    "ArqPerformance",
    "analyze_arq",
    "effective_pdch_rate_kbit_s",
    "effective_service_rate",
    "expected_packet_transfer_time",
    "expected_transmissions_per_block",
    "residual_block_loss_probability",
]


def _validate_bler(bler: float) -> float:
    if not 0.0 <= bler < 1.0:
        raise ValueError("block error rate must be in [0, 1)")
    return float(bler)


def expected_transmissions_per_block(
    bler: float, max_transmissions: int | None = None
) -> float:
    """Return the expected number of transmissions of one RLC block.

    Parameters
    ----------
    bler:
        Block error probability (independent across transmissions).
    max_transmissions:
        Optional limit ``L`` on the number of transmissions; ``None`` means
        the block is retransmitted until it succeeds.
    """
    p = _validate_bler(bler)
    if max_transmissions is None:
        return 1.0 / (1.0 - p)
    if max_transmissions < 1:
        raise ValueError("max_transmissions must be at least 1")
    # Truncated geometric: sum_{i=1}^{L} i p^{i-1} (1-p)  +  L p^L.
    return (1.0 - p**max_transmissions) / (1.0 - p)


def residual_block_loss_probability(bler: float, max_transmissions: int) -> float:
    """Return the probability that a block is still lost after ``L`` transmissions."""
    p = _validate_bler(bler)
    if max_transmissions < 1:
        raise ValueError("max_transmissions must be at least 1")
    return p**max_transmissions


def effective_pdch_rate_kbit_s(
    coding_scheme: str = "CS-2",
    bler: float = 0.0,
    *,
    max_transmissions: int | None = None,
) -> float:
    """Return the ARQ goodput of one PDCH in kbit/s.

    The goodput is the nominal coding-scheme rate divided by the expected
    number of transmissions per block.
    """
    try:
        nominal = CODING_SCHEME_RATES_KBIT_S[coding_scheme]
    except KeyError as exc:
        raise ValueError(
            f"unknown coding scheme {coding_scheme!r}; expected one of "
            f"{sorted(CODING_SCHEME_RATES_KBIT_S)}"
        ) from exc
    return nominal / expected_transmissions_per_block(bler, max_transmissions)


def effective_service_rate(
    coding_scheme: str = "CS-2",
    bler: float = 0.0,
    packet_size_bytes: int = DATA_PACKET_SIZE_BYTES,
    *,
    max_transmissions: int | None = None,
) -> float:
    """Return the packet service rate (packets/s) of one PDCH under ARQ.

    This is the quantity the analytical GPRS model uses as ``mu_service`` when
    a non-zero block error rate is configured.
    """
    return kbit_per_s_to_packets_per_s(
        effective_pdch_rate_kbit_s(coding_scheme, bler, max_transmissions=max_transmissions),
        packet_size_bytes,
    )


def expected_packet_transfer_time(
    packet_size_bytes: int = DATA_PACKET_SIZE_BYTES,
    channels: int = 1,
    coding_scheme: str = "CS-2",
    bler: float = 0.0,
) -> float:
    """Return the expected downlink transfer time of one packet including ARQ.

    The error-free transfer time of :func:`repro.simulator.radio.transmission_time`
    is stretched by the expected number of transmissions per block; this is the
    same expected-value treatment the network simulator applies, so analytical
    and simulated transfer times stay consistent.
    """
    base = transmission_time(packet_size_bytes, channels, coding_scheme)
    return base * expected_transmissions_per_block(bler)


@dataclass(frozen=True)
class ArqPerformance:
    """Summary of the RLC ARQ behaviour for one link configuration.

    Attributes
    ----------
    coding_scheme:
        The coding scheme analysed.
    block_error_rate:
        Block error probability used for the analysis.
    expected_transmissions:
        Mean transmissions per RLC block.
    effective_rate_kbit_s:
        Goodput of one PDCH in kbit/s.
    effective_packet_rate:
        Goodput of one PDCH in network-layer packets per second.
    residual_loss_probability:
        Probability that a block exhausts the retransmission limit
        (zero for unbounded ARQ).
    blocks_per_packet:
        RLC blocks per network-layer packet.
    expected_packet_time_one_pdch_s:
        Expected transfer time of one packet over a single PDCH.
    """

    coding_scheme: str
    block_error_rate: float
    expected_transmissions: float
    effective_rate_kbit_s: float
    effective_packet_rate: float
    residual_loss_probability: float
    blocks_per_packet: int
    expected_packet_time_one_pdch_s: float


def analyze_arq(
    coding_scheme: str = "CS-2",
    *,
    ci_db: float | None = None,
    bler: float | None = None,
    max_transmissions: int | None = None,
    packet_size_bytes: int = DATA_PACKET_SIZE_BYTES,
) -> ArqPerformance:
    """Analyse the RLC ARQ for one coding scheme and link quality.

    Exactly one of ``ci_db`` (carrier-to-interference ratio, mapped through the
    coding scheme's BLER curve) or ``bler`` (explicit block error rate) must be
    supplied.
    """
    if (ci_db is None) == (bler is None):
        raise ValueError("specify exactly one of ci_db or bler")
    if bler is None:
        bler = block_error_rate(coding_scheme, ci_db)
    p = _validate_bler(bler)
    transmissions = expected_transmissions_per_block(p, max_transmissions)
    residual = (
        0.0 if max_transmissions is None else residual_block_loss_probability(p, max_transmissions)
    )
    rate = effective_pdch_rate_kbit_s(coding_scheme, p, max_transmissions=max_transmissions)
    return ArqPerformance(
        coding_scheme=coding_scheme,
        block_error_rate=p,
        expected_transmissions=transmissions,
        effective_rate_kbit_s=rate,
        effective_packet_rate=kbit_per_s_to_packets_per_s(rate, packet_size_bytes),
        residual_loss_probability=residual,
        blocks_per_packet=rlc_blocks_per_packet(packet_size_bytes, coding_scheme),
        expected_packet_time_one_pdch_s=expected_packet_transfer_time(
            packet_size_bytes, 1, coding_scheme, p
        ),
    )


def mean_transmissions_with_bursts(
    good_bler: float,
    bad_bler: float,
    probability_bad: float,
) -> float:
    """Expected transmissions per block when errors come from a two-state channel.

    The first transmission of a block sees the stationary mixture of good and
    bad states; retransmissions are spaced at least one ARQ round trip apart,
    which for GPRS (tens of milliseconds) is comparable to the fading dip
    duration, so they are treated as resampling the stationary mixture.  The
    result is the unbounded-ARQ mean with the *stationary* block error rate --
    burstiness changes the variance of the transfer time, not its mean.
    """
    if not 0.0 <= probability_bad <= 1.0:
        raise ValueError("probability_bad must be in [0, 1]")
    stationary = (1.0 - probability_bad) * _validate_bler(good_bler) + (
        probability_bad * _validate_bler(bad_bler)
    )
    if stationary >= 1.0:
        raise ValueError("the stationary block error rate must be below 1")
    return 1.0 / (1.0 - stationary)


def transfer_time_percentile(
    percentile: float,
    packet_size_bytes: int = DATA_PACKET_SIZE_BYTES,
    channels: int = 1,
    coding_scheme: str = "CS-2",
    bler: float = 0.0,
) -> float:
    """Return an upper percentile of the packet transfer time under ARQ.

    Each of the packet's blocks needs a geometric number of transmissions; the
    packet is complete when its slowest block has arrived.  The percentile of
    the maximum of ``B`` independent geometrics is computed exactly from the
    geometric distribution function and converted to time through the
    radio-block period implied by the error-free transfer time.
    """
    if not 0.0 < percentile < 1.0:
        raise ValueError("percentile must be strictly between 0 and 1")
    p = _validate_bler(bler)
    blocks = rlc_blocks_per_packet(packet_size_bytes, coding_scheme)
    base = transmission_time(packet_size_bytes, channels, coding_scheme)
    if p == 0.0:
        return base
    # Smallest k with P(all blocks done within k rounds) >= percentile.
    per_round = base
    k = 1
    while True:
        probability_all_done = (1.0 - p**k) ** blocks
        if probability_all_done >= percentile:
            return k * per_round
        k += 1
        if k > 10_000:  # pragma: no cover - defensive guard for absurd BLER
            raise RuntimeError("transfer time percentile did not converge")


def _geometric_quantile(p_success: float, percentile: float) -> int:
    """Return the smallest k with ``P(Geometric <= k) >= percentile``."""
    if not 0.0 < p_success <= 1.0:
        raise ValueError("p_success must be in (0, 1]")
    if p_success == 1.0:
        return 1
    return max(1, math.ceil(math.log(1.0 - percentile) / math.log(1.0 - p_success)))
