"""Block error rate of the GPRS coding schemes versus carrier-to-interference ratio.

GPRS protects every RLC radio block with one of four convolutional coding
schemes.  CS-1 uses rate-1/2 coding and survives poor radio conditions; CS-4
sends uncoded blocks and needs a clean channel.  The paper (Section 3) fixes
CS-2 and refers to the link-level results of Cai & Goodman [7] and Meyer [17]
for the block error behaviour.

Those link-level curves come from radio-layer simulations that we cannot rerun
(no radio hardware, no proprietary link-level simulator), so this module uses
a *synthetic substitute*: a logistic curve per coding scheme,

    BLER(C/I) = 1 / (1 + exp(slope * (C/I - midpoint))),

with midpoints and slopes chosen so that the qualitative picture of the GPRS
literature is preserved:

* at any C/I the block error rate is ordered CS-1 < CS-2 < CS-3 < CS-4
  (stronger coding is always more robust),
* CS-2 reaches a block error rate around 10% near 9 dB, the operating point
  usually assumed for a well-planned GSM network,
* CS-4 needs roughly 9 dB more than CS-1 for the same reliability.

The substitution is recorded in DESIGN.md; every consumer takes the curve as a
parameter, so refined curves can be dropped in without touching the rest of
the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.traffic.units import CODING_SCHEME_RATES_KBIT_S

__all__ = [
    "BlerCurve",
    "CODING_SCHEME_BLER_PARAMETERS",
    "block_error_rate",
    "required_ci_for_bler",
]


@dataclass(frozen=True)
class BlerCurve:
    """Logistic block-error-rate curve of one coding scheme.

    Parameters
    ----------
    coding_scheme:
        Name of the coding scheme (``"CS-1"`` .. ``"CS-4"``).
    midpoint_db:
        Carrier-to-interference ratio at which half of the blocks are lost.
    slope_per_db:
        Steepness of the logistic transition (per dB).
    """

    coding_scheme: str
    midpoint_db: float
    slope_per_db: float

    def __post_init__(self) -> None:
        if self.slope_per_db <= 0:
            raise ValueError("slope_per_db must be positive")

    def block_error_rate(self, ci_db: float) -> float:
        """Return the block error probability at a carrier-to-interference ratio."""
        exponent = self.slope_per_db * (ci_db - self.midpoint_db)
        # Clamp the exponent to keep exp() well behaved for extreme C/I values.
        exponent = max(min(exponent, 700.0), -700.0)
        return 1.0 / (1.0 + math.exp(exponent))

    def required_ci_db(self, target_bler: float) -> float:
        """Return the C/I needed to achieve a target block error rate."""
        if not 0.0 < target_bler < 1.0:
            raise ValueError("target_bler must be strictly between 0 and 1")
        return self.midpoint_db + math.log(1.0 / target_bler - 1.0) / self.slope_per_db


#: Synthetic logistic BLER curves for the four GPRS coding schemes.  The
#: midpoints increase with the code rate (less protection needs a better
#: channel); the slopes decrease slightly because weaker coding degrades more
#: gradually with interference.
CODING_SCHEME_BLER_PARAMETERS: dict[str, BlerCurve] = {
    "CS-1": BlerCurve("CS-1", midpoint_db=4.0, slope_per_db=0.9),
    "CS-2": BlerCurve("CS-2", midpoint_db=7.0, slope_per_db=0.8),
    "CS-3": BlerCurve("CS-3", midpoint_db=10.0, slope_per_db=0.7),
    "CS-4": BlerCurve("CS-4", midpoint_db=13.0, slope_per_db=0.6),
}


def _curve(coding_scheme: str) -> BlerCurve:
    try:
        return CODING_SCHEME_BLER_PARAMETERS[coding_scheme]
    except KeyError as exc:
        raise ValueError(
            f"unknown coding scheme {coding_scheme!r}; expected one of "
            f"{sorted(CODING_SCHEME_BLER_PARAMETERS)}"
        ) from exc


def block_error_rate(coding_scheme: str, ci_db: float) -> float:
    """Return the block error probability of a coding scheme at a given C/I.

    Parameters
    ----------
    coding_scheme:
        One of ``"CS-1"`` .. ``"CS-4"``.
    ci_db:
        Carrier-to-interference ratio in dB.
    """
    return _curve(coding_scheme).block_error_rate(ci_db)


def required_ci_for_bler(coding_scheme: str, target_bler: float) -> float:
    """Return the carrier-to-interference ratio needed for a target block error rate."""
    return _curve(coding_scheme).required_ci_db(target_bler)


def nominal_rate_kbit_s(coding_scheme: str) -> float:
    """Return the error-free per-PDCH data rate of a coding scheme in kbit/s."""
    try:
        return CODING_SCHEME_RATES_KBIT_S[coding_scheme]
    except KeyError as exc:
        raise ValueError(
            f"unknown coding scheme {coding_scheme!r}; expected one of "
            f"{sorted(CODING_SCHEME_RATES_KBIT_S)}"
        ) from exc
