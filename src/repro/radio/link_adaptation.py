"""Link adaptation: choosing the coding scheme that maximises goodput.

GPRS can switch the channel coding scheme per mobile station according to the
measured link quality ("link adaptation").  The trade-off is the classic one:
CS-1 delivers only 9.05 kbit/s but survives poor C/I, CS-4 delivers 21.4
kbit/s but collapses as soon as blocks start failing.  The best scheme at a
given C/I is the one with the largest ARQ goodput

    goodput(CS, C/I) = nominal_rate(CS) * (1 - BLER(CS, C/I)).

This module computes that choice, the C/I thresholds at which the optimal
scheme changes, and a simple hysteresis policy that avoids oscillating between
two schemes when the measured C/I sits near a threshold.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.radio.arq import effective_pdch_rate_kbit_s
from repro.radio.bler import block_error_rate
from repro.traffic.units import CODING_SCHEME_RATES_KBIT_S

__all__ = ["LinkAdaptationPolicy", "best_coding_scheme", "switching_thresholds"]

#: Coding schemes ordered from the most robust to the fastest.
_SCHEMES: tuple[str, ...] = ("CS-1", "CS-2", "CS-3", "CS-4")


def goodput_kbit_s(coding_scheme: str, ci_db: float) -> float:
    """Return the ARQ goodput of one PDCH for a coding scheme at a given C/I."""
    bler = block_error_rate(coding_scheme, ci_db)
    return effective_pdch_rate_kbit_s(coding_scheme, bler)


def best_coding_scheme(ci_db: float) -> str:
    """Return the coding scheme with the highest goodput at the given C/I.

    Ties (which can only occur at exact crossover points) are resolved in
    favour of the more robust scheme.
    """
    best = _SCHEMES[0]
    best_rate = goodput_kbit_s(best, ci_db)
    for scheme in _SCHEMES[1:]:
        rate = goodput_kbit_s(scheme, ci_db)
        if rate > best_rate:
            best, best_rate = scheme, rate
    return best


def switching_thresholds(
    *, low_ci_db: float = -10.0, high_ci_db: float = 40.0, resolution_db: float = 0.01
) -> dict[tuple[str, str], float]:
    """Return the C/I values at which the optimal coding scheme changes.

    The result maps ``(scheme_below, scheme_above)`` pairs to the crossover
    C/I, found by bisection of the goodput difference on a dB grid.  Only
    transitions that actually occur within the scanned range are reported.
    """
    if high_ci_db <= low_ci_db:
        raise ValueError("high_ci_db must exceed low_ci_db")
    if resolution_db <= 0:
        raise ValueError("resolution_db must be positive")
    thresholds: dict[tuple[str, str], float] = {}
    previous_scheme = best_coding_scheme(low_ci_db)
    ci = low_ci_db
    while ci < high_ci_db:
        ci_next = min(ci + 0.25, high_ci_db)
        scheme = best_coding_scheme(ci_next)
        if scheme != previous_scheme:
            # Bisect the crossover between ci and ci_next.
            low, high = ci, ci_next
            while high - low > resolution_db:
                mid = 0.5 * (low + high)
                if best_coding_scheme(mid) == previous_scheme:
                    low = mid
                else:
                    high = mid
            thresholds[(previous_scheme, scheme)] = 0.5 * (low + high)
            previous_scheme = scheme
        ci = ci_next
    return thresholds


@dataclass
class LinkAdaptationPolicy:
    """Threshold-based link adaptation with hysteresis.

    The policy upgrades to a faster coding scheme once the measured C/I exceeds
    the crossover threshold by ``hysteresis_db`` and downgrades once it falls
    ``hysteresis_db`` below it, so a C/I hovering exactly at a threshold does
    not cause the scheme to flap on every measurement.

    Parameters
    ----------
    hysteresis_db:
        Width of the hysteresis band around every switching threshold.
    initial_scheme:
        Coding scheme assumed before the first measurement.
    """

    hysteresis_db: float = 1.0
    initial_scheme: str = "CS-2"
    _thresholds: list[tuple[float, str]] = field(init=False, repr=False)
    _current: str = field(init=False, repr=False)
    _history: list[str] = field(init=False, default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.hysteresis_db < 0:
            raise ValueError("hysteresis_db must be non-negative")
        if self.initial_scheme not in CODING_SCHEME_RATES_KBIT_S:
            raise ValueError(f"unknown coding scheme {self.initial_scheme!r}")
        crossovers = switching_thresholds()
        # Sorted (threshold, scheme_above) list for bisection.
        self._thresholds = sorted(
            (ci, above) for (_, above), ci in crossovers.items()
        )
        self._current = self.initial_scheme
        self._history = []

    @property
    def current_scheme(self) -> str:
        """The coding scheme currently selected."""
        return self._current

    @property
    def history(self) -> list[str]:
        """Schemes selected after each observation (most recent last)."""
        return list(self._history)

    def _unhysteretic_choice(self, ci_db: float) -> str:
        """Return the scheme the thresholds select with no hysteresis applied."""
        position = bisect_right([ci for ci, _ in self._thresholds], ci_db)
        if position == 0:
            return _SCHEMES[0]
        return self._thresholds[position - 1][1]

    def observe(self, ci_db: float) -> str:
        """Feed one C/I measurement and return the (possibly unchanged) scheme."""
        target = self._unhysteretic_choice(ci_db)
        if target != self._current:
            current_index = _SCHEMES.index(self._current)
            target_index = _SCHEMES.index(target)
            if target_index > current_index:
                # Upgrade only if the C/I clears the threshold by the hysteresis.
                threshold = self._threshold_between(current_index, upgrade=True)
                if threshold is None or ci_db >= threshold + self.hysteresis_db:
                    self._current = _SCHEMES[current_index + 1]
            else:
                threshold = self._threshold_between(current_index, upgrade=False)
                if threshold is None or ci_db <= threshold - self.hysteresis_db:
                    self._current = _SCHEMES[current_index - 1]
        self._history.append(self._current)
        return self._current

    def _threshold_between(self, current_index: int, *, upgrade: bool) -> float | None:
        """Return the crossover C/I adjacent to the current scheme, if any."""
        if upgrade:
            if current_index + 1 >= len(_SCHEMES):
                return None
            above = _SCHEMES[current_index + 1]
            for ci, scheme in self._thresholds:
                if scheme == above:
                    return ci
            return None
        if current_index == 0:
            return None
        above = _SCHEMES[current_index]
        for ci, scheme in self._thresholds:
            if scheme == above:
                return ci
        return None
