"""Link-level model of the GPRS radio interface.

The paper fixes the channel coding scheme to CS-2 and assumes that "almost all
packet losses can be recovered by the FEC mechanism of the coding scheme and
therefore no retransmissions of lost packets are necessary"; it explicitly
lists "taking into account packet retransmissions that would lead to a
decrease in overall throughput" as future work (end of Section 3).  This
package implements that future work as a self-contained link-level substrate:

* :mod:`repro.radio.bler` -- block error probability of the four GPRS coding
  schemes CS-1 .. CS-4 as a function of the carrier-to-interference ratio
  (synthetic logistic curves calibrated to the qualitative behaviour reported
  in the GPRS literature: robust-but-slow CS-1, fragile-but-fast CS-4);
* :mod:`repro.radio.channel` -- a Gilbert--Elliott two-state burst-error
  channel built on the CTMC library, for studying correlated block errors;
* :mod:`repro.radio.arq` -- the RLC selective-repeat ARQ: expected number of
  transmissions per block, effective (goodput) rate of a PDCH, residual loss
  with a bounded number of retransmissions, and the expected transfer time of
  a network-layer packet including retransmissions;
* :mod:`repro.radio.link_adaptation` -- choosing the coding scheme that
  maximises the effective throughput at a given link quality, including the
  C/I switching thresholds between adjacent schemes.

The analytical GPRS model consumes this package through the
``block_error_rate`` field of
:class:`~repro.core.parameters.GprsModelParameters`, which degrades the
per-PDCH service rate to the ARQ goodput; the network simulator applies the
same degradation to every packet transfer, so model and simulation stay
comparable.
"""

from repro.radio.arq import (
    ArqPerformance,
    analyze_arq,
    effective_pdch_rate_kbit_s,
    effective_service_rate,
    expected_packet_transfer_time,
    expected_transmissions_per_block,
    residual_block_loss_probability,
)
from repro.radio.bler import (
    CODING_SCHEME_BLER_PARAMETERS,
    BlerCurve,
    block_error_rate,
    required_ci_for_bler,
)
from repro.radio.channel import GilbertElliottChannel
from repro.radio.link_adaptation import (
    LinkAdaptationPolicy,
    best_coding_scheme,
    switching_thresholds,
)

__all__ = [
    "ArqPerformance",
    "BlerCurve",
    "CODING_SCHEME_BLER_PARAMETERS",
    "GilbertElliottChannel",
    "LinkAdaptationPolicy",
    "analyze_arq",
    "best_coding_scheme",
    "block_error_rate",
    "effective_pdch_rate_kbit_s",
    "effective_service_rate",
    "expected_packet_transfer_time",
    "expected_transmissions_per_block",
    "required_ci_for_bler",
    "residual_block_loss_probability",
    "switching_thresholds",
]
