"""Transient analysis: time-varying workloads solved by adaptive uniformisation.

The paper's Markov model is solved in steady state, but the questions
operators ask -- what happens to blocking and throughput during the morning
busy-hour ramp, a flash crowd, a partial-capacity outage -- are inherently
non-stationary.  This package composes the repository's existing ingredients
(the uniformisation primitive, bitwise generator templates, the Erlang-loss
handover balance) into a time-dependent model:

* :mod:`repro.transient.schedule` -- :class:`RateSchedule` /
  :class:`WorkloadProfile`: piecewise-constant time-varying parameter
  schedules (diurnal ramps, flash-crowd spikes, outage steps), dict
  round-trippable and content-digestable for scenario specs and cache keys.
* :mod:`repro.transient.model` -- :class:`TransientModel`: per-segment
  generators rebuilt through shared generator templates, quasi-stationary
  handover rates seeded segment to segment, adaptive uniformisation that
  carries the distribution across breakpoints (remapping it across
  state-space shape changes), detects steady state to stop early, and emits
  the QoS-measure trajectory.
* :mod:`repro.transient.propagator` -- :class:`PropagatorCache`: memoised
  segment propagators keyed by a content digest of everything a propagation
  is a function of; repeated identical segments (diurnal cycles, staircase
  sweeps, re-runs) are served by checkpointed replay at zero matvec cost,
  bitwise identical to recomputation.
* :mod:`repro.transient.sweep` -- arrival-rate sweeps of whole trajectories,
  cached under profile-aware keys with independent trajectories solved in
  parallel.

Quickstart::

    from repro import GprsModelParameters, traffic_model
    from repro.transient import TransientModel, flash_crowd

    params = GprsModelParameters.from_traffic_model(
        traffic_model(3), total_call_arrival_rate=0.5,
        buffer_size=10, max_gprs_sessions=5)
    result = TransientModel(flash_crowd(), params).solve()
    print(result.series("packet_loss_probability"))
"""

# schedule has no intra-package dependencies, model depends on schedule and
# sweep on both.  Nothing here imports repro.runtime at module level (sweep
# defers those imports into its functions): the runtime package reaches into
# repro.transient.schedule for its scenario registry, and the dependency must
# stay one-directional for both packages to import standalone.
from repro.transient.schedule import (
    SEGMENT_OVERRIDE_FIELDS,
    RateSchedule,
    ScheduleSegment,
    WorkloadProfile,
    busy_hour_ramp,
    constant_workload,
    diurnal_cycle,
    flash_crowd,
    outage_recovery,
)
from repro.transient.model import (
    SegmentTrace,
    TrajectoryPoint,
    TransientModel,
    TransientResult,
)
from repro.transient.propagator import (
    PropagatorCache,
    SegmentReplay,
    default_propagator_cache,
)
from repro.transient.sweep import (
    TransientSweepPoint,
    TransientSweepResult,
    run_transient_sweep,
    transient_sweep_payloads,
)

__all__ = [
    "SEGMENT_OVERRIDE_FIELDS",
    "PropagatorCache",
    "RateSchedule",
    "ScheduleSegment",
    "SegmentReplay",
    "SegmentTrace",
    "TrajectoryPoint",
    "TransientModel",
    "TransientResult",
    "TransientSweepPoint",
    "TransientSweepResult",
    "WorkloadProfile",
    "busy_hour_ramp",
    "constant_workload",
    "default_propagator_cache",
    "diurnal_cycle",
    "flash_crowd",
    "outage_recovery",
    "run_transient_sweep",
    "transient_sweep_payloads",
]
