"""Memoised segment propagators: checkpointed replay of repeated segments.

Schedules repeat themselves: a diurnal cycle visits the same load twice a day
(the cosine is symmetric around its peak), staircase sweeps walk the same
multipliers up and down, and every re-run of a trajectory -- a warm cache
miss on a neighbouring sweep point, an A/B comparison, the second day of a
periodic schedule whose first day has settled -- re-solves propagations it
has already performed.  The uniformisation matvec chain is by far the
dominant cost of a transient solve, and it is a *pure function*: the
distributions a segment produces are fully determined by the segment's
generator (itself a pure function of the effective parameters and the
balanced handover rates), the chain of advance intervals, the uniformisation
tolerances, and the distribution the segment starts from.

:class:`PropagatorCache` therefore keys a **content digest** of exactly those
inputs to a :class:`SegmentReplay`: the distribution checkpoints at each
advance target, the final distribution, the matvec count the original run
spent, and the early-stop bookkeeping (whether the stationarity shortcut
fired, at which offset, and at what achieved residual).  A repeated identical
(configuration, durations, truncation, start) segment is then served by
*checkpointed replay* -- the recorded distributions are handed back, bitwise
identical to what re-running the matvec chain would produce, at zero matvec
cost.  A near-miss (any input differing, even by one ulp in an interval)
simply misses the cache and is recomputed, so memoisation can never change a
trajectory -- only skip work that would reproduce known numbers.

The cache is bounded by a byte budget (distribution checkpoints are the
payload) with least-recently-used eviction, and is shared process-wide by
default so consecutive :class:`~repro.transient.model.TransientModel` solves
in one process -- cache-miss sweep points, repeated CLI runs, benchmark A/B
arms -- reuse each other's segments.  Worker processes of a transient sweep
each hold their own instance (the cache is deliberately not shipped across
process boundaries), which keeps parallel sweeps bitwise identical to serial
ones.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.parameters import GprsModelParameters
from repro.obs.metrics import current_registry

__all__ = [
    "PropagatorCache",
    "SegmentReplay",
    "default_propagator_cache",
    "segment_key",
]

#: Default byte budget of the process-wide cache (checkpoint payload only).
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


def segment_key(
    params: GprsModelParameters,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
    truncation_tol: float,
    steady_state_tol: float,
    max_step_mean: float,
    intervals: tuple[float, ...],
    initial: np.ndarray,
) -> str:
    """Content digest of one segment propagation.

    Hashes everything the propagation is a function of: the effective segment
    parameters, the balanced handover rates (together they determine the
    generator bitwise, through the bitwise-faithful template path), the
    uniformisation tolerances, the exact advance intervals (the ``dt`` of each
    :meth:`advance_to` call, which absorb the sampling grid and the segment
    duration), and the raw bytes of the starting distribution.  Any
    difference anywhere -- a parameter, an interval ulp, a single bit of the
    start vector -- changes the key, so a hit guarantees a bitwise-faithful
    replay.
    """
    rendering = json.dumps(
        asdict(params), sort_keys=True, separators=(",", ":"), default=repr
    )
    digest = hashlib.sha256()
    digest.update(rendering.encode("utf-8"))
    digest.update(
        np.array(
            [
                gsm_handover_arrival_rate,
                gprs_handover_arrival_rate,
                truncation_tol,
                steady_state_tol,
                max_step_mean,
            ]
        ).tobytes()
    )
    digest.update(np.asarray(intervals, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(initial).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class SegmentReplay:
    """The recorded outcome of one segment propagation.

    Attributes
    ----------
    checkpoints:
        The distribution after each advance target, in target order.  The
        record stores its own read-only copies (one per distinct array -- a
        segment that early-stops repeats the same vector across targets), so
        neither the producing solve nor any consumer of a replayed result
        can mutate cached data.
    matvecs:
        Matrix-vector products the original run spent (a replay spends 0).
    stationary_offset_s:
        Segment-relative time at which the stationarity shortcut fired
        (``None`` = the segment never early-stopped).
    stationary_residual:
        The achieved stationarity residual ``||pi P - pi||_inf`` at the early
        stop (``None`` when the segment never early-stopped).
    """

    checkpoints: tuple[np.ndarray, ...]
    matvecs: int
    stationary_offset_s: float | None
    stationary_residual: float | None

    def __post_init__(self) -> None:
        # Snapshot the checkpoints: aliased entries (an early-stopped segment
        # hands the same vector to every remaining target) stay aliased, so
        # the copy -- like the byte accounting -- is per distinct array.
        copies: dict[int, np.ndarray] = {}
        frozen = []
        for checkpoint in self.checkpoints:
            copy = copies.get(id(checkpoint))
            if copy is None:
                copy = checkpoint.copy()
                copy.setflags(write=False)
                copies[id(checkpoint)] = copy
            frozen.append(copy)
        object.__setattr__(self, "checkpoints", tuple(frozen))

    @property
    def nbytes(self) -> int:
        distinct = {id(checkpoint): checkpoint for checkpoint in self.checkpoints}
        return sum(checkpoint.nbytes for checkpoint in distinct.values())


def _replay_digest(replay: SegmentReplay) -> str:
    """Content digest of a replay's checkpoint payload.

    Recorded at ``put`` time and re-verified on every hit, so a cached replay
    whose arrays were corrupted in place (a stray writer defeating the
    read-only flags, a buggy consumer, an injected fault) is detected and
    recomputed instead of silently replayed into a trajectory.
    """
    digest = hashlib.sha256()
    for checkpoint in replay.checkpoints:
        digest.update(np.ascontiguousarray(checkpoint).tobytes())
    return digest.hexdigest()[:16]


@dataclass
class PropagatorCache:
    """Bounded, LRU-evicting store of :class:`SegmentReplay` records.

    Entries carry the digest of their checkpoint bytes; a hit whose stored
    distributions no longer match that digest is dropped (counted under
    ``cache.propagator.corrupt``) and served as a miss, so corrupt state is
    re-solved rather than replayed.
    """

    max_bytes: int = DEFAULT_CACHE_BYTES
    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _bytes: int = 0

    def get(self, key: str) -> SegmentReplay | None:
        """Return the replay stored under ``key`` (refreshing its LRU slot)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            current_registry().count("cache.propagator.misses")
            return None
        replay, digest = entry
        if _replay_digest(replay) != digest:
            self._entries.pop(key)
            self._bytes -= replay.nbytes
            self.corrupt += 1
            self.misses += 1
            current_registry().count("cache.propagator.corrupt")
            current_registry().count("cache.propagator.misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        current_registry().count("cache.propagator.hits")
        return replay

    def put(self, key: str, replay: SegmentReplay) -> None:
        """Store ``replay``, evicting least-recently-used entries over budget."""
        if replay.nbytes > self.max_bytes:
            return
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._bytes -= previous[0].nbytes
        self._entries[key] = (replay, _replay_digest(replay))
        self._bytes += replay.nbytes
        while self._bytes > self.max_bytes and self._entries:
            _, (evicted, _) = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            current_registry().count("cache.propagator.evictions")
        current_registry().gauge("cache.propagator.bytes", self._bytes)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stored_bytes(self) -> int:
        return self._bytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0


_DEFAULT_CACHE: PropagatorCache | None = None


def default_propagator_cache() -> PropagatorCache:
    """Return the process-wide cache shared by default across solves."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = PropagatorCache()
    return _DEFAULT_CACHE
