"""Memoised segment propagators: checkpointed replay of repeated segments.

Schedules repeat themselves: a diurnal cycle visits the same load twice a day
(the cosine is symmetric around its peak), staircase sweeps walk the same
multipliers up and down, and every re-run of a trajectory -- a warm cache
miss on a neighbouring sweep point, an A/B comparison, the second day of a
periodic schedule whose first day has settled -- re-solves propagations it
has already performed.  The uniformisation matvec chain is by far the
dominant cost of a transient solve, and it is a *pure function*: the
distributions a segment produces are fully determined by the segment's
generator (itself a pure function of the effective parameters and the
balanced handover rates), the chain of advance intervals, the uniformisation
tolerances, and the distribution the segment starts from.

:class:`PropagatorCache` therefore keys a **content digest** of exactly those
inputs to a :class:`SegmentReplay`: the distribution checkpoints at each
advance target, the final distribution, the matvec count the original run
spent, and the early-stop bookkeeping (whether the stationarity shortcut
fired, at which offset, and at what achieved residual).  A repeated identical
(configuration, durations, truncation, start) segment is then served by
*checkpointed replay* -- the recorded distributions are handed back, bitwise
identical to what re-running the matvec chain would produce, at zero matvec
cost.  A near-miss (any input differing, even by one ulp in an interval)
simply misses the cache and is recomputed, so memoisation can never change a
trajectory -- only skip work that would reproduce known numbers.

The cache is bounded by a byte budget (distribution checkpoints are the
payload) with least-recently-used eviction, and is shared process-wide by
default so consecutive :class:`~repro.transient.model.TransientModel` solves
in one process -- cache-miss sweep points, repeated CLI runs, benchmark A/B
arms -- reuse each other's segments.  Worker processes of a transient sweep
each hold their own instance (the cache is deliberately not shipped across
process boundaries), which keeps parallel sweeps bitwise identical to serial
ones.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.parameters import GprsModelParameters
from repro.obs.metrics import current_registry

__all__ = [
    "ENTRY_OVERHEAD_BYTES",
    "PropagatorCache",
    "SegmentReplay",
    "default_propagator_cache",
    "segment_key",
]

#: Default byte budget of the process-wide cache (checkpoint payload only).
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


def segment_key(
    params: GprsModelParameters,
    *,
    gsm_handover_arrival_rate: float,
    gprs_handover_arrival_rate: float,
    truncation_tol: float,
    steady_state_tol: float,
    max_step_mean: float,
    intervals: tuple[float, ...],
    initial: np.ndarray,
) -> str:
    """Content digest of one segment propagation.

    Hashes everything the propagation is a function of: the effective segment
    parameters, the balanced handover rates (together they determine the
    generator bitwise, through the bitwise-faithful template path), the
    uniformisation tolerances, the exact advance intervals (the ``dt`` of each
    :meth:`advance_to` call, which absorb the sampling grid and the segment
    duration), and the raw bytes of the starting distribution.  Any
    difference anywhere -- a parameter, an interval ulp, a single bit of the
    start vector -- changes the key, so a hit guarantees a bitwise-faithful
    replay.
    """
    rendering = json.dumps(
        asdict(params), sort_keys=True, separators=(",", ":"), default=repr
    )
    digest = hashlib.sha256()
    digest.update(rendering.encode("utf-8"))
    digest.update(
        np.array(
            [
                gsm_handover_arrival_rate,
                gprs_handover_arrival_rate,
                truncation_tol,
                steady_state_tol,
                max_step_mean,
            ]
        ).tobytes()
    )
    digest.update(np.asarray(intervals, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(initial).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class SegmentReplay:
    """The recorded outcome of one segment propagation.

    Attributes
    ----------
    checkpoints:
        The distribution after each advance target, in target order.  The
        record stores its own read-only copies (one per distinct array -- a
        segment that early-stops repeats the same vector across targets), so
        neither the producing solve nor any consumer of a replayed result
        can mutate cached data.
    matvecs:
        Matrix-vector products the original run spent (a replay spends 0).
    stationary_offset_s:
        Segment-relative time at which the stationarity shortcut fired
        (``None`` = the segment never early-stopped).
    stationary_residual:
        The achieved stationarity residual ``||pi P - pi||_inf`` at the early
        stop (``None`` when the segment never early-stopped).
    """

    checkpoints: tuple[np.ndarray, ...]
    matvecs: int
    stationary_offset_s: float | None
    stationary_residual: float | None

    def __post_init__(self) -> None:
        # Snapshot the checkpoints: aliased entries (an early-stopped segment
        # hands the same vector to every remaining target) stay aliased, so
        # the copy -- like the byte accounting -- is per distinct array.
        copies: dict[int, np.ndarray] = {}
        frozen = []
        for checkpoint in self.checkpoints:
            copy = copies.get(id(checkpoint))
            if copy is None:
                copy = checkpoint.copy()
                copy.setflags(write=False)
                copies[id(checkpoint)] = copy
            frozen.append(copy)
        object.__setattr__(self, "checkpoints", tuple(frozen))

    @property
    def nbytes(self) -> int:
        distinct = {id(checkpoint): checkpoint for checkpoint in self.checkpoints}
        return sum(checkpoint.nbytes for checkpoint in distinct.values())


def _store_key(key: str) -> str:
    """Artifact-store key of one segment digest (lazy import: see module)."""
    from repro.store.artifacts import artifact_key

    return artifact_key("propagator", {"segment": key})


def _maybe_float(value) -> float | None:
    return None if value is None else float(value)


def _replay_digest(replay: SegmentReplay) -> str:
    """Content digest of a replay's checkpoint payload.

    Recorded at ``put`` time and re-verified on every hit, so a cached replay
    whose arrays were corrupted in place (a stray writer defeating the
    read-only flags, a buggy consumer, an injected fault) is detected and
    recomputed instead of silently replayed into a trajectory.
    """
    digest = hashlib.sha256()
    for checkpoint in replay.checkpoints:
        digest.update(np.ascontiguousarray(checkpoint).tobytes())
    return digest.hexdigest()[:16]


#: Per-entry bookkeeping bytes beyond the checkpoint payload: the 16-hex
#: verification digest, the scalar metadata (matvec count, early-stop offset
#: and residual) and the OrderedDict slot itself.  Budgets and the
#: ``cache.propagator.bytes`` gauge include it so the in-memory accounting
#: reports consistently with the artifact store's on-disk sizes (which pay
#: the same metadata inside each archive).
ENTRY_OVERHEAD_BYTES = 160


@dataclass
class PropagatorCache:
    """Bounded, LRU-evicting store of :class:`SegmentReplay` records.

    Entries carry the digest of their checkpoint bytes; a hit whose stored
    distributions no longer match that digest is dropped (counted under
    ``cache.propagator.corrupt``) and served as a miss, so corrupt state is
    re-solved rather than replayed.

    When an ambient :class:`~repro.store.artifacts.ArtifactStore` is active
    (or one is passed as ``store``), the cache reads and writes through it:
    every ``put`` also persists the replay as a binary artifact, and an
    in-memory miss falls back to the store before reporting a true miss --
    so parallel trajectory workers and entirely fresh processes replay
    segments their siblings or predecessors solved.  Store artifacts are the
    exact checkpoint bytes, so a store hit preserves the bitwise-replay
    guarantee.  ``store=None`` disables the tier (per-process behaviour,
    exactly as before).

    Thread-safe: the LRU dict, byte accounting and hit/miss counters all
    mutate under one re-entrant lock, so the service tier's concurrent
    solve threads can share the process-wide default cache.
    """

    max_bytes: int = DEFAULT_CACHE_BYTES
    store: object = "ambient"
    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    store_hits: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _bytes: int = 0
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @staticmethod
    def entry_bytes(replay: SegmentReplay) -> int:
        """Bytes one stored entry accounts for (payload + bookkeeping)."""
        return replay.nbytes + ENTRY_OVERHEAD_BYTES

    def _resolve_store(self):
        if self.store == "ambient":
            from repro.store.artifacts import current_store

            return current_store()
        return self.store

    def get(self, key: str) -> SegmentReplay | None:
        """Return the replay stored under ``key`` (refreshing its LRU slot)."""
        with self._lock:
            return self._get_locked(key)

    def _get_locked(self, key: str) -> SegmentReplay | None:
        entry = self._entries.get(key)
        if entry is None:
            replay = self._load_from_store(key)
            if replay is not None:
                self.hits += 1
                self.store_hits += 1
                current_registry().count("cache.propagator.hits")
                current_registry().count("cache.propagator.store_hits")
                return replay
            self.misses += 1
            current_registry().count("cache.propagator.misses")
            return None
        replay, digest = entry
        if _replay_digest(replay) != digest:
            self._entries.pop(key)
            self._bytes -= self.entry_bytes(replay)
            self.corrupt += 1
            self.misses += 1
            current_registry().count("cache.propagator.corrupt")
            current_registry().count("cache.propagator.misses")
            current_registry().gauge("cache.propagator.bytes", self._bytes)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        current_registry().count("cache.propagator.hits")
        return replay

    def put(self, key: str, replay: SegmentReplay) -> None:
        """Store ``replay``, evicting least-recently-used entries over budget."""
        with self._lock:
            if self.entry_bytes(replay) <= self.max_bytes:
                self._insert(key, replay)
            self._persist_to_store(key, replay)

    def _insert(self, key: str, replay: SegmentReplay) -> None:
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._bytes -= self.entry_bytes(previous[0])
        self._entries[key] = (replay, _replay_digest(replay))
        self._bytes += self.entry_bytes(replay)
        while self._bytes > self.max_bytes and self._entries:
            _, (evicted, _) = self._entries.popitem(last=False)
            self._bytes -= self.entry_bytes(evicted)
            current_registry().count("cache.propagator.evictions")
        current_registry().gauge("cache.propagator.bytes", self._bytes)

    def _load_from_store(self, key: str) -> SegmentReplay | None:
        store = self._resolve_store()
        if store is None:
            return None
        loaded = store.get(_store_key(key))
        if loaded is None:
            return None
        arrays, meta = loaded
        try:
            alias = [int(position) for position in meta["alias"]]
            distinct = [arrays[f"c{index}"] for index in range(len(set(alias)))]
            checkpoints = tuple(distinct[position] for position in alias)
            replay = SegmentReplay(
                checkpoints=checkpoints,
                matvecs=int(meta["matvecs"]),
                stationary_offset_s=_maybe_float(meta.get("stationary_offset_s")),
                stationary_residual=_maybe_float(meta.get("stationary_residual")),
            )
        except (KeyError, IndexError, TypeError, ValueError):
            return None  # malformed artifact: treat as a plain miss
        if self.entry_bytes(replay) <= self.max_bytes:
            self._insert(key, replay)
        return replay

    def _persist_to_store(self, key: str, replay: SegmentReplay) -> None:
        store = self._resolve_store()
        if store is None:
            return
        positions: dict[int, int] = {}
        arrays: dict[str, np.ndarray] = {}
        alias: list[int] = []
        for checkpoint in replay.checkpoints:
            position = positions.get(id(checkpoint))
            if position is None:
                position = len(positions)
                positions[id(checkpoint)] = position
                arrays[f"c{position}"] = checkpoint
            alias.append(position)
        meta = {
            "alias": alias,
            "matvecs": replay.matvecs,
            "stationary_offset_s": replay.stationary_offset_s,
            "stationary_residual": replay.stationary_residual,
        }
        try:
            store.put(_store_key(key), arrays, meta)
        except OSError:
            pass  # an unwritable store degrades to per-process caching

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stored_bytes(self) -> int:
        return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
        current_registry().gauge("cache.propagator.bytes", 0.0)


_DEFAULT_CACHE: PropagatorCache | None = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_propagator_cache() -> PropagatorCache:
    """Return the process-wide cache shared by default across solves."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        with _DEFAULT_CACHE_LOCK:
            if _DEFAULT_CACHE is None:
                _DEFAULT_CACHE = PropagatorCache()
    return _DEFAULT_CACHE
