"""Time-dependent solution of the GPRS cell under a workload schedule.

:class:`TransientModel` turns the steady-state CTMC of the paper into a
time-dependent one.  A :class:`~repro.transient.schedule.WorkloadProfile`
describes the workload as piecewise-constant segments; within each segment
the chain is time-homogeneous, so the solve walks the schedule:

1. **Per-segment generators through templates.**  Each segment's generator is
   produced by a :class:`~repro.core.template.GeneratorTemplate` shared
   across all segments with the same fixed configuration -- the transitions
   are enumerated once per distinct shape and only the ``data`` arrays are
   rewritten per segment (a ramp of N multiplier steps enumerates exactly
   once).
2. **Quasi-stationary handover rates.**  The handover balance of Eqs. (4)-(5)
   is re-solved per segment, seeded with the previous segment's balanced
   rates: the incoming handover flows track the schedule piecewise (the
   quasi-stationary approximation -- exact for the constant schedule, and the
   standard closure for slowly varying loads).
3. **Adaptive uniformisation.**  Within a segment the distribution advances
   from sample time to sample time by the uniformised Poisson series
   (:mod:`repro.markov.transient`), with the horizon split into bounded-mean
   steps.  Before each advance the stationarity residual ``||pi P - pi||_inf``
   is measured; once it falls below ``steady_state_tol`` the distribution is
   numerically invariant for the remainder of the segment and all further
   matrix-vector products are skipped (the early stop that makes long
   constant tails free).
4. **Distribution carried across breakpoints.**  At a segment boundary the
   state distribution continues unchanged.  If the segment changes the
   state-space *shape* (an outage dropping channels, a buffer resize), the
   distribution is remapped by clamping each coordinate into the new bounds
   and accumulating the mass -- physically, calls/packets/sessions beyond the
   new capacity are dropped at the breakpoint; a growing shape embeds the old
   states exactly.

The QoS measures of Eqs. (6)-(11) are evaluated at every sample time with the
active segment's parameters and handover rates, yielding the trajectory the
CLI and the scenario runtime report.  The CTMC measures (carried data
traffic, queue length, packet loss, delay, throughput) follow the transient
distribution and relax smoothly; the Erlang-loss measures (voice blocking,
session counts) inherit the quasi-stationary closure and step with the
segments -- exactly as in the steady-state model, where both families meet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.handover import HandoverBalance, balance_handover_rates
from repro.core.measures import compute_measures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.template import GeneratorTemplate
from repro.markov.transient import poisson_truncation_point, uniformize
from repro.obs.metrics import current_registry
from repro.obs.trace import current_tracer
from repro.transient.propagator import (
    PropagatorCache,
    SegmentReplay,
    default_propagator_cache,
    segment_key,
)
from repro.transient.schedule import WorkloadProfile

__all__ = ["SegmentTrace", "TrajectoryPoint", "TransientModel", "TransientResult"]


# ---------------------------------------------------------------------- #
# Uniformised propagation within one segment
# ---------------------------------------------------------------------- #
class _SegmentPropagator:
    """Advances a distribution under one fixed generator via uniformisation."""

    def __init__(self, generator, *, truncation_tol: float, max_step_mean: float):
        p, self.lam = uniformize(generator)
        # Row-vector products ``pi P`` dominate the cost; precompute the
        # transposed CSR so every product is a plain csr @ vector kernel.
        self._pt = p.T.tocsr()
        self._truncation_tol = truncation_tol
        self._max_step_mean = max_step_mean
        self.matvecs = 0

    def step(self, pi: np.ndarray) -> np.ndarray:
        """One application of the uniformised DTMC, ``pi P``."""
        self.matvecs += 1
        return self._pt @ pi

    def advance(
        self, pi: np.ndarray, dt: float, first_step: np.ndarray | None = None
    ) -> np.ndarray:
        """Propagate ``pi`` forward by ``dt`` seconds.

        ``first_step`` optionally supplies a precomputed ``pi P`` (the
        stationarity check's product) reused as the first series term, so the
        check costs nothing extra on segments that keep evolving.
        """
        if dt <= 0.0:
            return pi
        mean_total = self.lam * dt
        steps = max(1, int(np.ceil(mean_total / self._max_step_mean)))
        step_dt = dt / steps
        for index in range(steps):
            pi = self._series(
                pi, self.lam * step_dt, first_step if index == 0 else None
            )
        return pi

    def _series(
        self, pi: np.ndarray, mean: float, first_step: np.ndarray | None = None
    ) -> np.ndarray:
        truncation = poisson_truncation_point(mean, self._truncation_tol)
        result = np.zeros_like(pi)
        term = pi
        weight = np.exp(-mean)
        result += weight * term
        for k in range(1, truncation + 1):
            term = (
                first_step
                if k == 1 and first_step is not None
                else self.step(term)
            )
            weight *= mean / k
            if weight > 0:
                result += weight * term
        # Account for the truncated tail by renormalising.
        total = result.sum()
        if total > 0:
            result /= total
        return result


def _remap_distribution(
    pi: np.ndarray, old_space: GprsStateSpace, new_space: GprsStateSpace
) -> np.ndarray:
    """Carry a distribution across a state-space shape change.

    Every coordinate is clamped into the new bounds and the mass accumulated:
    at a capacity-losing breakpoint the users/packets beyond the new limits
    are dropped on the spot, at a capacity-gaining one the old states embed
    exactly.  Total probability mass is conserved.
    """
    states = old_space.all_states()
    n = np.minimum(states.gsm_calls, new_space.gsm_channels)
    k = np.minimum(states.buffered_packets, new_space.buffer_size)
    m = np.minimum(states.gprs_sessions, new_space.max_sessions)
    r = np.minimum(states.sessions_off, m)
    indices = new_space.index(n, k, m, r)
    remapped = np.zeros(new_space.size)
    np.add.at(remapped, indices, pi)
    return remapped


# ---------------------------------------------------------------------- #
# Results
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TrajectoryPoint:
    """The QoS measures at one sample time of the trajectory."""

    time_s: float
    segment: int
    arrival_rate: float
    values: dict[str, float]

    def metric(self, name: str) -> float:
        return self.values[name]

    def as_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "segment": self.segment,
            "arrival_rate": self.arrival_rate,
            "values": dict(self.values),
        }


@dataclass(frozen=True)
class SegmentTrace:
    """Diagnostics of one schedule segment's share of the solve."""

    index: int
    start_time_s: float
    end_time_s: float
    arrival_rate: float
    gsm_handover_rate: float
    gprs_handover_rate: float
    states: int
    template_reused: bool
    remapped: bool
    matvecs: int
    #: Time at which the stationarity residual fell below tolerance and the
    #: remaining propagation of the segment was skipped (``None`` = never).
    stationary_from_s: float | None
    #: Achieved stationarity residual ``||pi P - pi||_inf`` at the early stop
    #: (``None`` when the segment never early-stopped).
    stationarity_residual: float | None = None
    #: Whether this segment was served by a memoised propagator replay
    #: (``matvecs`` is then 0; the recorded residual is reported unchanged).
    replayed: bool = False

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "start_time_s": self.start_time_s,
            "end_time_s": self.end_time_s,
            "arrival_rate": self.arrival_rate,
            "gsm_handover_rate": self.gsm_handover_rate,
            "gprs_handover_rate": self.gprs_handover_rate,
            "states": self.states,
            "template_reused": self.template_reused,
            "remapped": self.remapped,
            "matvecs": self.matvecs,
            "stationary_from_s": self.stationary_from_s,
            "stationarity_residual": self.stationarity_residual,
            "replayed": self.replayed,
        }


@dataclass(frozen=True)
class TransientResult:
    """A solved QoS trajectory plus per-segment diagnostics.

    Attributes
    ----------
    points:
        One :class:`TrajectoryPoint` per sample time, in time order.
    segments:
        One :class:`SegmentTrace` per schedule segment.
    matvecs:
        Total matrix-vector products spent (the cost unit of uniformisation).
    templates_built:
        Distinct generator templates enumerated; segments beyond the first
        with the same fixed configuration only rewrite ``data`` arrays.
    early_stopped_segments:
        Segments whose propagation ended early on the stationarity residual.
    propagator_hits:
        Segments served by a memoised propagator replay instead of re-running
        the matvec chain (see :mod:`repro.transient.propagator`); their
        matvec cost is 0 and their sampled series are bitwise identical to a
        recomputation.
    """

    profile: WorkloadProfile
    base_parameters: GprsModelParameters
    points: tuple[TrajectoryPoint, ...]
    segments: tuple[SegmentTrace, ...]
    matvecs: int
    templates_built: int
    early_stopped_segments: int
    propagator_hits: int
    final_distribution: np.ndarray = field(repr=False, compare=False)

    @property
    def times(self) -> tuple[float, ...]:
        return tuple(point.time_s for point in self.points)

    def series(self, metric: str) -> tuple[float, ...]:
        """One measure across the trajectory, aligned with :attr:`times`."""
        return tuple(point.values[metric] for point in self.points)

    def peak(self, metric: str) -> float:
        """Largest value of ``metric`` along the trajectory."""
        return max(self.series(metric))

    def time_averages(self) -> dict[str, float]:
        """Trapezoidal time average of every measure over the trajectory.

        This is the scalar summary the scenario runtime stores per sweep
        point (same keys as the steady-state measures, so transient sweep
        points render through the same reports).
        """
        times = np.array(self.times)
        if times.shape[0] == 1 or times[-1] <= times[0]:
            return dict(self.points[0].values)
        weights = np.zeros(times.shape[0])
        gaps = np.diff(times)
        weights[:-1] += 0.5 * gaps
        weights[1:] += 0.5 * gaps
        span = times[-1] - times[0]
        averages = {}
        for key in self.points[0].values:
            series = np.array([point.values[key] for point in self.points])
            averages[key] = float(np.dot(weights, series) / span)
        return averages

    def peaks(self) -> dict[str, float]:
        """Largest value of every measure along the trajectory."""
        return {key: self.peak(key) for key in self.points[0].values}

    def as_dict(self) -> dict:
        """JSON-serialisable rendering (used by the cache and ``--json``)."""
        return {
            "profile": {
                "name": self.profile.name,
                "digest": self.profile.digest(),
                "initial": self.profile.initial,
                "duration_s": self.profile.total_duration_s,
                "segments": self.profile.schedule.number_of_segments,
            },
            "base_arrival_rate": self.base_parameters.total_call_arrival_rate,
            "times": list(self.times),
            "points": [point.as_dict() for point in self.points],
            "segments": [trace.as_dict() for trace in self.segments],
            "time_averages": self.time_averages(),
            "peaks": self.peaks(),
            "matvecs": self.matvecs,
            "templates_built": self.templates_built,
            "early_stopped_segments": self.early_stopped_segments,
            "propagator_hits": self.propagator_hits,
        }


# ---------------------------------------------------------------------- #
# The transient model
# ---------------------------------------------------------------------- #
class TransientModel:
    """Time-dependent GPRS cell model under a piecewise-constant workload.

    Parameters
    ----------
    profile:
        The workload schedule, sampling grid and initial condition.
    base_parameters:
        Parameters of the unperturbed cell; each segment's multiplier and
        overrides apply on top (the arrival rate of this object is the sweep
        axis of transient sweeps).
    solver_method / solver_tol:
        Steady-state solver used for the ``"stationary"`` initial condition
        (see :class:`~repro.core.model.GprsMarkovModel`).
    truncation_tol:
        Error bound of the truncated Poisson series per uniformisation step.
    steady_state_tol:
        Stationarity residual ``||pi P - pi||_inf`` below which the remaining
        propagation of a segment is skipped (0 disables the early stop).
        The residual equals ``||pi Q||_inf / Lambda``, not the distance to
        stationarity: on a slowly mixing chain the skipped tail can still be
        ``residual * Lambda / gap`` away from the true fixed point, so
        tighten (or disable) the threshold when a trajectory must *converge*
        to a target accuracy rather than merely stop changing.
    max_step_mean:
        Largest Poisson mean per uniformisation step; longer horizons are
        split to keep the series weights well-conditioned.  Capped at 700:
        beyond that ``exp(-mean)`` underflows double precision and the series
        weights would collapse to zero.
    share_templates:
        When ``False`` every segment enumerates its own fresh
        :class:`~repro.core.template.GeneratorTemplate` even if an earlier
        segment had the identical fixed configuration -- the A/B knob of the
        template-reuse benchmark.  Results are bitwise identical either way
        (templates are bitwise-faithful).
    memoise_propagators:
        Serve repeated identical segments -- same effective configuration,
        handover rates, advance intervals, tolerances *and* starting
        distribution -- by checkpointed replay from the propagator cache
        instead of re-running the matvec chain (see
        :mod:`repro.transient.propagator`).  Replays are bitwise identical to
        recomputation by construction; ``False`` disables the cache entirely
        (the A/B knob of the memoisation benchmark).
    propagator_cache:
        The :class:`~repro.transient.propagator.PropagatorCache` to use;
        defaults to the process-wide shared cache, so repeated solves in one
        process (re-runs, A/B arms, neighbouring sweep points) reuse each
        other's segments.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        base_parameters: GprsModelParameters,
        *,
        solver_method: str = "auto",
        solver_tol: float = 1e-10,
        truncation_tol: float = 1e-12,
        steady_state_tol: float = 1e-9,
        max_step_mean: float = 200.0,
        share_templates: bool = True,
        memoise_propagators: bool = True,
        propagator_cache: PropagatorCache | None = None,
    ) -> None:
        if not isinstance(profile, WorkloadProfile):
            raise ValueError("profile must be a WorkloadProfile")
        if truncation_tol <= 0:
            raise ValueError("truncation_tol must be positive")
        if steady_state_tol < 0:
            raise ValueError("steady_state_tol must be non-negative")
        if not 0 < max_step_mean <= 700.0:
            # exp(-mean) underflows at ~745; past it every series weight is
            # exactly 0.0 and the step would return a zero distribution.
            raise ValueError("max_step_mean must be in (0, 700]")
        self._profile = profile
        self._base = base_parameters
        self._solver = solver_method
        self._solver_tol = solver_tol
        self._truncation_tol = truncation_tol
        self._steady_tol = steady_state_tol
        self._max_step_mean = max_step_mean
        self._share_templates = share_templates
        self._memoise = memoise_propagators
        self._propagator_cache = propagator_cache

    @property
    def profile(self) -> WorkloadProfile:
        return self._profile

    def segment_parameters(self) -> list[GprsModelParameters]:
        """The effective parameters of every segment (base plus overrides)."""
        return [
            segment.parameters(self._base)
            for segment in self._profile.schedule.segments
        ]

    # ------------------------------------------------------------------ #
    # Scaffolding
    # ------------------------------------------------------------------ #
    def _build_scaffolding(
        self, seg_params: list[GprsModelParameters]
    ) -> tuple[list[GprsStateSpace], list[GeneratorTemplate], list[bool], int]:
        """One state space per shape and one template per fixed configuration."""
        spaces: dict[tuple, GprsStateSpace] = {}
        templates: dict[tuple, GeneratorTemplate] = {}
        seg_spaces: list[GprsStateSpace] = []
        seg_templates: list[GeneratorTemplate] = []
        reused: list[bool] = []
        built = 0
        for index, params in enumerate(seg_params):
            shape = (params.gsm_channels, params.buffer_size, params.max_gprs_sessions)
            space = spaces.get(shape)
            if space is None:
                space = GprsStateSpace(
                    gsm_channels=params.gsm_channels,
                    buffer_size=params.buffer_size,
                    max_sessions=params.max_gprs_sessions,
                )
                spaces[shape] = space
            fingerprint = GeneratorTemplate.fingerprint_of(params)
            template = templates.get(fingerprint) if self._share_templates else None
            if template is None:
                template = GeneratorTemplate.build(params, space)
                templates[fingerprint] = template
                built += 1
                reused.append(False)
            else:
                reused.append(True)
            seg_spaces.append(space)
            seg_templates.append(template)
        return seg_spaces, seg_templates, reused, built

    def _initial_distribution(
        self,
        params: GprsModelParameters,
        space: GprsStateSpace,
        template: GeneratorTemplate,
    ) -> np.ndarray:
        if self._profile.initial == "empty":
            pi = np.zeros(space.size)
            pi[space.index(0, 0, 0, 0)] = 1.0
            return pi
        # "stationary": the steady state of the first segment's configuration,
        # solved through the very same template/handover path -- a constant
        # schedule therefore starts exactly on the fixed point the
        # steady-state solver reports (the validation anchor's premise).
        model = GprsMarkovModel(
            params,
            solver_method=self._solver,
            solver_tol=self._solver_tol,
            generator_template=template,
            state_space=space,
        )
        return model.stationary_distribution()

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def solve(self) -> TransientResult:
        """Walk the schedule and return the sampled QoS trajectory."""
        with current_tracer().span(
            "transient.solve", segments=self._profile.schedule.number_of_segments
        ):
            result = self._solve_impl()
        registry = current_registry()
        registry.count("transient.solves")
        registry.count("transient.segments", len(result.segments))
        registry.count("transient.matvecs", result.matvecs)
        registry.count("transient.templates_built", result.templates_built)
        registry.count("transient.early_stopped_segments", result.early_stopped_segments)
        registry.count("transient.replayed_segments", result.propagator_hits)
        return result

    def _solve_impl(self) -> TransientResult:
        schedule = self._profile.schedule
        tracer = current_tracer()
        seg_params = self.segment_parameters()
        with tracer.span("transient.scaffolding"):
            seg_spaces, seg_templates, seg_reused, templates_built = (
                self._build_scaffolding(seg_params)
            )

        # Quasi-stationary handover rates, each *distinct* configuration
        # balanced once (seeded by the previous segment's rates) and reused
        # verbatim for every repetition.  The balance is a pure function of
        # the segment parameters, so reuse is at least as accurate as
        # re-balancing -- and it makes repeated segments bitwise-identical
        # configurations, which is what lets the propagator cache serve them
        # (a re-balance from a drifted seed moves the rates by ulps forever).
        balances: list[HandoverBalance] = []
        balance_by_params: dict[GprsModelParameters, HandoverBalance] = {}
        previous: HandoverBalance | None = None
        with tracer.span("transient.handover_balance"):
            for params in seg_params:
                balance = balance_by_params.get(params)
                if balance is None:
                    balance = balance_handover_rates(
                        params,
                        initial_gsm_handover_rate=(
                            None
                            if previous is None
                            else previous.gsm_handover_arrival_rate
                        ),
                        initial_gprs_handover_rate=(
                            None
                            if previous is None
                            else previous.gprs_handover_arrival_rate
                        ),
                    )
                    balance_by_params[params] = balance
                balances.append(balance)
                previous = balance

        sample_times = self._profile.sample_times()
        sample_segments = [schedule.segment_at(t) for t in sample_times]

        with tracer.span("transient.initial_distribution"):
            pi = self._initial_distribution(
                seg_params[0], seg_spaces[0], seg_templates[0]
            )

        cache = None
        if self._memoise:
            # Explicit None test: an empty PropagatorCache is falsy (__len__).
            cache = (
                self._propagator_cache
                if self._propagator_cache is not None
                else default_propagator_cache()
            )

        points: list[TrajectoryPoint] = []
        traces: list[SegmentTrace] = []
        total_matvecs = 0
        early_stops = 0
        propagator_hits = 0
        sample_cursor = 0
        current_time = 0.0
        segment_start = 0.0
        last_segment = schedule.number_of_segments - 1

        for seg_index in range(schedule.number_of_segments):
            params = seg_params[seg_index]
            space = seg_spaces[seg_index]
            balance = balances[seg_index]
            segment_end = segment_start + schedule.segments[seg_index].duration_s

            remapped = False
            if seg_index > 0 and space is not seg_spaces[seg_index - 1]:
                pi = _remap_distribution(pi, seg_spaces[seg_index - 1], space)
                remapped = True

            # The advance targets of this segment: every sample time falling
            # inside it, plus the breakpoint carry (except after the final
            # segment).  Their consecutive gaps are the exact dt sequence the
            # propagation is a function of -- the replay key's time axis.
            segment_samples: list[float] = []
            while (
                sample_cursor < len(sample_times)
                and sample_segments[sample_cursor] == seg_index
            ):
                segment_samples.append(sample_times[sample_cursor])
                sample_cursor += 1
            targets = list(segment_samples)
            if seg_index < last_segment:
                # Carry the distribution to the breakpoint even when no
                # sample touches the remainder of the segment.
                targets.append(segment_end)
            intervals: list[float] = []
            previous_time = current_time
            for target in targets:
                intervals.append(max(0.0, target - previous_time))
                previous_time = target

            key = None
            replay = None
            if cache is not None and targets:
                key = segment_key(
                    params,
                    gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
                    gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
                    truncation_tol=self._truncation_tol,
                    steady_state_tol=self._steady_tol,
                    max_step_mean=self._max_step_mean,
                    intervals=tuple(intervals),
                    initial=pi,
                )
                replay = cache.get(key)

            stationary_from: float | None = None
            stationary_residual: float | None = None

            if replay is not None:
                # Checkpointed replay: the recorded distributions are what
                # the matvec chain would reproduce, served at zero cost.
                propagator_hits += 1
                segment_matvecs = 0
                for position, target in enumerate(targets):
                    pi = replay.checkpoints[position]
                    current_time = target
                    if position < len(segment_samples):
                        points.append(
                            TrajectoryPoint(
                                time_s=target,
                                segment=seg_index,
                                arrival_rate=params.total_call_arrival_rate,
                                values=compute_measures(
                                    params, space, pi, balance
                                ).as_dict(),
                            )
                        )
                if replay.stationary_offset_s is not None:
                    stationary_from = segment_start + replay.stationary_offset_s
                    stationary_residual = replay.stationary_residual
            else:
                generator = seg_templates[seg_index].generator(
                    params,
                    gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
                    gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
                )
                propagator = _SegmentPropagator(
                    generator,
                    truncation_tol=self._truncation_tol,
                    max_step_mean=self._max_step_mean,
                )

                def advance_to(target: float) -> None:
                    nonlocal pi, current_time, stationary_from, stationary_residual
                    dt = max(0.0, target - current_time)
                    if dt > 0.0 and stationary_from is None:
                        # One product decides whether any more are needed:
                        # once the residual stalls the distribution is
                        # invariant for the rest of this (time-homogeneous)
                        # segment.  A segment that keeps evolving reuses the
                        # product as the first series term, so the check
                        # itself costs nothing extra.
                        stepped = propagator.step(pi)
                        residual = float(np.max(np.abs(stepped - pi)))
                        if residual <= self._steady_tol:
                            stationary_from = current_time
                            stationary_residual = residual
                        else:
                            pi = propagator.advance(pi, dt, first_step=stepped)
                    current_time = target

                checkpoints: list[np.ndarray] = []
                for position, target in enumerate(targets):
                    advance_to(target)
                    checkpoints.append(pi)
                    if position < len(segment_samples):
                        points.append(
                            TrajectoryPoint(
                                time_s=target,
                                segment=seg_index,
                                arrival_rate=params.total_call_arrival_rate,
                                values=compute_measures(
                                    params, space, pi, balance
                                ).as_dict(),
                            )
                        )
                segment_matvecs = propagator.matvecs
                if key is not None:
                    cache.put(
                        key,
                        SegmentReplay(
                            checkpoints=tuple(checkpoints),
                            matvecs=segment_matvecs,
                            stationary_offset_s=(
                                None
                                if stationary_from is None
                                else stationary_from - segment_start
                            ),
                            stationary_residual=stationary_residual,
                        ),
                    )

            if stationary_from is not None:
                early_stops += 1
            traces.append(
                SegmentTrace(
                    index=seg_index,
                    start_time_s=segment_start,
                    end_time_s=segment_end,
                    arrival_rate=params.total_call_arrival_rate,
                    gsm_handover_rate=balance.gsm_handover_arrival_rate,
                    gprs_handover_rate=balance.gprs_handover_arrival_rate,
                    states=space.size,
                    template_reused=seg_reused[seg_index],
                    remapped=remapped,
                    matvecs=segment_matvecs,
                    stationary_from_s=stationary_from,
                    stationarity_residual=stationary_residual,
                    replayed=replay is not None,
                )
            )
            total_matvecs += segment_matvecs
            segment_start = segment_end

        return TransientResult(
            profile=self._profile,
            base_parameters=self._base,
            points=tuple(points),
            segments=tuple(traces),
            matvecs=total_matvecs,
            templates_built=templates_built,
            early_stopped_segments=early_stops,
            propagator_hits=propagator_hits,
            # A replayed final segment hands out the cache's read-only copy;
            # the result's distribution must stay writable (and detached from
            # the cache) regardless of how it was produced.
            final_distribution=pi if pi.flags.writeable else pi.copy(),
        )
