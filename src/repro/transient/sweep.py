"""Arrival-rate sweeps of transient trajectories, cached and parallel.

A transient sweep point is one full :class:`~repro.transient.model.TransientModel`
trajectory at one base arrival rate: the swept rate scales the whole schedule
(each segment's multiplier composes with it), so a sweep answers "how does
the busy-hour ramp look at light vs. heavy base load".  Unlike the warm
chains of the steady-state sweeps, trajectories at different base rates share
no state -- each starts from its own initial condition and walks its own
schedule -- so the executor parallelises the *trajectories themselves*: one
pool task per uncached rate, identical code on the serial path, results
reassembled in sweep order (``jobs = N`` is bitwise identical to serial).

Each solved trajectory is stored in the content-addressed result cache under
a key that hashes the effective base-cell parameters *plus the profile
rendering* (schedule, sampling grid, initial condition), with the computation
kind set to ``"transient"`` -- two profiles never share entries, and a
transient point can never collide with a steady-state or network point of
the same parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.transient.model import TransientModel
from repro.transient.schedule import WorkloadProfile

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.runtime reaches into this package for
    # its scenario registry, so module-level imports here would make the
    # dependency bidirectional (repro.transient stays importable standalone).
    from repro.experiments.scale import ExperimentScale
    from repro.runtime.cache import ResultCache
    from repro.runtime.spec import ScenarioSpec

__all__ = [
    "TransientSweepPoint",
    "TransientSweepResult",
    "run_transient_sweep",
    "transient_sweep_payloads",
]


@dataclass(frozen=True)
class TransientSweepPoint:
    """One solved (or cache-served) trajectory of a transient sweep."""

    index: int
    arrival_rate: float
    payload: dict
    from_cache: bool = False

    @property
    def times(self) -> tuple[float, ...]:
        return tuple(self.payload["times"])

    @property
    def time_averages(self) -> dict[str, float]:
        return self.payload["time_averages"]

    def trajectory(self, metric: str) -> tuple[float, ...]:
        """One measure over time at this base rate, aligned with :attr:`times`."""
        return tuple(point["values"][metric] for point in self.payload["points"])


@dataclass(frozen=True)
class TransientSweepResult:
    """All trajectories of one transient scenario sweep, in sweep order."""

    spec: "ScenarioSpec"
    scale: "ExperimentScale"
    points: tuple[TransientSweepPoint, ...]
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def arrival_rates(self) -> tuple[float, ...]:
        return tuple(point.arrival_rate for point in self.points)

    def series(self, metric: str) -> tuple[float, ...]:
        """The time-averaged ``metric`` across the sweep of base rates."""
        return tuple(point.time_averages[metric] for point in self.points)

    def as_dict(self) -> dict:
        return {
            "scenario": self.spec.to_dict(),
            "scale": self.scale.to_dict(),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "points": [
                {
                    "index": point.index,
                    "arrival_rate": point.arrival_rate,
                    "from_cache": point.from_cache,
                    **point.payload,
                }
                for point in self.points
            ],
        }


def _solve_trajectory_task(job: tuple) -> tuple[dict, dict]:
    """Solve one trajectory (worker entry point; top-level so it pickles).

    The serial path calls the very same function, which is what keeps
    ``jobs = N`` bitwise identical to serial execution.  Returns
    ``(payload, metrics_export)``; the export piggybacks the worker
    registry's delta home, and the parent merges it only when it crossed a
    process boundary (PID guard), so the serial path never double-counts.
    """
    from repro.obs.metrics import current_registry, export_delta
    from repro.runtime.spec import parameters_from_dict

    baseline = current_registry().snapshot()
    params_dict, profile_dict, solver, solver_tol, warm = job
    params = parameters_from_dict(params_dict)
    profile = WorkloadProfile.from_dict(profile_dict)
    model = TransientModel(
        profile,
        params,
        solver_method=solver,
        solver_tol=solver_tol,
        share_templates=warm,
    )
    return model.solve().as_dict(), export_delta(baseline)


def transient_sweep_payloads(
    spec: "ScenarioSpec",
    scale: "ExperimentScale",
    *,
    solver_tol: float = 1e-9,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    warm: bool = True,
    rates: tuple[float, ...] | None = None,
) -> list[tuple[dict, bool]]:
    """Solve every trajectory of a transient scenario sweep, cache-aware.

    Returns one ``(payload, from_cache)`` pair per base arrival rate, in
    sweep order; payloads are
    :meth:`~repro.transient.model.TransientResult.as_dict` renderings.
    ``warm=False`` (the ``--cold`` A/B knob) disables template sharing
    across a trajectory's segments -- every segment re-enumerates its chain
    -- which changes nothing numerically (templates are bitwise-faithful),
    only construction time.  ``rates`` restricts the sweep axis (the CLI's
    ``--rate``); the default is the scenario's axis under ``scale``.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.runtime.cache import result_key
    from repro.runtime.spec import parameters_to_dict

    if spec.transient is None:
        raise ValueError(f"scenario {spec.name!r} has no transient workload profile")
    profile = spec.transient
    profile_dict = profile.to_dict()
    base = spec.parameters(scale)
    sweep_rates = spec.sweep_rates(scale) if rates is None else tuple(rates)

    point_dicts = [
        parameters_to_dict(base.with_arrival_rate(rate)) for rate in sweep_rates
    ]
    # Keys carry the profile's cached content digest rather than the full
    # rendering: the digest is computed once per profile, so per-point key
    # hashing stops re-serialising the whole schedule at every sweep point.
    keys = (
        [
            result_key(
                point,
                solver=spec.solver,
                solver_tol=solver_tol,
                kind="transient",
                transient=profile.digest(),
            )
            for point in point_dicts
        ]
        if cache is not None
        else None
    )

    results: dict[int, dict] = {}
    from_cache: dict[int, bool] = {}
    misses: list[int] = []
    for index in range(len(point_dicts)):
        payload = cache.get(keys[index]) if cache is not None else None
        if payload is not None:
            results[index] = payload
            from_cache[index] = True
        else:
            misses.append(index)
            from_cache[index] = False

    if misses:
        from repro.obs.metrics import absorb_export, current_registry

        registry = current_registry()
        jobs_list = [
            (point_dicts[index], profile_dict, spec.solver, solver_tol, warm)
            for index in misses
        ]
        workers = max(1, int(jobs))
        if workers > 1 and len(misses) > 1:
            with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
                for index, (payload, export) in zip(
                    misses, pool.map(_solve_trajectory_task, jobs_list)
                ):
                    absorb_export(export, registry)
                    results[index] = payload
        else:
            for index, job in zip(misses, jobs_list):
                payload, export = _solve_trajectory_task(job)
                absorb_export(export, registry)
                results[index] = payload
        if cache is not None:
            for index in misses:
                try:
                    cache.put(keys[index], results[index])
                except OSError:
                    # An unwritable cache degrades to a cold one: the solved
                    # trajectories are still returned, nothing is persisted.
                    break

    return [(results[index], from_cache[index]) for index in range(len(sweep_rates))]


def run_transient_sweep(
    spec: "ScenarioSpec",
    scale: "ExperimentScale | None" = None,
    *,
    jobs: int | None = None,
    cache: "ResultCache | None | str" = "ambient",
    warm: bool | None = None,
    rates: tuple[float, ...] | None = None,
) -> TransientSweepResult:
    """Run one transient scenario sweep and return its trajectories.

    The ``jobs`` / ``cache`` / ``warm`` arguments resolve against the ambient
    :func:`~repro.runtime.executor.execution_options` exactly like
    :func:`~repro.runtime.executor.run_sweep`; ``jobs`` parallelises the
    independent trajectories across base arrival rates.
    """
    from repro.experiments.scale import ExperimentScale
    from repro.runtime.executor import current_options

    scale = scale or ExperimentScale.default()
    options = current_options()
    effective_jobs = options.jobs if jobs is None else jobs
    effective_cache = options.cache if cache == "ambient" else cache
    effective_warm = options.warm if warm is None else warm

    sweep_rates = spec.sweep_rates(scale) if rates is None else tuple(rates)
    solved = transient_sweep_payloads(
        spec,
        scale,
        jobs=effective_jobs,
        cache=effective_cache,
        warm=effective_warm,
        rates=sweep_rates,
    )
    points = tuple(
        TransientSweepPoint(
            index=index, arrival_rate=rate, payload=payload, from_cache=hit
        )
        for index, (rate, (payload, hit)) in enumerate(zip(sweep_rates, solved))
    )
    hits = sum(1 for point in points if point.from_cache)
    return TransientSweepResult(
        spec=spec,
        scale=scale,
        points=points,
        cache_hits=hits,
        cache_misses=len(points) - hits,
    )
