"""Arrival-rate sweeps of transient trajectories, cached and parallel.

A transient sweep point is one full :class:`~repro.transient.model.TransientModel`
trajectory at one base arrival rate: the swept rate scales the whole schedule
(each segment's multiplier composes with it), so a sweep answers "how does
the busy-hour ramp look at light vs. heavy base load".  Unlike the warm
chains of the steady-state sweeps, trajectories at different base rates share
no state -- each starts from its own initial condition and walks its own
schedule -- so the executor parallelises the *trajectories themselves*: one
pool task per uncached rate, identical code on the serial path, results
reassembled in sweep order (``jobs = N`` is bitwise identical to serial).

Each solved trajectory is stored in the content-addressed result cache under
a key that hashes the effective base-cell parameters *plus the profile
rendering* (schedule, sampling grid, initial condition), with the computation
kind set to ``"transient"`` -- two profiles never share entries, and a
transient point can never collide with a steady-state or network point of
the same parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.transient.model import TransientModel
from repro.transient.schedule import WorkloadProfile

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.runtime reaches into this package for
    # its scenario registry, so module-level imports here would make the
    # dependency bidirectional (repro.transient stays importable standalone).
    from repro.experiments.scale import ExperimentScale
    from repro.runtime.cache import ResultCache
    from repro.runtime.spec import ScenarioSpec

__all__ = [
    "TransientSweepPoint",
    "TransientSweepResult",
    "run_transient_sweep",
    "transient_sweep_payloads",
]


@dataclass(frozen=True)
class TransientSweepPoint:
    """One solved (or cache-served) trajectory of a transient sweep.

    ``payload`` is ``None`` for a trajectory whose solve failed terminally in
    a non-strict run (see :class:`~repro.runtime.resilience.SweepFailure`).
    """

    index: int
    arrival_rate: float
    payload: dict | None
    from_cache: bool = False

    @property
    def failed(self) -> bool:
        return self.payload is None

    @property
    def times(self) -> tuple[float, ...]:
        self._require_payload()
        return tuple(self.payload["times"])

    @property
    def time_averages(self) -> dict[str, float]:
        self._require_payload()
        return self.payload["time_averages"]

    def trajectory(self, metric: str) -> tuple[float, ...]:
        """One measure over time at this base rate, aligned with :attr:`times`."""
        self._require_payload()
        return tuple(point["values"][metric] for point in self.payload["points"])

    def _require_payload(self) -> None:
        if self.payload is None:
            raise RuntimeError(
                f"transient sweep point {self.index} (rate {self.arrival_rate:g}) "
                "failed; no trajectory is available"
            )


@dataclass(frozen=True)
class TransientSweepResult:
    """All trajectories of one transient scenario sweep, in sweep order."""

    spec: "ScenarioSpec"
    scale: "ExperimentScale"
    points: tuple[TransientSweepPoint, ...]
    cache_hits: int = 0
    cache_misses: int = 0
    failures: tuple = ()

    @property
    def arrival_rates(self) -> tuple[float, ...]:
        return tuple(point.arrival_rate for point in self.points)

    def series(self, metric: str) -> tuple[float, ...]:
        """The time-averaged ``metric`` across the sweep of base rates."""
        return tuple(point.time_averages[metric] for point in self.points)

    def as_dict(self) -> dict:
        return {
            "scenario": self.spec.to_dict(),
            "scale": self.scale.to_dict(),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "failures": [failure.as_dict() for failure in self.failures],
            "points": [
                {
                    "index": point.index,
                    "arrival_rate": point.arrival_rate,
                    "from_cache": point.from_cache,
                    "failed": point.failed,
                    **(point.payload or {}),
                }
                for point in self.points
            ],
        }


def _solve_trajectory_task(job: tuple) -> tuple[dict, dict]:
    """Solve one trajectory (worker entry point; top-level so it pickles).

    The serial path calls the very same function, which is what keeps
    ``jobs = N`` bitwise identical to serial execution.  Returns
    ``(payload, metrics_export)``; the export piggybacks the worker
    registry's delta home, and the parent merges it only when it crossed a
    process boundary (PID guard), so the serial path never double-counts.
    """
    from repro.obs.metrics import current_registry, export_delta
    from repro.runtime.spec import parameters_from_dict

    baseline = current_registry().snapshot()
    params_dict, profile_dict, solver, solver_tol, warm = job
    params = parameters_from_dict(params_dict)
    profile = WorkloadProfile.from_dict(profile_dict)
    model = TransientModel(
        profile,
        params,
        solver_method=solver,
        solver_tol=solver_tol,
        share_templates=warm,
    )
    return model.solve().as_dict(), export_delta(baseline)


def transient_sweep_payloads(
    spec: "ScenarioSpec",
    scale: "ExperimentScale",
    *,
    solver_tol: float = 1e-9,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    warm: bool = True,
    rates: tuple[float, ...] | None = None,
    retry=None,
    task_timeout: float | None = None,
    strict: bool = False,
    checkpoint=None,
) -> list[tuple[dict | None, bool]]:
    """Solve every trajectory of a transient scenario sweep, cache-aware.

    Returns one ``(payload, from_cache)`` pair per base arrival rate, in
    sweep order; payloads are
    :meth:`~repro.transient.model.TransientResult.as_dict` renderings.
    ``warm=False`` (the ``--cold`` A/B knob) disables template sharing
    across a trajectory's segments -- every segment re-enumerates its chain
    -- which changes nothing numerically (templates are bitwise-faithful),
    only construction time.  ``rates`` restricts the sweep axis (the CLI's
    ``--rate``); the default is the scenario's axis under ``scale``.

    Trajectory tasks run under ``retry`` / ``task_timeout``
    (:mod:`repro.runtime.resilience`; fault site ``trajectory``, indexed by
    sweep-point index).  A trajectory that fails terminally is reported
    through :func:`~repro.runtime.resilience.report_failure` and returned as
    ``(None, False)`` unless ``strict`` re-raises; ``checkpoint`` journals
    completed trajectories for resumption.
    """
    from dataclasses import replace as dc_replace

    from repro.runtime.cache import result_key
    from repro.runtime.resilience import (
        ResilientPool,
        SweepFailure,
        checkpointed_get,
        payload_digest,
        report_failure,
    )
    from repro.runtime.spec import parameters_to_dict

    if spec.transient is None:
        raise ValueError(f"scenario {spec.name!r} has no transient workload profile")
    profile = spec.transient
    profile_dict = profile.to_dict()
    base = spec.parameters(scale)
    sweep_rates = spec.sweep_rates(scale) if rates is None else tuple(rates)

    point_dicts = [
        parameters_to_dict(base.with_arrival_rate(rate)) for rate in sweep_rates
    ]
    # Keys carry the profile's cached content digest rather than the full
    # rendering: the digest is computed once per profile, so per-point key
    # hashing stops re-serialising the whole schedule at every sweep point.
    keys = (
        [
            result_key(
                point,
                solver=spec.solver,
                solver_tol=solver_tol,
                kind="transient",
                transient=profile.digest(),
            )
            for point in point_dicts
        ]
        if cache is not None
        else None
    )

    results: dict[int, dict] = {}
    from_cache: dict[int, bool] = {}
    misses: list[int] = []
    for index in range(len(point_dicts)):
        payload = (
            checkpointed_get(cache, keys[index], checkpoint)
            if cache is not None
            else None
        )
        if payload is not None:
            results[index] = payload
            from_cache[index] = True
        else:
            misses.append(index)
            from_cache[index] = False

    writable = True

    def persist(index: int) -> None:
        """Store and journal one completed trajectory *immediately*.

        Per-trajectory persistence means a later abort (a strict failure, a
        kill) loses at most the in-flight work -- a ``--checkpoint`` resume
        re-solves only the unfinished trajectories.
        """
        nonlocal writable
        if cache is None or not writable:
            return
        try:
            cache.put(keys[index], results[index])
        except OSError:
            # An unwritable cache degrades to a cold one: the solved
            # trajectories are still returned, nothing is persisted.
            writable = False
            return
        if checkpoint is not None:
            checkpoint.record(
                site="trajectory",
                index=index,
                key=keys[index],
                digest=payload_digest(results[index]),
            )

    if misses:
        from repro.obs.metrics import absorb_export, current_registry

        registry = current_registry()
        workers = max(1, int(jobs))
        pool_width = min(workers, len(misses)) if len(misses) > 1 else 1
        def settle(index: int, outcome) -> None:
            if isinstance(outcome, SweepFailure):
                report_failure(dc_replace(outcome, points=(index,)))
                return
            payload, export = outcome
            absorb_export(export, registry)
            results[index] = payload
            persist(index)

        with ResilientPool(
            pool_width, policy=retry, task_timeout=task_timeout, strict=strict
        ) as pool:
            pending = 0
            for index in misses:
                pool.submit(
                    _solve_trajectory_task,
                    (point_dicts[index], profile_dict, spec.solver, solver_tol, warm),
                    site="trajectory",
                    index=index,
                    tag=index,
                )
                pending += 1
                if pool.serial:
                    # In-process submission executes inline: drain (and
                    # persist) each trajectory before the next one can fail.
                    for tag, outcome in pool.poll():
                        pending -= 1
                        settle(tag, outcome)
            while pending:
                for tag, outcome in pool.poll():
                    pending -= 1
                    settle(tag, outcome)

    return [
        (results.get(index), from_cache[index]) for index in range(len(sweep_rates))
    ]


def run_transient_sweep(
    spec: "ScenarioSpec",
    scale: "ExperimentScale | None" = None,
    *,
    jobs: int | None = None,
    cache: "ResultCache | None | str" = "ambient",
    warm: bool | None = None,
    rates: tuple[float, ...] | None = None,
    retry=None,
    task_timeout: float | None = None,
    strict: bool | None = None,
    checkpoint=None,
) -> TransientSweepResult:
    """Run one transient scenario sweep and return its trajectories.

    The ``jobs`` / ``cache`` / ``warm`` arguments -- and the resilience knobs
    ``retry`` / ``task_timeout`` / ``strict`` / ``checkpoint`` -- resolve
    against the ambient :func:`~repro.runtime.executor.execution_options`
    exactly like :func:`~repro.runtime.executor.run_sweep`; ``jobs``
    parallelises the independent trajectories across base arrival rates.
    Terminal per-trajectory failures land in
    :attr:`TransientSweepResult.failures` (their points carry
    ``payload=None``) unless ``strict``.
    """
    from repro.experiments.scale import ExperimentScale
    from repro.runtime.executor import current_options
    from repro.runtime.resilience import collect_failures

    scale = scale or ExperimentScale.default()
    options = current_options()
    effective_jobs = options.jobs if jobs is None else jobs
    effective_cache = options.cache if cache == "ambient" else cache
    effective_warm = options.warm if warm is None else warm
    effective_retry = options.retry if retry is None else retry
    effective_timeout = options.task_timeout if task_timeout is None else task_timeout
    effective_strict = options.strict if strict is None else strict
    effective_checkpoint = options.checkpoint if checkpoint is None else checkpoint

    sweep_rates = spec.sweep_rates(scale) if rates is None else tuple(rates)
    with collect_failures() as failures:
        solved = transient_sweep_payloads(
            spec,
            scale,
            jobs=effective_jobs,
            cache=effective_cache,
            warm=effective_warm,
            rates=sweep_rates,
            retry=effective_retry,
            task_timeout=effective_timeout,
            strict=effective_strict,
            checkpoint=effective_checkpoint,
        )
    points = tuple(
        TransientSweepPoint(
            index=index, arrival_rate=rate, payload=payload, from_cache=hit
        )
        for index, (rate, (payload, hit)) in enumerate(zip(sweep_rates, solved))
    )
    hits = sum(1 for point in points if point.from_cache)
    return TransientSweepResult(
        spec=spec,
        scale=scale,
        points=points,
        cache_hits=hits,
        cache_misses=len(points) - hits,
        failures=tuple(failures),
    )
