"""Piecewise-constant time-varying workload schedules.

The paper's CTMC is solved in steady state, which answers "how does the cell
behave under a fixed load".  Operators ask non-stationary questions: what
happens to blocking and throughput *during* the morning busy-hour ramp, a
flash crowd, or a partial-capacity outage.  A :class:`RateSchedule` describes
such a workload as an ordered sequence of :class:`ScheduleSegment` entries,
each holding the configuration constant for a duration:

* ``arrival_rate_multiplier`` scales the base call arrival rate (so a
  schedule composes with arrival-rate sweeps exactly like a hotspot cell's
  multiplier does in :mod:`repro.network.topology`);
* ``overrides`` may replace any cell-local parameter field -- an outage
  segment drops ``number_of_channels``, a policy change flips
  ``reserved_pdch`` or ``tcp_threshold``.

Within a segment the chain is time-homogeneous, so the transient solver
(:mod:`repro.transient.model`) builds one generator per segment and carries
the state distribution across the breakpoints.

A :class:`WorkloadProfile` pairs a schedule with *how to observe it*: the
sampling grid of the QoS trajectory and the initial condition (``"stationary"``
starts in the steady state of the first segment -- the natural choice for a
ramp out of a settled morning load -- while ``"empty"`` starts from an idle
cell).  Profiles are frozen, dict round-trippable and content-digestable like
:class:`~repro.network.topology.CellTopology`, so they can live inside
scenario specs and content-addressed cache keys.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.core.parameters import GprsModelParameters

__all__ = [
    "SEGMENT_OVERRIDE_FIELDS",
    "RateSchedule",
    "ScheduleSegment",
    "WorkloadProfile",
    "busy_hour_ramp",
    "constant_workload",
    "diurnal_cycle",
    "flash_crowd",
    "outage_recovery",
]

#: Parameter fields a segment may override: every cell-local field of
#: :class:`~repro.core.parameters.GprsModelParameters` except the swept
#: arrival rate (scaled via ``arrival_rate_multiplier`` instead) and the
#: shared traffic model.  The same set a network topology may override per
#: cell, for the same reason: both describe deviations from one base cell.
SEGMENT_OVERRIDE_FIELDS = frozenset(
    {
        "gprs_fraction",
        "number_of_channels",
        "reserved_pdch",
        "buffer_size",
        "max_gprs_sessions",
        "coding_scheme",
        "mean_gsm_call_duration_s",
        "mean_gsm_dwell_time_s",
        "mean_gprs_dwell_time_s",
        "tcp_threshold",
        "block_error_rate",
    }
)


@dataclass(frozen=True)
class ScheduleSegment:
    """One piecewise-constant piece of a workload schedule.

    Parameters
    ----------
    duration_s:
        How long the configuration holds, in seconds (strictly positive).
    arrival_rate_multiplier:
        Factor applied to the base call arrival rate during this segment
        (composes with arrival-rate sweeps; 1.0 = the base load).
    overrides:
        Parameter fields replaced during this segment, keys from
        :data:`SEGMENT_OVERRIDE_FIELDS`.  Stored as a read-only mapping after
        validation (segments are shared through frozen profiles and hashed
        into cache keys).
    """

    duration_s: float
    arrival_rate_multiplier: float = 1.0
    overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.duration_s > 0:
            raise ValueError("segment duration must be strictly positive")
        if self.arrival_rate_multiplier < 0:
            raise ValueError("arrival_rate_multiplier must be non-negative")
        values = dict(self.overrides)
        unknown = set(values) - SEGMENT_OVERRIDE_FIELDS
        if unknown:
            raise ValueError(
                f"unknown segment override(s) {sorted(unknown)}; allowed: "
                f"{sorted(SEGMENT_OVERRIDE_FIELDS)}"
            )
        object.__setattr__(self, "duration_s", float(self.duration_s))
        object.__setattr__(
            self, "arrival_rate_multiplier", float(self.arrival_rate_multiplier)
        )
        object.__setattr__(self, "overrides", MappingProxyType(values))

    def __reduce__(self):
        # MappingProxyType is not picklable; round-trip through the dict form.
        return (ScheduleSegment.from_dict, (self.to_dict(),))

    def parameters(self, base: GprsModelParameters) -> GprsModelParameters:
        """Materialise this segment's effective parameters over ``base``."""
        params = base.replace(**dict(self.overrides)) if self.overrides else base
        if self.arrival_rate_multiplier != 1.0:
            params = params.with_arrival_rate(
                base.total_call_arrival_rate * self.arrival_rate_multiplier
            )
        return params

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "arrival_rate_multiplier": self.arrival_rate_multiplier,
            "overrides": dict(self.overrides),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleSegment":
        known = {"duration_s", "arrival_rate_multiplier", "overrides"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown segment field(s) {sorted(unknown)}")
        return cls(
            duration_s=data["duration_s"],
            arrival_rate_multiplier=data.get("arrival_rate_multiplier", 1.0),
            overrides=dict(data.get("overrides", {})),
        )


@dataclass(frozen=True)
class RateSchedule:
    """An ordered sequence of piecewise-constant workload segments."""

    name: str
    segments: tuple[ScheduleSegment, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a schedule needs a non-empty name")
        segments = tuple(self.segments)
        if not segments:
            raise ValueError("a schedule needs at least one segment")
        if not all(isinstance(segment, ScheduleSegment) for segment in segments):
            raise ValueError("segments must be ScheduleSegment instances")
        object.__setattr__(self, "segments", segments)

    @property
    def number_of_segments(self) -> int:
        return len(self.segments)

    @property
    def total_duration_s(self) -> float:
        return float(sum(segment.duration_s for segment in self.segments))

    def breakpoints(self) -> tuple[float, ...]:
        """Segment start times, ``(0.0, d_0, d_0 + d_1, ...)`` (no end time)."""
        starts = [0.0]
        for segment in self.segments[:-1]:
            starts.append(starts[-1] + segment.duration_s)
        return tuple(starts)

    def segment_at(self, time_s: float) -> int:
        """Index of the segment active at ``time_s`` (left-closed intervals).

        A breakpoint belongs to the segment *starting* there; the total
        duration maps to the last segment so trajectories can sample their
        final instant.
        """
        if time_s < 0 or time_s > self.total_duration_s:
            raise ValueError(
                f"time {time_s} outside the schedule [0, {self.total_duration_s}]"
            )
        elapsed = 0.0
        for index, segment in enumerate(self.segments):
            elapsed += segment.duration_s
            if time_s < elapsed:
                return index
        return len(self.segments) - 1

    def is_constant(self) -> bool:
        """Whether every segment describes the same configuration."""
        first = self.segments[0]
        return all(
            segment.arrival_rate_multiplier == first.arrival_rate_multiplier
            and dict(segment.overrides) == dict(first.overrides)
            for segment in self.segments[1:]
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "segments": [segment.to_dict() for segment in self.segments],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RateSchedule":
        known = {"name", "segments"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown schedule field(s) {sorted(unknown)}")
        return cls(
            name=data["name"],
            segments=tuple(
                ScheduleSegment.from_dict(segment) for segment in data["segments"]
            ),
        )

    def digest(self) -> str:
        """Stable content hash of the schedule (for cache keys and reports).

        Computed once and cached on the instance: the dataclass is frozen
        (every mutation path returns a new object), so the rendered content
        can never change under a live digest.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            canonical = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
            object.__setattr__(self, "_digest", cached)
        return cached


@dataclass(frozen=True)
class WorkloadProfile:
    """A schedule plus how to observe it: sampling grid and initial condition.

    Parameters
    ----------
    schedule:
        The piecewise-constant workload.
    samples:
        Number of *intervals* of the uniform sampling grid; the trajectory is
        evaluated at ``samples + 1`` evenly spaced times covering
        ``[0, total_duration]``.  Unused when ``times`` is given, and then
        normalised to the default so two profiles with the same explicit
        times can never differ in equality, serialisation or content digest
        through a dead field.
    times:
        Explicit sample times (strictly increasing, within the schedule);
        overrides the uniform grid.
    initial:
        ``"stationary"`` starts the trajectory in the steady state of the
        first segment's configuration (a settled system hit by the schedule);
        ``"empty"`` starts from the empty cell.
    """

    schedule: RateSchedule
    samples: int = 24
    times: tuple[float, ...] | None = None
    initial: str = "stationary"

    def __post_init__(self) -> None:
        if not isinstance(self.schedule, RateSchedule):
            raise ValueError("schedule must be a RateSchedule")
        if self.initial not in ("stationary", "empty"):
            raise ValueError('initial must be "stationary" or "empty"')
        if self.times is not None:
            times = tuple(float(t) for t in self.times)
            if not times:
                raise ValueError("times must be None or non-empty")
            total = self.schedule.total_duration_s
            if any(t < 0 or t > total for t in times):
                raise ValueError(f"sample times must lie within [0, {total}]")
            if any(b <= a for a, b in zip(times, times[1:])):
                raise ValueError("sample times must be strictly increasing")
            object.__setattr__(self, "times", times)
            object.__setattr__(self, "samples", 24)
        elif self.samples < 1:
            raise ValueError("samples must be at least 1")

    @property
    def name(self) -> str:
        return self.schedule.name

    @property
    def total_duration_s(self) -> float:
        return self.schedule.total_duration_s

    def sample_times(self) -> tuple[float, ...]:
        """The trajectory's sample times (explicit, or the uniform grid)."""
        if self.times is not None:
            return self.times
        total = self.schedule.total_duration_s
        # min() guards the last grid points against rounding one ULP past the
        # schedule end when the summed segment durations are not exactly
        # representable (total * samples / samples can round upward).
        return tuple(
            min(total, total * index / self.samples)
            for index in range(self.samples + 1)
        )

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule.to_dict(),
            "samples": self.samples,
            "times": None if self.times is None else list(self.times),
            "initial": self.initial,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadProfile":
        known = {"schedule", "samples", "times", "initial"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown profile field(s) {sorted(unknown)}")
        times = data.get("times")
        return cls(
            schedule=RateSchedule.from_dict(data["schedule"]),
            samples=data.get("samples", 24),
            times=None if times is None else tuple(times),
            initial=data.get("initial", "stationary"),
        )

    def digest(self) -> str:
        """Stable content hash of the profile (for cache keys and reports).

        Computed once and cached on the (frozen) instance, so sweep-point
        cache keys that hash per point never re-render the full profile.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            canonical = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
            object.__setattr__(self, "_digest", cached)
        return cached


# ---------------------------------------------------------------------- #
# Profile constructors
# ---------------------------------------------------------------------- #
def constant_workload(
    duration_s: float,
    *,
    multiplier: float = 1.0,
    samples: int = 8,
    initial: str = "stationary",
    name: str = "constant",
) -> WorkloadProfile:
    """A single constant segment -- the validation anchor's schedule."""
    return WorkloadProfile(
        schedule=RateSchedule(
            name=name,
            segments=(
                ScheduleSegment(
                    duration_s=duration_s, arrival_rate_multiplier=multiplier
                ),
            ),
        ),
        samples=samples,
        initial=initial,
    )


def busy_hour_ramp(
    *,
    peak_multiplier: float = 2.0,
    ramp_steps: int = 3,
    step_duration_s: float = 120.0,
    hold_duration_s: float = 240.0,
    samples: int = 24,
) -> WorkloadProfile:
    """The morning busy hour: staircase up to the peak, hold, staircase down.

    The ramp is a piecewise-constant staircase of ``ramp_steps`` equal
    multiplier increments from the base load (1.0) to ``peak_multiplier`` and
    back, each step held for ``step_duration_s``.
    """
    if peak_multiplier <= 1.0:
        raise ValueError("peak_multiplier must exceed 1.0 (the base load)")
    if ramp_steps < 1:
        raise ValueError("ramp_steps must be at least 1")
    up = [
        ScheduleSegment(
            duration_s=step_duration_s,
            arrival_rate_multiplier=1.0 + (peak_multiplier - 1.0) * step / ramp_steps,
        )
        for step in range(1, ramp_steps)
    ]
    segments = (
        [ScheduleSegment(duration_s=step_duration_s)]
        + up
        + [
            ScheduleSegment(
                duration_s=hold_duration_s, arrival_rate_multiplier=peak_multiplier
            )
        ]
        + list(reversed(up))
        + [ScheduleSegment(duration_s=step_duration_s)]
    )
    return WorkloadProfile(
        schedule=RateSchedule(name="busy-hour-ramp", segments=tuple(segments)),
        samples=samples,
        initial="stationary",
    )


def flash_crowd(
    *,
    spike_multiplier: float = 3.0,
    spike_duration_s: float = 90.0,
    lead_duration_s: float = 60.0,
    recovery_duration_s: float = 240.0,
    samples: int = 20,
) -> WorkloadProfile:
    """A sudden load spike: base load, an abrupt spike, then recovery."""
    if spike_multiplier <= 1.0:
        raise ValueError("spike_multiplier must exceed 1.0 (the base load)")
    return WorkloadProfile(
        schedule=RateSchedule(
            name="flash-crowd",
            segments=(
                ScheduleSegment(duration_s=lead_duration_s),
                ScheduleSegment(
                    duration_s=spike_duration_s,
                    arrival_rate_multiplier=spike_multiplier,
                ),
                ScheduleSegment(duration_s=recovery_duration_s),
            ),
        ),
        samples=samples,
        initial="stationary",
    )


def outage_recovery(
    *,
    outage_channels: int,
    outage_duration_s: float = 120.0,
    lead_duration_s: float = 60.0,
    recovery_duration_s: float = 240.0,
    samples: int = 20,
) -> WorkloadProfile:
    """A partial-capacity outage: the cell loses physical channels, then recovers.

    During the outage segment the cell runs on ``outage_channels`` total
    channels (an absolute count, e.g. 12 of the nominal 20).  The state-space
    shape changes at both breakpoints; the transient solver remaps the
    distribution by truncating the coordinates that no longer fit (calls and
    packets dropped at the instant of the outage).
    """
    if outage_channels < 2:
        raise ValueError("the outage must leave at least 2 channels")
    return WorkloadProfile(
        schedule=RateSchedule(
            name="outage-recovery",
            segments=(
                ScheduleSegment(duration_s=lead_duration_s),
                ScheduleSegment(
                    duration_s=outage_duration_s,
                    overrides={"number_of_channels": int(outage_channels)},
                ),
                ScheduleSegment(duration_s=recovery_duration_s),
            ),
        ),
        samples=samples,
        initial="stationary",
    )


def diurnal_cycle(
    *,
    hours: int = 24,
    hour_duration_s: float = 60.0,
    amplitude: float = 0.6,
    peak_hour: float = 18.0,
    samples: int = 48,
) -> WorkloadProfile:
    """A sinusoidal day discretised into one constant segment per hour.

    The multiplier of hour ``h`` is ``1 + amplitude * sin(...)`` evaluated at
    the hour's midpoint, peaking at ``peak_hour``; ``hour_duration_s``
    compresses the day so scaled presets stay tractable (the default maps one
    hour of the cycle to one minute of model time).
    """
    if hours < 2:
        raise ValueError("a diurnal cycle needs at least 2 hours")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    segments = []
    for hour in range(hours):
        phase = 2.0 * math.pi * ((hour + 0.5) - peak_hour) / hours
        multiplier = 1.0 + amplitude * math.cos(phase)
        segments.append(
            ScheduleSegment(
                duration_s=hour_duration_s, arrival_rate_multiplier=multiplier
            )
        )
    return WorkloadProfile(
        schedule=RateSchedule(name=f"diurnal-{hours}h", segments=tuple(segments)),
        samples=samples,
        initial="stationary",
    )
