"""Allocation policies: mapping supervised load to a PDCH reservation.

Three policies cover the design space the paper's conclusions sketch:

* :class:`StaticAllocationPolicy` -- the baseline every figure of the paper
  evaluates: a fixed number of reserved PDCHs regardless of load;
* :class:`UtilizationThresholdPolicy` -- the mechanism operators actually
  deploy: add a PDCH when the allocated ones are persistently busy, release
  one when they are persistently idle, with hysteresis between the two
  thresholds;
* :class:`ModelDrivenPolicy` -- the paper's proposal: use the analytical model
  itself to pick the smallest reservation that satisfies a QoS profile at the
  currently estimated load.
"""

from __future__ import annotations

from typing import Protocol

from repro.adaptive.supervision import LoadObservation
from repro.core.parameters import GprsModelParameters
from repro.experiments.dimensioning import QosProfile, recommend_reserved_pdch

__all__ = [
    "AllocationPolicy",
    "StaticAllocationPolicy",
    "UtilizationThresholdPolicy",
    "ModelDrivenPolicy",
]


class AllocationPolicy(Protocol):
    """Protocol of an allocation policy used by the adaptive controller."""

    def decide(self, observation: LoadObservation, current_reserved: int) -> int:
        """Return the PDCH reservation to use given the latest load estimate."""
        ...  # pragma: no cover - protocol definition


class StaticAllocationPolicy:
    """Always keep the same number of reserved PDCHs (the paper's baseline)."""

    def __init__(self, reserved_pdch: int) -> None:
        if reserved_pdch < 0:
            raise ValueError("reserved_pdch must be non-negative")
        self._reserved = reserved_pdch

    def decide(self, observation: LoadObservation, current_reserved: int) -> int:
        return self._reserved


class UtilizationThresholdPolicy:
    """Hysteresis rule on the supervised PDCH utilisation.

    Parameters
    ----------
    upgrade_threshold:
        Utilisation above which one more PDCH is reserved.
    release_threshold:
        Utilisation below which one reserved PDCH is released; must be lower
        than ``upgrade_threshold`` (the gap is the hysteresis band).
    minimum_reserved, maximum_reserved:
        Bounds of the reservation the policy may choose.
    """

    def __init__(
        self,
        *,
        upgrade_threshold: float = 0.8,
        release_threshold: float = 0.3,
        minimum_reserved: int = 0,
        maximum_reserved: int = 8,
    ) -> None:
        if not 0.0 < upgrade_threshold <= 1.0:
            raise ValueError("upgrade_threshold must be in (0, 1]")
        if not 0.0 <= release_threshold < upgrade_threshold:
            raise ValueError("release_threshold must be below upgrade_threshold")
        if minimum_reserved < 0 or maximum_reserved < minimum_reserved:
            raise ValueError("invalid reservation bounds")
        self.upgrade_threshold = upgrade_threshold
        self.release_threshold = release_threshold
        self.minimum_reserved = minimum_reserved
        self.maximum_reserved = maximum_reserved

    def decide(self, observation: LoadObservation, current_reserved: int) -> int:
        reserved = min(max(current_reserved, self.minimum_reserved), self.maximum_reserved)
        if observation.pdch_utilization > self.upgrade_threshold:
            reserved = min(reserved + 1, self.maximum_reserved)
        elif observation.pdch_utilization < self.release_threshold:
            reserved = max(reserved - 1, self.minimum_reserved)
        return reserved


class ModelDrivenPolicy:
    """Pick the smallest reservation whose model-predicted QoS meets a profile.

    Parameters
    ----------
    base_parameters:
        Cell configuration; the policy varies its arrival rate and reservation.
    profile:
        The QoS profile to enforce.
    candidate_reservations:
        Reservation levels the policy may choose from.
    fallback_reserved:
        Reservation used when no candidate satisfies the profile (best effort).
    solver:
        Steady-state solver passed to the analytical model.
    """

    def __init__(
        self,
        base_parameters: GprsModelParameters,
        profile: QosProfile,
        *,
        candidate_reservations: tuple[int, ...] = (0, 1, 2, 3, 4, 6, 8),
        fallback_reserved: int | None = None,
        solver: str = "auto",
    ) -> None:
        self._parameters = base_parameters
        self._profile = profile
        self._candidates = tuple(sorted(set(candidate_reservations)))
        if not self._candidates:
            raise ValueError("at least one candidate reservation is required")
        valid = [c for c in self._candidates if c < base_parameters.number_of_channels]
        if not valid:
            raise ValueError("no candidate leaves room for voice channels")
        self._fallback = fallback_reserved if fallback_reserved is not None else max(valid)
        self._solver = solver
        self._cache: dict[float, int] = {}

    def decide(self, observation: LoadObservation, current_reserved: int) -> int:
        rate = max(observation.call_arrival_rate, 1e-6)
        cache_key = round(rate, 4)
        if cache_key in self._cache:
            return self._cache[cache_key]
        recommended = recommend_reserved_pdch(
            self._parameters,
            self._profile,
            rate,
            candidate_reservations=self._candidates,
            solver=self._solver,
        )
        decision = self._fallback if recommended is None else recommended
        self._cache[cache_key] = decision
        return decision
