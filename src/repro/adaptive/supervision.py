"""Load supervision: estimating offered load and PDCH utilisation online.

GPRS base station controllers run a *load supervision procedure* (Section 2 of
the paper) that watches the packet data channels and decides when capacity
should be added or released.  The supervisor implemented here consumes raw
observations -- call arrivals and PDCH-utilisation samples stamped with a
time -- and produces smoothed estimates over a sliding window, which the
allocation policies of :mod:`repro.adaptive.policies` consume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["LoadObservation", "LoadSupervisor"]


@dataclass(frozen=True)
class LoadObservation:
    """Smoothed load estimate produced by the supervisor at one point in time.

    Attributes
    ----------
    time_s:
        Time of the estimate.
    call_arrival_rate:
        Estimated combined GSM/GPRS call arrival rate (calls per second).
    pdch_utilization:
        Estimated fraction of the currently allocated PDCHs that are busy
        (0 when no utilisation samples have been recorded yet).
    samples:
        Number of arrival events inside the window that produced the estimate.
    """

    time_s: float
    call_arrival_rate: float
    pdch_utilization: float
    samples: int


class LoadSupervisor:
    """Sliding-window estimator of call arrival rate and PDCH utilisation.

    Parameters
    ----------
    window_s:
        Length of the sliding window in seconds.  Longer windows smooth more
        but react later -- the classic supervision trade-off.
    minimum_samples:
        Arrival events required inside the window before the supervisor
        reports a rate; below it the estimate falls back to ``fallback_rate``.
    fallback_rate:
        Rate reported while too few samples are available (e.g. the planned
        load the cell was dimensioned for).
    """

    def __init__(
        self,
        window_s: float = 600.0,
        *,
        minimum_samples: int = 5,
        fallback_rate: float = 0.0,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if minimum_samples < 1:
            raise ValueError("minimum_samples must be at least 1")
        if fallback_rate < 0:
            raise ValueError("fallback_rate must be non-negative")
        self._window_s = window_s
        self._minimum_samples = minimum_samples
        self._fallback_rate = fallback_rate
        self._arrivals: deque[float] = deque()
        self._utilization_samples: deque[tuple[float, float]] = deque()

    @property
    def window_s(self) -> float:
        return self._window_s

    # ------------------------------------------------------------------ #
    # Feeding observations
    # ------------------------------------------------------------------ #
    def record_call_arrival(self, time_s: float) -> None:
        """Record one GSM call or GPRS session request at ``time_s``."""
        self._check_time(time_s, self._arrivals)
        self._arrivals.append(float(time_s))
        self._evict(time_s)

    def record_pdch_utilization(self, time_s: float, utilization: float) -> None:
        """Record one sample of the fraction of allocated PDCHs in use."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        self._check_time(time_s, (sample[0] for sample in self._utilization_samples))
        self._utilization_samples.append((float(time_s), float(utilization)))
        self._evict(time_s)

    def _check_time(self, time_s: float, recorded) -> None:
        if time_s < 0:
            raise ValueError("observation times must be non-negative")
        last = None
        for value in recorded:
            last = value
        if last is not None and time_s < last:
            raise ValueError("observations must be recorded in non-decreasing time order")

    def _evict(self, now: float) -> None:
        horizon = now - self._window_s
        while self._arrivals and self._arrivals[0] < horizon:
            self._arrivals.popleft()
        while self._utilization_samples and self._utilization_samples[0][0] < horizon:
            self._utilization_samples.popleft()

    # ------------------------------------------------------------------ #
    # Estimates
    # ------------------------------------------------------------------ #
    def estimate(self, time_s: float) -> LoadObservation:
        """Return the smoothed load estimate at ``time_s``."""
        if time_s < 0:
            raise ValueError("time_s must be non-negative")
        self._evict(time_s)
        samples = len(self._arrivals)
        if samples >= self._minimum_samples:
            # Before one full window has elapsed the effective window is shorter.
            effective_window = self._window_s if time_s >= self._window_s else max(time_s, 1e-9)
            rate = samples / effective_window
        else:
            rate = self._fallback_rate
        if self._utilization_samples:
            utilization = sum(value for _, value in self._utilization_samples) / len(
                self._utilization_samples
            )
        else:
            utilization = 0.0
        return LoadObservation(
            time_s=float(time_s),
            call_arrival_rate=rate,
            pdch_utilization=utilization,
            samples=samples,
        )
