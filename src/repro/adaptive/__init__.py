"""Adaptive performance management: dynamic adjustment of the PDCH reservation.

The paper closes with: "Applying adaptive performance management, future work
considers the dynamic adjustment of the number of PDCHs with respect to the
current GSM and GPRS traffic load and the desired performance requirements."
Section 2 also describes the mechanism GPRS provides for it: "A load
supervision procedure monitors the load of the PDCHs in the cell.  According
to the current demand, the number of channels allocated for GPRS can be
changed."

This package implements that future work on top of the reproduction:

* :mod:`repro.adaptive.supervision` -- the load supervision procedure: sliding
  -window estimation of the call arrival rate and of the PDCH utilisation from
  raw event observations;
* :mod:`repro.adaptive.policies` -- allocation policies mapping the supervised
  load to a PDCH reservation: a static baseline, a utilisation-threshold rule
  with hysteresis, and a model-driven policy that queries the paper's CTMC for
  the smallest reservation meeting a QoS profile;
* :mod:`repro.adaptive.controller` -- the controller tying supervisor and
  policy together, plus a quasi-stationary evaluation harness that replays a
  load trajectory and scores the resulting QoS and reallocation churn.

The earlier, simpler :class:`repro.experiments.dimensioning.AdaptivePdchController`
remains available; this package is the richer framework built around the same
idea.
"""

from repro.adaptive.controller import (
    AdaptiveAllocationController,
    ControllerDecision,
    PolicyEvaluation,
    evaluate_policy,
)
from repro.adaptive.policies import (
    AllocationPolicy,
    ModelDrivenPolicy,
    StaticAllocationPolicy,
    UtilizationThresholdPolicy,
)
from repro.adaptive.supervision import LoadObservation, LoadSupervisor

__all__ = [
    "AdaptiveAllocationController",
    "AllocationPolicy",
    "ControllerDecision",
    "LoadObservation",
    "LoadSupervisor",
    "ModelDrivenPolicy",
    "PolicyEvaluation",
    "StaticAllocationPolicy",
    "UtilizationThresholdPolicy",
    "evaluate_policy",
]
