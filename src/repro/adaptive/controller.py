"""The adaptive allocation controller and its evaluation harness.

:class:`AdaptiveAllocationController` feeds a :class:`~repro.adaptive.supervision.LoadSupervisor`
into an allocation policy and keeps track of the resulting reservation and of
how often it changes (reallocation churn is not free: every change triggers
signalling towards the mobile stations).

:func:`evaluate_policy` replays a deterministic load trajectory through a
policy and scores each epoch with the analytical model -- the quasi-stationary
evaluation that makes different policies directly comparable (the paper's
future-work question: does adapting the reservation beat any fixed one?).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.adaptive.policies import AllocationPolicy
from repro.adaptive.supervision import LoadObservation, LoadSupervisor
from repro.core.measures import GprsPerformanceMeasures
from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters

__all__ = [
    "AdaptiveAllocationController",
    "ControllerDecision",
    "EpochOutcome",
    "PolicyEvaluation",
    "evaluate_policy",
]


@dataclass(frozen=True)
class ControllerDecision:
    """One decision taken by the adaptive controller."""

    observation: LoadObservation
    reserved_pdch: int
    changed: bool


class AdaptiveAllocationController:
    """Couples load supervision with an allocation policy.

    Parameters
    ----------
    supervisor:
        The load supervisor receiving raw observations.
    policy:
        The allocation policy consulted at every decision epoch.
    initial_reserved:
        Reservation in force before the first decision.
    decision_interval_s:
        Minimum time between two consecutive decisions; estimates arriving
        earlier only update the supervisor.
    """

    def __init__(
        self,
        supervisor: LoadSupervisor,
        policy: AllocationPolicy,
        *,
        initial_reserved: int = 1,
        decision_interval_s: float = 60.0,
    ) -> None:
        if initial_reserved < 0:
            raise ValueError("initial_reserved must be non-negative")
        if decision_interval_s <= 0:
            raise ValueError("decision_interval_s must be positive")
        self.supervisor = supervisor
        self.policy = policy
        self._reserved = initial_reserved
        self._interval = decision_interval_s
        self._last_decision_time: float | None = None
        self._decisions: list[ControllerDecision] = []

    @property
    def current_reserved_pdch(self) -> int:
        return self._reserved

    @property
    def decisions(self) -> list[ControllerDecision]:
        return list(self._decisions)

    @property
    def reallocation_count(self) -> int:
        """Number of decisions that actually changed the reservation."""
        return sum(1 for decision in self._decisions if decision.changed)

    # ------------------------------------------------------------------ #
    # Feeding events
    # ------------------------------------------------------------------ #
    def on_call_arrival(self, time_s: float) -> ControllerDecision | None:
        """Record a call arrival; possibly take a decision."""
        self.supervisor.record_call_arrival(time_s)
        return self._maybe_decide(time_s)

    def on_utilization_sample(self, time_s: float, utilization: float) -> (
        ControllerDecision | None
    ):
        """Record a PDCH-utilisation sample; possibly take a decision."""
        self.supervisor.record_pdch_utilization(time_s, utilization)
        return self._maybe_decide(time_s)

    def _maybe_decide(self, time_s: float) -> ControllerDecision | None:
        if (
            self._last_decision_time is not None
            and time_s - self._last_decision_time < self._interval
        ):
            return None
        return self.decide_now(time_s)

    def decide_now(self, time_s: float) -> ControllerDecision:
        """Force a decision at ``time_s`` regardless of the decision interval."""
        observation = self.supervisor.estimate(time_s)
        reserved = self.policy.decide(observation, self._reserved)
        if reserved < 0:
            raise ValueError("the policy returned a negative reservation")
        changed = reserved != self._reserved
        self._reserved = reserved
        self._last_decision_time = time_s
        decision = ControllerDecision(
            observation=observation, reserved_pdch=reserved, changed=changed
        )
        self._decisions.append(decision)
        return decision


@dataclass(frozen=True)
class EpochOutcome:
    """Model-predicted performance of one epoch of a replayed load trajectory."""

    arrival_rate: float
    reserved_pdch: int
    measures: GprsPerformanceMeasures


@dataclass(frozen=True)
class PolicyEvaluation:
    """Outcome of replaying a load trajectory through an allocation policy."""

    epochs: tuple[EpochOutcome, ...]
    reallocations: int

    def mean_throughput_per_user_kbit_s(self) -> float:
        return sum(epoch.measures.throughput_per_user_kbit_s for epoch in self.epochs) / len(
            self.epochs
        )

    def worst_packet_loss(self) -> float:
        return max(epoch.measures.packet_loss_probability for epoch in self.epochs)

    def worst_voice_blocking(self) -> float:
        return max(epoch.measures.voice_blocking_probability for epoch in self.epochs)

    def mean_reserved_pdch(self) -> float:
        return sum(epoch.reserved_pdch for epoch in self.epochs) / len(self.epochs)


def evaluate_policy(
    base_parameters: GprsModelParameters,
    policy: AllocationPolicy,
    arrival_rate_trajectory: Sequence[float],
    *,
    initial_reserved: int | None = None,
    solver: str = "auto",
) -> PolicyEvaluation:
    """Replay a load trajectory through a policy and score it with the CTMC.

    Each entry of ``arrival_rate_trajectory`` is one epoch (e.g. a busy-hour
    profile sampled every 15 minutes).  For every epoch the policy sees a
    perfect arrival-rate estimate (the evaluation isolates the *allocation*
    question from the estimation question) together with the PDCH utilisation
    the model predicted for the *previous* epoch -- the information a real
    load supervisor would have at the decision instant.  The chosen
    reservation is applied and the stationary measures of the resulting
    configuration are recorded.
    """
    rates = [float(rate) for rate in arrival_rate_trajectory]
    if not rates:
        raise ValueError("the trajectory must contain at least one arrival rate")
    reserved = (
        base_parameters.reserved_pdch if initial_reserved is None else int(initial_reserved)
    )
    epochs: list[EpochOutcome] = []
    reallocations = 0
    previous_measures: GprsPerformanceMeasures | None = None
    for index, rate in enumerate(rates):
        if previous_measures is None:
            utilization = 0.0
        else:
            utilization = min(
                1.0, previous_measures.carried_data_traffic / max(reserved, 1)
            )
        observation = LoadObservation(
            time_s=float(index),
            call_arrival_rate=rate,
            pdch_utilization=utilization,
            samples=0,
        )
        decision = policy.decide(observation, reserved)
        decision = min(max(decision, 0), base_parameters.number_of_channels - 1)
        if decision != reserved and index > 0:
            reallocations += 1
        reserved = decision
        configuration = base_parameters.replace(
            reserved_pdch=reserved, total_call_arrival_rate=max(rate, 1e-6)
        )
        measures = GprsMarkovModel(configuration, solver_method=solver).measures()
        previous_measures = measures
        epochs.append(
            EpochOutcome(arrival_rate=rate, reserved_pdch=reserved, measures=measures)
        )
    return PolicyEvaluation(epochs=tuple(epochs), reallocations=reallocations)
