"""Reproduction of "Performance Analysis of the General Packet Radio Service".

This package reproduces the analytical model, the validation simulator and the
complete evaluation of Lindemann & Thümmler's GPRS performance study.  The
high-level entry points are:

* :class:`~repro.core.model.GprsMarkovModel` -- the paper's CTMC model of a
  single GSM/GPRS cell; solve it for one configuration and read the
  performance measures (carried data traffic, packet loss probability,
  queueing delay, throughput per user, voice blocking, ...).
* :class:`~repro.core.parameters.GprsModelParameters` -- the full parameter
  set (Table 2) with the Table 3 traffic-model presets from
  :func:`~repro.traffic.presets.traffic_model`.
* :class:`~repro.simulator.simulation.GprsNetworkSimulator` -- the detailed
  discrete-event simulator of a seven-cell cluster with explicit handovers,
  TDMA-frame transmission and TCP flow control, used to validate the CTMC.
* :mod:`~repro.experiments` -- parameter sweeps and the ``figure5`` ...
  ``figure15`` / ``table2`` / ``table3`` regeneration functions.

Quickstart::

    from repro import GprsMarkovModel, GprsModelParameters, traffic_model

    params = GprsModelParameters.from_traffic_model(
        traffic_model(3), total_call_arrival_rate=0.5)
    solution = GprsMarkovModel(params).solve()
    print(solution.measures.carried_data_traffic)
"""

from repro.core.handover import HandoverBalance, balance_handover_rates
from repro.core.measures import GprsPerformanceMeasures, compute_measures
from repro.core.model import GprsMarkovModel, GprsModelSolution
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.traffic.presets import (
    TRAFFIC_MODEL_1,
    TRAFFIC_MODEL_2,
    TRAFFIC_MODEL_3,
    traffic_model,
)
from repro.traffic.session import PacketSessionModel

__version__ = "1.0.0"

__all__ = [
    "GprsMarkovModel",
    "GprsModelParameters",
    "GprsModelSolution",
    "GprsPerformanceMeasures",
    "GprsStateSpace",
    "HandoverBalance",
    "PacketSessionModel",
    "TRAFFIC_MODEL_1",
    "TRAFFIC_MODEL_2",
    "TRAFFIC_MODEL_3",
    "__version__",
    "balance_handover_rates",
    "compute_measures",
    "traffic_model",
]
