#!/usr/bin/env python
"""Link quality, ARQ retransmissions and link adaptation.

The paper fixes the coding scheme to CS-2 and assumes an error-free radio
link; the cost of RLC retransmissions is explicitly deferred to future work.
This example exercises that future work (the :mod:`repro.radio` package):

1. it prints, for a range of carrier-to-interference ratios, the block error
   rate of every coding scheme, the goodput that selective-repeat ARQ leaves,
   and which coding scheme link adaptation would pick;
2. it then feeds the CS-2 block error rate into the analytical GPRS model and
   shows how carried data traffic, per-user throughput and packet loss react
   as the radio link degrades.

Run it with::

    python examples/link_quality_and_arq.py [arrival_rate]
"""

from __future__ import annotations

import sys

from repro import GprsModelParameters, traffic_model
from repro.experiments.sensitivity import sweep_block_error_rate
from repro.radio import best_coding_scheme, block_error_rate, effective_pdch_rate_kbit_s
from repro.radio.link_adaptation import switching_thresholds

CODING_SCHEMES = ("CS-1", "CS-2", "CS-3", "CS-4")


def print_link_level_table() -> None:
    print("Link level: BLER, ARQ goodput (kbit/s per PDCH) and the adaptive choice")
    print("-" * 78)
    header = f"{'C/I [dB]':>9}"
    for scheme in CODING_SCHEMES:
        header += f"  {scheme + ' BLER':>10} {scheme + ' good':>10}"
    header += f"  {'adapted':>8}"
    print(header)
    for ci in (3.0, 6.0, 9.0, 12.0, 15.0, 20.0, 25.0):
        row = f"{ci:>9.1f}"
        for scheme in CODING_SCHEMES:
            bler = block_error_rate(scheme, ci)
            goodput = effective_pdch_rate_kbit_s(scheme, bler)
            row += f"  {bler:>10.3f} {goodput:>10.2f}"
        row += f"  {best_coding_scheme(ci):>8}"
        print(row)
    print()
    print("Coding-scheme switching thresholds (goodput crossovers):")
    for (below, above), ci in sorted(switching_thresholds().items(), key=lambda item: item[1]):
        print(f"  switch {below} -> {above} at C/I = {ci:5.2f} dB")
    print()


def print_model_level_table(arrival_rate: float) -> None:
    parameters = GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=arrival_rate,
        gprs_fraction=0.05,
        reserved_pdch=2,
        buffer_size=20,
        max_gprs_sessions=10,
    )
    sweep = sweep_block_error_rate(parameters, (0.0, 0.05, 0.1, 0.2, 0.4))
    print(f"GPRS cell performance vs. block error rate "
          f"(traffic model 3, {arrival_rate} calls/s, 2 reserved PDCHs)")
    print("-" * 78)
    print(f"{'BLER':>6} {'CDT [PDCH]':>12} {'throughput/user [kbit/s]':>26} "
          f"{'packet loss':>12} {'delay [s]':>10}")
    for value, measures in zip(sweep.values, sweep.measures):
        print(
            f"{value:>6.2f} {measures.carried_data_traffic:>12.3f} "
            f"{measures.throughput_per_user_kbit_s:>26.3f} "
            f"{measures.packet_loss_probability:>12.5f} {measures.queueing_delay:>10.3f}"
        )


def main() -> None:
    arrival_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print_link_level_table()
    print_model_level_table(arrival_rate)


if __name__ == "__main__":
    main()
