#!/usr/bin/env python
"""Validation: compare the Markov model against the network-level simulator.

This example repeats, for a single operating point, the validation experiment
of Section 5.2: the cell is evaluated once with the analytical model (single
cell, balanced handover flows, threshold approximation of TCP) and once with
the detailed discrete-event simulator (seven-cell cluster, explicit handovers,
per-packet radio transmission, full TCP Reno dynamics).  For every performance
measure the script reports the simulation mean, its 95% confidence half-width
and whether the analytical value falls inside the interval -- the validation
criterion used by the paper.

Run it with::

    python examples/model_vs_simulation.py [arrival_rate]
"""

from __future__ import annotations

import sys

from repro import GprsMarkovModel, GprsModelParameters, traffic_model
from repro.simulator import GprsNetworkSimulator, SimulationConfig


def main() -> None:
    arrival_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4

    parameters = GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=arrival_rate,
        gprs_fraction=0.05,
        reserved_pdch=1,
        buffer_size=30,
        max_gprs_sessions=12,
    )

    print("Solving the Markov model ...")
    analytical = GprsMarkovModel(parameters).solve().measures

    print("Running the seven-cell simulator (this takes a minute) ...")
    config = SimulationConfig(
        cell_parameters=parameters,
        number_of_cells=7,
        simulation_time_s=8000.0,
        warmup_time_s=800.0,
        batches=8,
        seed=42,
    )
    simulation = GprsNetworkSimulator(config).run()

    comparison = simulation.compare_with(analytical)
    print()
    print(f"{'measure':<28} {'simulation':>14} {'+/-':>9} {'model':>12}  inside CI?")
    print("-" * 80)
    agreements = 0
    for metric, entry in comparison.items():
        inside = bool(entry["analytical_inside_interval"])
        agreements += inside
        print(
            f"{metric:<28} {entry['simulation_mean']:>14.5g} "
            f"{entry['confidence_half_width']:>9.2g} {entry['analytical']:>12.5g}  "
            f"{'yes' if inside else 'NO'}"
        )
    print("-" * 80)
    print(f"{agreements} of {len(comparison)} analytical values lie inside the 95% "
          "confidence interval of the simulation.")


if __name__ == "__main__":
    main()
