#!/usr/bin/env python
"""PDCH dimensioning: how many packet data channels should be reserved for GPRS?

This is the engineering question the paper is written to answer.  A network
operator defines a QoS profile -- here, as in Section 5.3 of the paper, that a
GPRS user must keep at least 50% of the maximum per-user throughput -- and
wants to know, for a given share of GPRS users, up to which call arrival rate
each number of reserved PDCHs can honour that profile, and what it costs the
voice service.

The script sweeps the call arrival rate for 0, 1, 2 and 4 reserved PDCHs and
for 2%, 5% and 10% GPRS users (the comparison of Figs. 11-13), finds the
largest arrival rate at which the QoS profile still holds, and prints the
resulting dimensioning table together with the voice blocking penalty.

Run it with::

    python examples/pdch_dimensioning.py
"""

from __future__ import annotations

from repro import GprsModelParameters, traffic_model
from repro.experiments.sweep import sweep_arrival_rates

#: QoS profile of the paper: at most 50% throughput degradation per user.
MAX_THROUGHPUT_DEGRADATION = 0.5

ARRIVAL_RATES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)
RESERVED_PDCH_OPTIONS = (0, 1, 2, 4)
GPRS_SHARES = (0.02, 0.05, 0.10)

# Scaled-down buffer/session cap so the whole sweep finishes in well under a
# minute; the qualitative dimensioning answer is unchanged (see EXPERIMENTS.md).
BUFFER_SIZE = 30
MAX_SESSIONS = 12


def max_supported_rate(gprs_share: float, reserved_pdch: int) -> tuple[float, float]:
    """Return (largest supported arrival rate, voice blocking at that rate).

    "Supported" means the average throughput per user stays above
    ``(1 - MAX_THROUGHPUT_DEGRADATION)`` times the zero-load throughput.
    """
    params = GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=ARRIVAL_RATES[0],
        gprs_fraction=gprs_share,
        reserved_pdch=reserved_pdch,
        buffer_size=BUFFER_SIZE,
        max_gprs_sessions=MAX_SESSIONS,
    )
    sweep = sweep_arrival_rates(params, ARRIVAL_RATES)
    throughput = sweep.series("throughput_per_user_kbit_s")
    voice_blocking = sweep.series("voice_blocking_probability")
    reference = throughput[0]
    threshold = (1.0 - MAX_THROUGHPUT_DEGRADATION) * reference

    supported_rate = 0.0
    blocking_at_rate = 0.0
    for rate, value, blocking in zip(sweep.arrival_rates, throughput, voice_blocking):
        if value >= threshold:
            supported_rate = rate
            blocking_at_rate = blocking
        else:
            break
    return supported_rate, blocking_at_rate


def main() -> None:
    print("QoS profile: per-user throughput degradation of at most "
          f"{MAX_THROUGHPUT_DEGRADATION:.0%}")
    print(f"(traffic model 3, buffer K={BUFFER_SIZE}, session cap M={MAX_SESSIONS})")
    print()
    header = f"{'GPRS users':>10} | " + " | ".join(
        f"{pdch} PDCH" .rjust(14) for pdch in RESERVED_PDCH_OPTIONS
    )
    print(header)
    print("-" * len(header))
    for share in GPRS_SHARES:
        cells = []
        for pdch in RESERVED_PDCH_OPTIONS:
            rate, blocking = max_supported_rate(share, pdch)
            cells.append(f"{rate:.1f}/s (B={blocking:.3f})".rjust(14))
        print(f"{share:>9.0%} | " + " | ".join(cells))
    print()
    print("Each cell shows the largest GSM/GPRS call arrival rate at which the")
    print("QoS profile still holds and the GSM voice blocking probability (B)")
    print("at that operating point.  As in the paper: with 2% GPRS users four")
    print("reserved PDCHs carry the full 1 call/s load, while with 5% and 10%")
    print("GPRS users the profile can only be guaranteed up to lower rates, at")
    print("a negligible cost in voice blocking.")


if __name__ == "__main__":
    main()
