#!/usr/bin/env python
"""Application mixes, synthetic traces and fitting the 3GPP model back to them.

The paper evaluates homogeneous WWW-browsing populations.  This example uses
the traffic extensions of the library to go one step further:

1. build a mixed population (WWW browsing, FTP downloads, e-mail) and show the
   per-session statistics of the mix next to the pure Table 3 models;
2. evaluate the GPRS cell under the mix by plugging the mix's equivalent
   session model into the analytical model;
3. generate a synthetic packet trace from the 3GPP sampler, measure its
   burstiness (interarrival variability, index of dispersion) and fit the
   session model back from the raw timestamps -- the round trip a
   practitioner would perform with measured traces.

Run it with::

    python examples/traffic_mix_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import GprsMarkovModel, GprsModelParameters, traffic_model
from repro.traffic.applications import ApplicationMix
from repro.traffic.sampling import SessionSampler
from repro.traffic.statistics import compute_trace_statistics, fit_session_model


def describe_session(label: str, session) -> None:
    print(f"  {label:<34} duration {session.mean_session_duration_s:8.1f} s   "
          f"mean rate {session.mean_bit_rate_kbit_s:6.2f} kbit/s   "
          f"activity {session.activity_factor:5.1%}")


def main() -> None:
    print("1. Application mix")
    print("-" * 78)
    mix = ApplicationMix.from_shares({"www-32k": 0.6, "ftp": 0.1, "email": 0.3})
    for weight, component in zip(mix.normalised_weights(), mix.components):
        describe_session(f"{component.session.name} ({weight:.0%})", component.session)
    equivalent = mix.equivalent_session_model("mixed population")
    describe_session("equivalent single model", equivalent)
    print()

    print("2. Cell performance under the mix (0.5 calls/s, 10% GPRS users)")
    print("-" * 78)
    for label, session in (
        ("pure WWW 32 kbit/s (traffic model 2)", traffic_model(2).session),
        ("application mix", equivalent),
    ):
        parameters = GprsModelParameters(
            total_call_arrival_rate=0.5,
            gprs_fraction=0.10,
            traffic=session,
            reserved_pdch=2,
            buffer_size=20,
            max_gprs_sessions=10,
        )
        measures = GprsMarkovModel(parameters).measures()
        print(f"  {label:<38} CDT {measures.carried_data_traffic:6.3f} PDCH   "
              f"loss {measures.packet_loss_probability:8.5f}   "
              f"throughput/user {measures.throughput_per_user_kbit_s:6.2f} kbit/s")
    print()

    print("3. Synthetic trace, burstiness statistics and model fitting")
    print("-" * 78)
    model = traffic_model(3).session
    sampler = SessionSampler(model, np.random.default_rng(42))
    times = []
    offset = 0.0
    for _ in range(150):
        trace = sampler.sample_session(start_time=offset)
        times.extend(trace.all_packet_times())
        offset = trace.duration + sampler.sample_reading_time()
    times = np.array(times)
    stats = compute_trace_statistics(times, window_s=5.0)
    print(f"  trace: {stats.number_of_packets} packets over {stats.duration_s:,.0f} s "
          f"({stats.mean_rate:.2f} packets/s)")
    print(f"  interarrival SCV        {stats.interarrival_scv:6.2f}  (Poisson = 1)")
    print(f"  index of dispersion     {stats.index_of_dispersion:6.2f}  (Poisson = 1)")
    print(f"  peak-to-mean ratio      {stats.peak_to_mean_ratio:6.2f}")
    fitted = fit_session_model(times, idle_threshold_s=1.0,
                               packet_calls_per_session=model.packet_calls_per_session)
    print("  fitted 3GPP parameters vs. the generating traffic model 3:")
    print(f"    packet interarrival D_d   {fitted.packet_interarrival_s:7.3f} s "
          f"(true {model.packet_interarrival_s})")
    print(f"    packets per call N_d      {fitted.packets_per_packet_call:7.2f}   "
          f"(true {model.packets_per_packet_call})")
    print(f"    reading time D_pc         {fitted.reading_time_s:7.2f} s "
          f"(true {model.reading_time_s})")


if __name__ == "__main__":
    main()
