#!/usr/bin/env python
"""Worked busy-hour example: QoS during a load ramp, not just at its peak.

The paper's model answers "what are the steady-state measures at load x".
The transient layer answers the operator's actual question: what happens to
packet loss and delay *while* the morning ramp is under way, and how long
after the peak does the cell take to settle back.  This example builds a
staircase ramp to the peak load, solves the time-dependent model through
:class:`repro.transient.TransientModel`, and shows

* the constant-schedule anchor: started in steady state with no schedule
  change, the trajectory must sit exactly on the steady-state solver's
  measures (and the early-stop detector proves it after one matrix-vector
  product),
* the QoS trajectory across the ramp: loss and delay overshoot the eventual
  peak steady state while the buffer fills, then relax,
* the transient-vs-stationary comparison: the same peak load solved in
  steady state misses the overshoot and the recovery tail,
* the solve accounting: one generator template serves every segment of the
  ramp (only the arrival scalars are rewritten), and segments that reach
  stationarity stop early.

Run it with::

    python examples/busy_hour_ramp.py [arrival_rate] [peak_multiplier]

State-space sizes are reduced so the example finishes in seconds; the same
code runs the full Table 2 sizes if ``buffer_size``/``max_gprs_sessions``
are left at their paper values.
"""

from __future__ import annotations

import sys

from repro import GprsMarkovModel, GprsModelParameters, traffic_model
from repro.transient import TransientModel, busy_hour_ramp
from repro.validation.transient import check_transient_steady_state


def main() -> None:
    arrival_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    peak_multiplier = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0

    parameters = GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=arrival_rate,
        gprs_fraction=0.05,
        reserved_pdch=2,
        buffer_size=10,
        max_gprs_sessions=5,
    )

    # The constant-schedule anchor: with nothing changing, the transient
    # model must reproduce the steady-state solver -- this is what validates
    # the time-dependent propagation.
    anchor = check_transient_steady_state(parameters, horizon_s=600.0)
    print(anchor.summary())
    print()

    profile = busy_hour_ramp(
        peak_multiplier=peak_multiplier,
        ramp_steps=3,
        step_duration_s=60.0,
        hold_duration_s=120.0,
        samples=24,
    )
    result = TransientModel(profile, parameters).solve()

    print(
        f"busy-hour ramp: base {arrival_rate:g} calls/s to peak "
        f"{peak_multiplier * arrival_rate:g} calls/s over "
        f"{profile.total_duration_s:g}s "
        f"({profile.schedule.number_of_segments} segments)"
    )
    print(
        f"solve: {result.matvecs} matrix-vector products, "
        f"{result.templates_built} template(s) built for "
        f"{profile.schedule.number_of_segments} segments, "
        f"{result.early_stopped_segments} early stop(s)"
    )
    print()

    header = (
        f"{'time [s]':<10}{'load':>7}{'packet loss':>14}"
        f"{'delay [s]':>12}{'queue':>9}"
    )
    print(header)
    print("-" * len(header))
    for point in result.points:
        print(
            f"{point.time_s:<10.4g}{point.arrival_rate:>7.3g}"
            f"{point.values['packet_loss_probability']:>14.5f}"
            f"{point.values['queueing_delay']:>12.5f}"
            f"{point.values['mean_queue_length']:>9.4f}"
        )
    print()

    # What a stationary analysis at the peak load would have reported.
    peak_steady = GprsMarkovModel(
        parameters.with_arrival_rate(arrival_rate * peak_multiplier)
    ).solve()
    peak_loss = result.peak("packet_loss_probability")
    print("transient vs. stationary view of the peak:")
    print(
        f"  steady state at peak load:        packet loss "
        f"{peak_steady.measures.packet_loss_probability:.5f}"
    )
    print(f"  worst instant of the trajectory:  packet loss {peak_loss:.5f}")
    print(
        f"  time-averaged over the ramp:      packet loss "
        f"{result.time_averages()['packet_loss_probability']:.5f}"
    )


if __name__ == "__main__":
    main()
