#!/usr/bin/env python
"""Handover prioritisation and adaptive PDCH allocation over a busy-hour profile.

Two operator-facing questions that extend the paper's dimensioning study:

1. **Guard channels.**  The paper admits new calls and handovers identically.
   How much does reserving a few guard channels for handover calls reduce the
   handover failure probability, and what does it cost in new-call blocking?
2. **Adaptive PDCH reservation.**  The paper's future work: over a daily load
   profile, compare fixed reservations of 1/2/4 PDCHs against the model-driven
   adaptive policy that re-dimensions the reservation as the load changes.

Run it with::

    python examples/guard_channels_and_adaptive_pdch.py
"""

from __future__ import annotations

from repro import GprsModelParameters, traffic_model
from repro.experiments.dimensioning import QosProfile
from repro.experiments.extensions import adaptive_policy_comparison, guard_channel_tradeoff


def main() -> None:
    parameters = GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=0.7,
        gprs_fraction=0.05,
        reserved_pdch=1,
        buffer_size=15,
        max_gprs_sessions=8,
    )

    print("1. Guard channels on the voice channels (handover failure vs. new-call blocking)")
    print("-" * 80)
    print(f"{'guard channels':>15} {'new-call blocking':>19} {'handover failure':>18} "
          f"{'carried voice [Erl]':>20}")
    for row in guard_channel_tradeoff(parameters, (0, 1, 2, 3, 4)):
        print(f"{row.guard_channels:>15d} {row.new_call_blocking:>19.5f} "
              f"{row.handover_failure:>18.6f} {row.carried_traffic_erlangs:>20.3f}")
    print()

    print("2. Adaptive PDCH reservation over a busy-hour load profile")
    print("-" * 80)
    trajectory = (0.1, 0.3, 0.6, 0.9, 0.6, 0.2)
    comparison = adaptive_policy_comparison(
        parameters,
        load_trajectory=trajectory,
        static_reservations=(1, 2, 4),
        profile=QosProfile(max_throughput_degradation=0.5),
    )
    print(f"load profile [calls/s]: {', '.join(f'{rate:.1f}' for rate in trajectory)}")
    print()
    print(f"{'policy':<24} {'mean throughput/user':>22} {'worst packet loss':>18} "
          f"{'mean reserved':>14} {'reallocations':>14}")
    for reserved, evaluation in sorted(comparison.static_evaluations.items()):
        print(f"{'static, ' + str(reserved) + ' PDCH':<24} "
              f"{evaluation.mean_throughput_per_user_kbit_s():>22.3f} "
              f"{evaluation.worst_packet_loss():>18.5f} "
              f"{evaluation.mean_reserved_pdch():>14.2f} {evaluation.reallocations:>14d}")
    adaptive = comparison.adaptive_evaluation
    print(f"{'adaptive (model-driven)':<24} "
          f"{adaptive.mean_throughput_per_user_kbit_s():>22.3f} "
          f"{adaptive.worst_packet_loss():>18.5f} "
          f"{adaptive.mean_reserved_pdch():>14.2f} {adaptive.reallocations:>14d}")
    print()
    best = comparison.best_static_reservation()
    print(f"best static reservation for this profile: {best} PDCH; "
          f"the adaptive policy reaches "
          f"{adaptive.mean_throughput_per_user_kbit_s() / comparison.static_evaluations[best].mean_throughput_per_user_kbit_s():.0%} "
          f"of its throughput while reserving "
          f"{adaptive.mean_reserved_pdch():.2f} PDCHs on average.")


if __name__ == "__main__":
    main()
