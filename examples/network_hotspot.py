#!/usr/bin/env python
"""Worked hotspot example: a hot cell overflows into its neighbours.

The single-cell model of the paper assumes every neighbour behaves like the
modelled cell (homogeneity).  The network layer drops that assumption: this
example builds the seven-cell wrap-around cluster, multiplies the mid cell's
arrival rate, and solves all cells jointly through the handover-flow fixed
point of :class:`repro.network.NetworkModel`.  It then shows

* how the hot cell degrades (blocking, packet loss) compared to the uniform
  network at the same base load,
* how its neighbours absorb the overflow: their incoming handover rates and
  blocking probabilities rise even though their own arrival rate is unchanged,
* the convergence/warm-start accounting of the joint solve, and
* the homogeneity anchor: with the multiplier at 1.0 the network reproduces
  the paper's single-cell fixed point to ~1e-10.

Run it with::

    python examples/network_hotspot.py [arrival_rate] [multiplier]

State-space sizes are reduced so the example finishes in seconds; the same
code runs the full Table 2 sizes if ``buffer_size``/``max_gprs_sessions``
are left at their paper values.
"""

from __future__ import annotations

import sys

from repro import GprsModelParameters, traffic_model
from repro.network import NetworkModel, hexagonal_cluster, hotspot
from repro.validation.network import check_network_homogeneity


def main() -> None:
    arrival_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    multiplier = float(sys.argv[2]) if len(sys.argv) > 2 else 2.5

    parameters = GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=arrival_rate,
        gprs_fraction=0.05,
        reserved_pdch=2,
        buffer_size=10,
        max_gprs_sessions=5,
    )

    # The homogeneity anchor: a uniform cluster must agree with the paper's
    # single-cell model -- this is what validates the network coupling.
    anchor = check_network_homogeneity(parameters)
    print(anchor.summary())
    print()

    uniform = NetworkModel(hexagonal_cluster(7), parameters).solve()
    heated = NetworkModel(
        hotspot(7, hot_cell=0, arrival_multiplier=multiplier), parameters
    ).solve()

    print(
        f"hotspot cluster: mid cell at {multiplier:g}x arrivals "
        f"({multiplier * arrival_rate:.3g} calls/s), ring at {arrival_rate:.3g} calls/s"
    )
    print(
        f"joint solve: {heated.outer_iterations} outer iteration(s), "
        f"{heated.solver_calls} cell solves "
        f"({heated.cold_solves} cold / {heated.warm_solves} warm), "
        f"converged={heated.converged}"
    )
    print()

    header = (
        f"{'cell':<6}{'voice blocking':>16}{'GPRS blocking':>16}"
        f"{'packet loss':>14}{'handover in /s':>16}"
    )
    print(header)
    print("-" * len(header))
    for cell in heated.cells:
        measures = cell.measures
        label = "hot" if cell.index == 0 else f"ring {cell.index}"
        print(
            f"{label:<6}{measures.voice_blocking_probability:>16.5f}"
            f"{measures.gprs_blocking_probability:>16.5f}"
            f"{measures.packet_loss_probability:>14.5f}"
            f"{cell.gsm_incoming_rate:>16.5f}"
        )
    print()

    baseline = uniform.cells[1]
    neighbour = heated.cells[1]
    extra_in = neighbour.gsm_incoming_rate - baseline.gsm_incoming_rate
    extra_blocking = (
        neighbour.measures.voice_blocking_probability
        - baseline.measures.voice_blocking_probability
    )
    print("overflow absorbed by each ring cell (vs. uniform cluster):")
    print(f"  extra incoming GSM handover rate: {extra_in:+.5f} /s")
    print(f"  extra voice blocking:             {extra_blocking:+.5f}")


if __name__ == "__main__":
    main()
