#!/usr/bin/env python
"""Quickstart: solve the GPRS Markov model for one configuration.

This example evaluates the analytical model of the paper for the base
parameter setting (Table 2) with traffic model 3 and a GSM/GPRS call arrival
rate of 0.5 calls per second, then prints every performance measure the paper
reports: carried data traffic, packet loss probability, queueing delay,
throughput per user, carried voice traffic and the blocking probabilities.

Run it with::

    python examples/quickstart.py [arrival_rate]
"""

from __future__ import annotations

import sys

from repro import GprsMarkovModel, GprsModelParameters, traffic_model


def main() -> None:
    arrival_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    # Build the Table 2 base configuration with traffic model 3 (the
    # heavier-load WWW browsing model used for most experiments).  The buffer
    # size is reduced from the paper's 100 packets so the example finishes in
    # a few seconds; pass buffer_size=100 for the full-size chain.
    parameters = GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=arrival_rate,
        gprs_fraction=0.05,
        reserved_pdch=1,
        buffer_size=40,
    )

    model = GprsMarkovModel(parameters)
    print(f"state space: {model.number_of_states} states")

    solution = model.solve()
    measures = solution.measures

    print(f"solver: {solution.steady_state.method} "
          f"({solution.steady_state.iterations} iterations)")
    print(f"balanced GSM handover rate:  {solution.handover.gsm_handover_arrival_rate:.4f} /s")
    print(f"balanced GPRS handover rate: {solution.handover.gprs_handover_arrival_rate:.4f} /s")
    print()
    print("Performance measures")
    print("-" * 50)
    print(f"carried data traffic (PDCHs in use)    {measures.carried_data_traffic:8.3f}")
    print(f"packet loss probability                {measures.packet_loss_probability:8.5f}")
    print(f"queueing delay [s]                     {measures.queueing_delay:8.3f}")
    print(f"throughput per user [kbit/s]           {measures.throughput_per_user_kbit_s:8.3f}")
    print(f"carried voice traffic (channels)       {measures.carried_voice_traffic:8.3f}")
    print(f"voice blocking probability             {measures.voice_blocking_probability:8.5f}")
    print(f"average GPRS sessions in cell          {measures.average_gprs_sessions:8.3f}")
    print(f"GPRS session blocking probability      {measures.gprs_blocking_probability:8.2e}")


if __name__ == "__main__":
    main()
