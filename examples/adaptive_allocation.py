#!/usr/bin/env python
"""Adaptive PDCH allocation (the paper's future-work feature).

The conclusions of the paper propose adjusting the number of reserved PDCHs
dynamically, following the current GSM/GPRS traffic load and the desired
performance requirements (adaptive performance management).  This example
drives the :class:`repro.experiments.AdaptivePdchController` with a synthetic
daily load profile: the controller re-dimensions the cell with the analytical
model whenever the observed call arrival rate changes appreciably.

Run it with::

    python examples/adaptive_allocation.py
"""

from __future__ import annotations

from repro import GprsModelParameters, traffic_model
from repro.experiments import AdaptivePdchController, QosProfile

#: A synthetic 24-hour load profile: (hour, GSM/GPRS call arrival rate in calls/s).
DAILY_LOAD_PROFILE = (
    (0, 0.05), (3, 0.02), (6, 0.10), (8, 0.40), (10, 0.70), (12, 0.90),
    (14, 0.80), (16, 0.95), (18, 0.60), (20, 0.35), (22, 0.15),
)


def main() -> None:
    parameters = GprsModelParameters.from_traffic_model(
        traffic_model(3),
        total_call_arrival_rate=DAILY_LOAD_PROFILE[0][1],
        gprs_fraction=0.05,
        reserved_pdch=1,
        buffer_size=25,
        max_gprs_sessions=10,
    )
    profile = QosProfile(
        max_throughput_degradation=0.5,   # the paper's example QoS profile
        max_voice_blocking=0.05,
    )
    controller = AdaptivePdchController(
        parameters, profile, candidate_reservations=(0, 1, 2, 3, 4, 6),
    )

    print("Adaptive PDCH allocation over a synthetic daily load profile")
    print("QoS profile: <=50% throughput degradation, <=5% voice blocking")
    print()
    print(f"{'hour':>4}  {'load [calls/s]':>14}  {'reserved PDCH':>13}  "
          f"{'ATU [kbit/s]':>12}  {'voice blocking':>14}  profile")
    print("-" * 78)
    for hour, load in DAILY_LOAD_PROFILE:
        decision = controller.observe(load)
        measures = decision.assessment.measures
        status = "ok" if decision.satisfied else "VIOLATED"
        print(
            f"{hour:>4}  {load:>14.2f}  {decision.reserved_pdch:>13}  "
            f"{measures.throughput_per_user_kbit_s:>12.2f}  "
            f"{measures.voice_blocking_probability:>14.4f}  {status}"
        )
    print()
    changes = sum(
        1
        for earlier, later in zip(controller.history, controller.history[1:])
        if earlier.reserved_pdch != later.reserved_pdch
    )
    print(f"The controller changed the reservation {changes} times over the day, "
          "reserving more PDCHs in the busy hours and returning them to the\n"
          "voice service at night -- exactly the capacity-on-demand behaviour the "
          "paper's conclusions call for.")


if __name__ == "__main__":
    main()
