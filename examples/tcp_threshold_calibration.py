#!/usr/bin/env python
"""Calibrating the TCP flow-control threshold eta (the Figure 5 experiment).

The Markov model approximates TCP flow control with a single knob: once the
BSC buffer holds more than ``eta * K`` packets, the packet arrival rate of the
TCP sources is capped by the service rate.  The paper calibrates ``eta``
against a simulator with real TCP dynamics and finds ``eta = 0.7`` to be the
best fit, with ``eta = 1`` (no flow control) driving the loss probability
towards one under load.

This script reproduces that calibration: it sweeps the call arrival rate for
several values of ``eta`` and, for reference, runs the network simulator with
full TCP at each rate, printing the packet loss probability side by side.

Run it with::

    python examples/tcp_threshold_calibration.py
"""

from __future__ import annotations

from repro.experiments import ExperimentScale, figure5, format_figure_result


def main() -> None:
    # A moderately sized configuration: large enough to show the separation of
    # the eta curves, small enough to finish in about a minute including the
    # simulation reference.
    scale = ExperimentScale.default().replace(
        arrival_rates=(0.2, 0.4, 0.6, 0.8, 1.0),
        simulation_time_s=3000.0,
        simulation_warmup_s=300.0,
        simulation_batches=5,
    )
    result = figure5(scale, thresholds=(0.5, 0.7, 0.9, 1.0), include_simulation=True)
    print(format_figure_result(result))
    print()
    print("Reading the table: eta = 1.0 (no flow control) lets the loss probability")
    print("grow towards one as the load increases, while the TCP-controlled")
    print("simulation keeps losses moderate; eta around 0.7 tracks it best, which")
    print("is the value used for all other experiments.")


if __name__ == "__main__":
    main()
