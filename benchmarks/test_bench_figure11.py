"""Figure 11: CDT and throughput per user for 2% GPRS users, 0/1/2/4 reserved PDCHs.

Paper shape to reproduce: with increasing load the carried data traffic first
rises and then falls (GSM has priority on the on-demand channels); the decline
is weaker the more PDCHs are reserved; the per-user throughput degrades with
load and degrades least with four reserved PDCHs.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure11


def test_figure11_two_percent_gprs_users(benchmark, bench_scale):
    result = run_once(benchmark, figure11, bench_scale)
    report(result)

    throughput = {
        label: np.array(result.get(label).metric("throughput_per_user_kbit_s"))
        for label in result.labels()
    }
    carried = {
        label: np.array(result.get(label).metric("carried_data_traffic"))
        for label in result.labels()
    }

    # Per-user throughput decreases with load for every reservation level.
    for series in throughput.values():
        assert series[-1] <= series[0] + 1e-9
    # At the highest load, more reserved PDCHs give higher per-user throughput.
    assert throughput["4 reserved PDCH"][-1] >= throughput["1 reserved PDCH"][-1]
    assert throughput["1 reserved PDCH"][-1] >= throughput["0 reserved PDCH"][-1]
    # Without any reserved PDCH the carried data traffic collapses under load
    # while with four reserved PDCHs it keeps growing or stays high.
    zero = carried["0 reserved PDCH"]
    four = carried["4 reserved PDCH"]
    assert zero[-1] < zero.max()
    assert four[-1] >= zero[-1]
