"""Ablation benches for model-level design choices.

Two ablations called out in DESIGN.md:

* **MMPP aggregation** -- representing ``m`` identical on-off sources by one
  ``(m+1)``-state birth-death source instead of the ``2^m`` product chain is
  what makes the state space tractable; the bench quantifies the reduction and
  checks the statistics match.
* **TCP threshold** -- the threshold approximation (eta = 0.7) versus no flow
  control (eta = 1.0): the bench times both and reports the loss-probability
  gap that figure 5 visualises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.markov.mmpp import aggregate_identical_ipps, product_form_ipps
from repro.traffic.presets import TRAFFIC_MODEL_3


def test_ablation_mmpp_aggregation(benchmark):
    """(m+1)-state aggregation vs 2^m product form for m = 10 sources."""
    source = TRAFFIC_MODEL_3.session.to_ipp()
    count = 10

    def build_both():
        aggregated = aggregate_identical_ipps(source, count)
        product = product_form_ipps(source, count)
        return aggregated, product

    aggregated, product = benchmark.pedantic(build_both, rounds=1, iterations=1)
    assert aggregated.number_of_states == count + 1
    assert product.number_of_states == 2**count
    assert aggregated.mean_arrival_rate() == pytest.approx(
        product.mean_arrival_rate(), rel=1e-9
    )


def _loss_probability(eta: float) -> float:
    params = GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=1.0,
        buffer_size=20,
        max_gprs_sessions=10,
        tcp_threshold=eta,
    )
    return GprsMarkovModel(params).measures().packet_loss_probability


def test_ablation_tcp_threshold(benchmark):
    def run_both():
        return _loss_probability(0.7), _loss_probability(1.0)

    calibrated, uncontrolled = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\npacket loss probability: eta=0.7 -> {calibrated:.4f}, "
          f"eta=1.0 (no flow control) -> {uncontrolled:.4f}")
    assert uncontrolled > calibrated
    assert uncontrolled > 0.25


def test_ablation_handover_balancing(benchmark):
    """Balanced handover flows versus ignoring mobility entirely.

    The paper's model explicitly represents mobility; this ablation quantifies
    how much the balanced handover flow raises the carried voice traffic
    compared to a model with no incoming handovers.
    """
    params = GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, total_call_arrival_rate=0.7, buffer_size=15, max_gprs_sessions=8
    )

    def carried_voice_with_balance():
        return GprsMarkovModel(params).measures().carried_voice_traffic

    balanced = benchmark.pedantic(carried_voice_with_balance, rounds=1, iterations=1)

    from repro.queueing.erlang import ErlangLossSystem

    without_mobility = ErlangLossSystem(
        arrival_rate=params.gsm_arrival_rate,
        service_rate=params.gsm_completion_rate + params.gsm_handover_departure_rate,
        servers=params.gsm_channels,
    ).carried_traffic()
    print(f"\ncarried voice traffic: balanced handovers -> {balanced:.3f}, "
          f"no incoming handovers -> {without_mobility:.3f}")
    assert balanced > without_mobility
