"""Figure 5: calibrating the TCP flow-control threshold eta.

Paper shape to reproduce: without flow control (eta = 1) the packet loss
probability grows towards one with increasing call arrival rate; lowering eta
reduces the loss; the curve for eta around 0.7 lies closest to the simulator
reference with full TCP dynamics.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure5


def test_figure5_tcp_threshold_calibration(benchmark, validation_scale):
    result = run_once(
        benchmark,
        figure5,
        validation_scale,
        thresholds=(0.5, 0.7, 1.0),
        include_simulation=True,
    )
    report(result)

    loss = {series.label: series.metric("packet_loss_probability")
            for series in result.series}
    uncontrolled = np.array(loss["Markov model, eta = 1"])
    calibrated = np.array(loss["Markov model, eta = 0.7"])
    conservative = np.array(loss["Markov model, eta = 0.5"])
    simulated = np.array(loss["simulation (TCP)"])

    # No flow control produces the highest loss everywhere and grows with load.
    assert np.all(uncontrolled >= calibrated - 1e-12)
    assert uncontrolled[-1] > uncontrolled[0]
    assert uncontrolled[-1] > 0.3
    # Throttling earlier (smaller eta) cannot increase the loss.
    assert np.all(conservative <= calibrated + 1e-12)
    # The TCP simulation does not reach the uncontrolled model's loss level at
    # high load (small tolerance for the scaled buffer), which is exactly why
    # the threshold approximation is needed ...
    assert simulated[-1] < uncontrolled[-1] + 0.1
    # ... and it lies between the throttled and the unthrottled model curves at
    # every load point: the threshold family brackets the real TCP behaviour,
    # which is what makes the calibration of figure 5 possible.
    assert np.all(simulated >= conservative - 0.05)
    assert np.all(simulated <= uncontrolled + 0.05)
