"""Ablation bench: steady-state solver choice for the GPRS chain.

DESIGN.md calls out the solver choice as a design decision: the generic sparse
direct factorisation suffers heavy fill-in on the lattice-like GPRS chain,
while the structure-exploiting fibre/phase iteration scales to the full
paper-size state spaces.  This bench times both on the same medium-size chain
and verifies they agree, and additionally times one full paper-size solve with
the structured method.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import GprsMarkovModel
from repro.core.parameters import GprsModelParameters
from repro.traffic.presets import TRAFFIC_MODEL_3


def medium_parameters() -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, total_call_arrival_rate=0.6, buffer_size=15, max_gprs_sessions=8
    )


def solve_with(method: str) -> np.ndarray:
    model = GprsMarkovModel(medium_parameters(), solver_method=method)
    return model.stationary_distribution()


@pytest.fixture(scope="module")
def reference_distribution() -> np.ndarray:
    return solve_with("direct")


def test_ablation_solver_structured(benchmark, reference_distribution):
    distribution = benchmark.pedantic(solve_with, args=("structured",), rounds=1,
                                      iterations=1)
    assert distribution == pytest.approx(reference_distribution, abs=1e-6)


def test_ablation_solver_direct(benchmark):
    distribution = benchmark.pedantic(solve_with, args=("direct",), rounds=1, iterations=1)
    assert distribution.sum() == pytest.approx(1.0)


def test_ablation_solver_power(benchmark, reference_distribution):
    distribution = benchmark.pedantic(solve_with, args=("power",), rounds=1, iterations=1)
    # Power iteration on this stiff chain converges slowly; it must still land
    # in the neighbourhood of the exact solution.
    assert distribution == pytest.approx(reference_distribution, abs=5e-3)


def test_structured_solver_handles_full_paper_size(benchmark):
    """Solve the full Table 2 / traffic model 3 chain (466,620 states) once."""
    params = GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, total_call_arrival_rate=0.5
    )
    assert params.state_space_size == 466_620

    def solve():
        return GprsMarkovModel(params, solver_method="structured").measures()

    measures = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert 0.0 <= measures.packet_loss_probability <= 1.0
    assert 0.0 < measures.carried_data_traffic < 20.0
