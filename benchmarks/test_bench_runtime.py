"""Benchmarks of the scenario runtime: extension scenarios, parallelism, cache.

Two things are measured here that no figure benchmark covers:

* the extension scenarios (workloads beyond the paper's evaluation) at the
  scaled preset, through the same executor the CLI ``sweep`` command uses;
* the runtime's own overheads -- a warm-cache run must be orders of magnitude
  faster than a cold one because it performs zero solver calls.
"""

from __future__ import annotations

from _helpers import report_scenario, run_scenario_once

from repro.runtime import ResultCache, run_sweep, scenario


class TestExtensionScenarios:
    def test_heavy_gprs(self, benchmark, bench_scale):
        result = run_scenario_once(benchmark, "heavy-gprs", bench_scale)
        # A data-dominated cell keeps all four reserved PDCHs busy under load.
        assert result.series("carried_data_traffic")[-1] > 3.0
        report_scenario(result)

    def test_degraded_radio(self, benchmark, bench_scale):
        result = run_scenario_once(benchmark, "degraded-radio", bench_scale)
        healthy = run_sweep(scenario("figure12"), bench_scale, cache=None)
        # CS-1 with 10% BLER serves packets slower than CS-2 on a clean link.
        assert (
            result.series("throughput_per_user_kbit_s")[-1]
            < healthy.series("throughput_per_user_kbit_s")[-1]
        )
        report_scenario(result)

    def test_no_flow_control(self, benchmark, bench_scale):
        result = run_scenario_once(benchmark, "no-flow-control", bench_scale)
        controlled = run_sweep(scenario("figure12"), bench_scale, cache=None)
        # Without the TCP threshold the buffer overflows far more often.
        assert (
            result.series("packet_loss_probability")[-1]
            >= controlled.series("packet_loss_probability")[-1]
        )
        report_scenario(result)


class TestRuntimeOverheads:
    def test_parallel_sweep(self, benchmark, bench_scale):
        """Two workers over the sweep points; results must match the serial run."""
        result = run_scenario_once(benchmark, "large-buffer", bench_scale, jobs=2)
        serial = run_sweep(scenario("large-buffer"), bench_scale, cache=None)
        for metric in result.spec.metrics:
            assert result.series(metric) == serial.series(metric)
        report_scenario(result)

    def test_warm_cache_skips_all_solves(self, benchmark, bench_scale, tmp_path):
        cache = ResultCache(tmp_path / "bench-cache")
        spec = scenario("bursty-sessions")
        run_sweep(spec, bench_scale, cache=cache)  # cold run fills the cache
        result = benchmark.pedantic(
            run_sweep,
            args=(spec,),
            kwargs={"scale": bench_scale, "cache": cache},
            rounds=1,
            iterations=1,
        )
        assert result.cache_misses == 0
        assert result.cache_hits == len(result.points)
        report_scenario(result)
