"""Ablation benches for the link-level extension (ARQ goodput, link adaptation).

Beyond-the-paper experiments (the paper's stated future work): the throughput
cost of RLC retransmissions and the gain of adaptive coding-scheme selection
over the fixed CS-2 the paper assumes.  Both are recorded in EXPERIMENTS.md
under "extension experiments".
"""

from __future__ import annotations

from repro.core.parameters import GprsModelParameters
from repro.experiments.extensions import arq_impact, link_adaptation_gain
from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.validation.shapes import is_monotone


def _parameters(scale) -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.7,
        buffer_size=scale.effective_buffer_size(100),
        max_gprs_sessions=scale.effective_max_sessions(20),
        reserved_pdch=2,
    )


def test_ablation_arq_block_errors(benchmark, bench_scale):
    """Per-user throughput degrades and loss grows as the RLC block error rate rises."""
    parameters = _parameters(bench_scale)

    def run():
        return arq_impact(parameters, (0.0, 0.1, 0.2, 0.4))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    throughput = result.series("throughput_per_user_kbit_s")
    loss = result.series("packet_loss_probability")
    print("\nBLER sweep (0.0, 0.1, 0.2, 0.4):")
    print("  throughput/user [kbit/s]: " + ", ".join(f"{value:.3f}" for value in throughput))
    print("  packet loss probability:  " + ", ".join(f"{value:.5f}" for value in loss))
    assert is_monotone(throughput, increasing=False, tolerance=1e-9)
    assert is_monotone(loss, tolerance=1e-9)
    # A 40% block error rate costs a substantial share of the goodput.
    assert throughput[-1] < 0.8 * throughput[0]


def test_ablation_link_adaptation(benchmark):
    """Adaptive coding never loses to fixed CS-2 and wins clearly at the extremes."""

    def run():
        return link_adaptation_gain((2.0, 5.0, 8.0, 11.0, 14.0, 18.0, 24.0, 30.0))

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nlink adaptation vs fixed CS-2:")
    for point in points:
        print(f"  C/I {point.ci_db:5.1f} dB: CS-2 {point.fixed_cs2_goodput_kbit_s:6.2f} kbit/s, "
              f"adapted ({point.adapted_scheme}) {point.adapted_goodput_kbit_s:6.2f} kbit/s "
              f"({point.gain:+.0%})")
    assert all(p.adapted_goodput_kbit_s >= p.fixed_cs2_goodput_kbit_s - 1e-9 for p in points)
    assert points[0].adapted_scheme == "CS-1"
    assert points[-1].adapted_scheme == "CS-4"
    assert points[-1].gain > 0.3  # CS-4 is >21 kbit/s vs 13.4 kbit/s on a clean link
