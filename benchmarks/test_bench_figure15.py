"""Figure 15: average number of GPRS users in the cell and GPRS blocking probability.

Paper shape to reproduce: with 2% GPRS users the session cap M is never
reached and the blocking probability stays negligible; with 10% GPRS users the
average number of sessions approaches the cap under load and the blocking
probability becomes clearly visible.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure15
from repro.traffic.presets import TRAFFIC_MODEL_3


def test_figure15_gprs_population_and_blocking(benchmark, bench_scale):
    result = run_once(benchmark, figure15, bench_scale)
    report(result)

    sessions = {
        label: np.array(result.get(label).metric("average_gprs_sessions"))
        for label in result.labels()
    }
    blocking = {
        label: np.array(result.get(label).metric("gprs_blocking_probability"))
        for label in result.labels()
    }
    cap = bench_scale.effective_max_sessions(TRAFFIC_MODEL_3.max_active_sessions)

    # More GPRS users -> more active sessions and more blocking, at every load.
    assert np.all(sessions["10% GPRS users"] >= sessions["2% GPRS users"] - 1e-12)
    assert np.all(blocking["10% GPRS users"] >= blocking["2% GPRS users"] - 1e-15)
    # The 2% curve never comes close to the cap; its blocking stays negligible
    # up to 0.7 calls/s and at least an order of magnitude below the 10% curve
    # at every load point (the paper's full-size M = 20 keeps it below 1e-5).
    assert sessions["2% GPRS users"][-1] < 0.6 * cap
    assert np.all(np.array(blocking["2% GPRS users"][:-1]) < 1e-2)
    assert np.all(
        np.array(blocking["10% GPRS users"])
        >= 10.0 * np.array(blocking["2% GPRS users"])
    )
    # The 10% curve approaches the session cap under load with visible blocking.
    assert sessions["10% GPRS users"][-1] > 0.6 * cap
    assert blocking["10% GPRS users"][-1] > blocking["10% GPRS users"][0]
    # Average population grows with the call arrival rate.
    assert np.all(np.diff(sessions["5% GPRS users"]) >= -1e-9)
