"""Benchmarks of the repetition-reuse pass: coarse correction, propagator
memoisation, pipelined network scheduling.

Three independent hot paths waste work repeated across nearly-identical
solves; each gets an A/B benchmark here, and each records its numbers in the
``BENCH_repetition.jsonl`` run ledger (see ``_helpers.persist_timings``):

* ``test_coarse_correction_sweep_count_k100`` -- at the paper's buffer depth
  (K=100) the two-level coarse-space correction must cut the structured
  solver's sweep count by >= 1.5x, with fully converged measures agreeing to
  1e-8 precision.
* ``test_propagator_replay_diurnal`` -- re-solving the ``diurnal-24h``
  trajectory must be >= 2x faster once the propagator cache holds its
  segments (measured: the replay skips the entire matvec chain), with
  bitwise-identical sampled series.
* ``test_pipelined_network_sweep_16pt`` -- a 16-point ``homogeneous-7``
  sweep scheduled points x cells through one shared pool must be bitwise
  identical for any job count, and faster than the per-point schedule when
  more than one core is available (on a single core the two schedules do the
  same work sequentially, so only the bitwise contract is asserted).

The ``*_smoke`` variants run the same machinery at the smallest sizes for
the CI ``perf-smoke`` job.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _helpers import persist_timings
from repro.core.handover import balance_handover_rates
from repro.core.measures import compute_measures
from repro.core.parameters import GprsModelParameters
from repro.core.state_space import GprsStateSpace
from repro.core.structured_solver import StructuredSolveContext, solve_structured
from repro.core.template import GeneratorTemplate
from repro.experiments.scale import ExperimentScale
from repro.network.sweep import network_sweep_payloads
from repro.runtime import scenario
from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.transient import PropagatorCache, TransientModel


# ---------------------------------------------------------------------- #
# (a) Coarse-space sweep correction
# ---------------------------------------------------------------------- #
def _structured_pair(buffer_size: int, sessions: int, rate: float, tol: float):
    """Solve one configuration cold with the correction off and on (timed)."""
    params = GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3, rate, buffer_size=buffer_size, max_gprs_sessions=sessions
    )
    space = GprsStateSpace(
        gsm_channels=params.gsm_channels,
        buffer_size=buffer_size,
        max_sessions=sessions,
    )
    balance = balance_handover_rates(params)
    template = GeneratorTemplate.build(params, space)
    generator = template.generator(
        params,
        gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
        gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
    )
    context = StructuredSolveContext.build(params, space)
    outcomes = {}
    for coarse in (False, True):
        start = time.perf_counter()
        result = solve_structured(
            params,
            space,
            generator,
            gsm_handover_arrival_rate=balance.gsm_handover_arrival_rate,
            gprs_handover_arrival_rate=balance.gprs_handover_arrival_rate,
            tol=tol,
            context=context,
            coarse_correction=coarse,
        )
        outcomes[coarse] = (result, time.perf_counter() - start)
    return params, space, balance, outcomes


def test_coarse_correction_sweep_count_k100():
    """K=100 paper-depth solve: >= 1.5x fewer sweeps, 1e-8 measure agreement."""
    params, space, balance, at_tol = _structured_pair(100, 10, 0.5, 1e-9)
    plain, plain_seconds = at_tol[False]
    corrected, corrected_seconds = at_tol[True]
    ratio = plain.iterations / corrected.iterations
    print()
    print(
        f"K=100 ({space.size} states), rate 0.5: plain {plain.iterations} sweeps "
        f"({plain_seconds:.2f}s), corrected {corrected.iterations} sweeps "
        f"({corrected.coarse_corrections} correction(s), {corrected_seconds:.2f}s) "
        f"-> {ratio:.2f}x fewer sweeps"
    )
    assert corrected.coarse_corrections >= 1
    assert ratio >= 1.5

    # Agreement at the tolerance floor, 1e-8 precision per measure (relative
    # for the large-magnitude ones -- mean queue length at K=100 amplifies
    # distribution rounding by ~K x states).
    _, _, _, deep = _structured_pair(100, 10, 0.5, 1e-14)
    plain_measures = compute_measures(
        params, space, deep[False][0].distribution, balance
    ).as_dict()
    corrected_measures = compute_measures(
        params, space, deep[True][0].distribution, balance
    ).as_dict()
    for key, value in plain_measures.items():
        scale = max(1.0, abs(value))
        assert abs(corrected_measures[key] - value) <= 1e-8 * scale

    persist_timings(
        "coarse-correction-k100",
        {
            "states": space.size,
            "plain_sweeps": plain.iterations,
            "corrected_sweeps": corrected.iterations,
            "corrections": corrected.coarse_corrections,
            "plain_seconds": round(plain_seconds, 4),
            "corrected_seconds": round(corrected_seconds, 4),
            "sweep_ratio": round(ratio, 3),
        },
        wall_s=round(plain_seconds + corrected_seconds, 4),
    )


def test_coarse_correction_smoke():
    """CI smoke: a deep-buffer smoke-sized chain engages and improves."""
    _, space, _, outcomes = _structured_pair(60, 4, 0.5, 1e-9)
    plain, _ = outcomes[False]
    corrected, _ = outcomes[True]
    print()
    print(
        f"smoke K=60 ({space.size} states): plain {plain.iterations} sweeps, "
        f"corrected {corrected.iterations} sweeps "
        f"({corrected.coarse_corrections} correction(s))"
    )
    assert corrected.coarse_corrections >= 1
    assert corrected.iterations < plain.iterations


# ---------------------------------------------------------------------- #
# (b) Memoised segment propagators
# ---------------------------------------------------------------------- #
def test_propagator_replay_diurnal():
    """Re-solving diurnal-24h >= 2x faster via replay, bitwise-same series."""
    spec = scenario("diurnal-24h")
    params = spec.parameters(ExperimentScale.smoke()).with_arrival_rate(0.5)
    profile = spec.transient
    cache = PropagatorCache()

    start = time.perf_counter()
    cold = TransientModel(profile, params, propagator_cache=cache).solve()
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = TransientModel(profile, params, propagator_cache=cache).solve()
    warm_seconds = time.perf_counter() - start

    speedup = cold_seconds / warm_seconds
    print()
    print(
        f"diurnal-24h (smoke preset): cold {cold_seconds:.2f}s "
        f"({cold.matvecs} matvecs), memoised {warm_seconds:.3f}s "
        f"({warm.propagator_hits} replay(s), {warm.matvecs} matvecs) "
        f"-> {speedup:.1f}x faster"
    )
    assert warm.propagator_hits == profile.schedule.number_of_segments
    assert warm.matvecs == 0
    for metric in cold.points[0].values:
        assert warm.series(metric) == cold.series(metric)
    assert np.array_equal(warm.final_distribution, cold.final_distribution)
    assert speedup >= 2.0

    persist_timings(
        "propagator-replay-diurnal",
        {
            "segments": profile.schedule.number_of_segments,
            "cold_seconds": round(cold_seconds, 4),
            "replay_seconds": round(warm_seconds, 4),
            "cold_matvecs": cold.matvecs,
            "speedup": round(speedup, 2),
        },
        wall_s=round(cold_seconds + warm_seconds, 4),
    )


# ---------------------------------------------------------------------- #
# (c) Pipelined points x cells network scheduling
# ---------------------------------------------------------------------- #
def _sixteen_point_spec():
    rates = tuple(0.1 + 0.05 * index for index in range(16))
    return scenario("homogeneous-7").replace(arrival_rates=rates)


def test_pipelined_network_sweep_16pt():
    """16-point homogeneous-7: bitwise == serial, faster when cores allow.

    Both arms are timed twice, interleaved, and compared on their best runs
    (the convention of the other wall-clock benchmarks) so one load spike on
    a shared runner cannot decide the comparison.
    """
    scale = ExperimentScale.smoke()
    spec = _sixteen_point_spec()
    jobs = 2

    sequential_seconds, pipelined_seconds = [], []
    pipelined = None
    for _ in range(2):
        start = time.perf_counter()
        network_sweep_payloads(spec, scale, jobs=jobs)
        sequential_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        pipelined = network_sweep_payloads(spec, scale, jobs=jobs, pipelined=True)
        pipelined_seconds.append(time.perf_counter() - start)
    serial = network_sweep_payloads(spec, scale, jobs=1, pipelined=True)

    dispatched = sum(payload["pipelined_jobs"] for payload, _ in pipelined)
    cores = os.cpu_count() or 1
    print()
    print(
        f"16-point homogeneous-7 (smoke preset, jobs={jobs}, {cores} core(s)): "
        f"per-point {min(sequential_seconds):.2f}s, "
        f"pipelined {min(pipelined_seconds):.2f}s "
        f"({dispatched} jobs through the shared pool)"
    )
    assert [payload for payload, _ in pipelined] == [
        payload for payload, _ in serial
    ]
    assert dispatched >= 16 * 7 * 2  # every point, every cell, >= 2 iterations
    if cores >= 2:
        # On one core both schedules execute the same work sequentially, so
        # the pipeline's barrier-filling cannot show up on wall clock.
        assert min(pipelined_seconds) < min(sequential_seconds)

    persist_timings(
        "pipelined-network-16pt",
        {
            "points": 16,
            "cells": 7,
            "jobs": jobs,
            "cores": cores,
            "sequential_seconds": round(min(sequential_seconds), 4),
            "pipelined_seconds": round(min(pipelined_seconds), 4),
            "dispatched_jobs": dispatched,
        },
        wall_s=round(min(sequential_seconds) + min(pipelined_seconds), 4),
    )


def test_pipelined_smoke():
    """CI smoke: a small pipelined sweep is bitwise independent of jobs."""
    from repro.network import hexagonal_cluster

    scale = ExperimentScale.smoke()
    spec = scenario("homogeneous-7").replace(
        network=hexagonal_cluster(3), arrival_rates=(0.2, 0.4, 0.6, 0.8)
    )
    serial = network_sweep_payloads(spec, scale, pipelined=True, jobs=1)
    parallel = network_sweep_payloads(spec, scale, pipelined=True, jobs=2)
    print()
    print(
        f"4-point 3-cell pipelined smoke: "
        f"{sum(p['pipelined_jobs'] for p, _ in serial)} jobs, bitwise jobs=1 == jobs=2"
    )
    assert [payload for payload, _ in serial] == [payload for payload, _ in parallel]
