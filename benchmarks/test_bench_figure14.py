"""Figure 14: influence of GPRS on the GSM voice service (95% GSM calls).

Paper shape to reproduce: reserving PDCHs reduces the carried voice traffic and
raises the voice blocking probability only marginally -- the penalty grows with
the number of reserved channels but stays small compared to the GPRS benefit.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure14


def test_figure14_voice_service_impact(benchmark, bench_scale):
    result = run_once(benchmark, figure14, bench_scale)
    report(result)

    blocking = {
        label: np.array(result.get(label).metric("voice_blocking_probability"))
        for label in result.labels()
    }
    voice = {
        label: np.array(result.get(label).metric("carried_voice_traffic"))
        for label in result.labels()
    }

    # Reserving more PDCHs cannot decrease voice blocking and cannot increase
    # the carried voice traffic (fewer channels remain for voice).
    assert np.all(blocking["4 reserved PDCH"] >= blocking["0 reserved PDCH"] - 1e-12)
    assert np.all(blocking["2 reserved PDCH"] >= blocking["1 reserved PDCH"] - 1e-12)
    assert np.all(voice["4 reserved PDCH"] <= voice["0 reserved PDCH"] + 1e-9)

    # The penalty is modest: at the highest load the blocking increase from
    # reserving four PDCHs stays within a factor of ~2.5 of the unreserved case
    # (the paper calls it negligible compared to the GPRS benefit).
    reference = max(blocking["0 reserved PDCH"][-1], 1e-6)
    assert blocking["4 reserved PDCH"][-1] <= 3.5 * reference
    # Voice traffic itself keeps growing with the call arrival rate.
    assert voice["1 reserved PDCH"][-1] > voice["1 reserved PDCH"][0]
