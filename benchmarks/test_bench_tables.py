"""Benchmarks for Tables 2 and 3: regenerate the parameter tables and check them.

These are cheap, but they pin the configuration every other benchmark builds
on: if a hard-wired constant drifts from the paper, the assertions here fail
before any expensive sweep runs.
"""

from __future__ import annotations

import pytest

from _helpers import run_once
from repro.experiments.reporting import format_table
from repro.experiments.tables import table2, table3


def test_table2_base_parameters(benchmark):
    rows = run_once(benchmark, table2)
    print()
    print(format_table("Table 2: base parameter setting", rows))
    assert rows["Number of physical channels, N"] == 20
    assert rows["Number of fixed PDCHs, N_GPRS"] == 1
    assert rows["BSC buffer size, K [data packets]"] == 100
    assert rows["Transfer rate for one PDCH (CS-2) [kbit/s]"] == pytest.approx(13.4)
    assert rows["Average GSM voice call duration, 1/mu_GSM [s]"] == 120
    assert rows["Average GSM voice call dwell time, 1/mu_h,GSM [s]"] == 60
    assert rows["Average GPRS session dwell time, 1/mu_h,GPRS [s]"] == 120
    assert rows["Percentage of GSM users"] == 95
    assert rows["Percentage of GPRS users"] == 5


def test_table3_traffic_models(benchmark):
    rows = run_once(benchmark, table3)
    for name, table_rows in rows.items():
        print()
        print(format_table(f"Table 3: {name}", table_rows))
    assert rows["traffic model 1"]["Average GPRS session duration, 1/mu_GPRS [s]"] == (
        pytest.approx(2122.5)
    )
    assert rows["traffic model 2"]["Average GPRS session duration, 1/mu_GPRS [s]"] == (
        pytest.approx(2075.6, abs=0.05)
    )
    assert rows["traffic model 3"]["Average GPRS session duration, 1/mu_GPRS [s]"] == (
        pytest.approx(312.5)
    )
    assert rows["traffic model 1"]["Average arrival rate of data packets [kbit/s]"] == (
        pytest.approx(7.68)
    )
    assert rows["traffic model 2"]["Average arrival rate of data packets [kbit/s]"] == (
        pytest.approx(30.72)
    )
    assert rows["traffic model 1"]["Maximum number of active GPRS sessions, M"] == 50
    assert rows["traffic model 3"]["Maximum number of active GPRS sessions, M"] == 20
