"""Figure 9: queueing delay for traffic models 1 and 2, 1/2/4 reserved PDCHs.

Paper shape to reproduce: reserving more PDCHs shortens the queueing delay,
and the burstier 32 kbit/s model sees longer delays than the 8 kbit/s model.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure9


def test_figure9_queueing_delay(benchmark, bench_scale):
    result = run_once(benchmark, figure9, bench_scale)
    report(result)

    def delay(model_number: int, pdch: int) -> np.ndarray:
        label = f"traffic model {model_number}, {pdch} reserved PDCH"
        return np.array(result.get(label).metric("queueing_delay"))

    for model_number in (1, 2):
        assert np.all(delay(model_number, 4) <= delay(model_number, 1) + 1e-9)
        assert np.all(delay(model_number, 2) <= delay(model_number, 1) + 1e-9)
        # Delays are positive and bounded by a few seconds at these loads.
        assert np.all(delay(model_number, 1) >= 0.0)

    # Traffic model 2 (burstier) waits at least as long as model 1.
    assert delay(2, 1)[-1] >= delay(1, 1)[-1]
