"""Ablation benches for admission-control extensions (guard channels, finite sources).

Beyond-the-paper experiments: handover prioritisation through guard channels
and the finite-population (Engset) correction of the Erlang-loss model the
paper uses for both user classes.
"""

from __future__ import annotations

from repro.core.parameters import GprsModelParameters
from repro.experiments.extensions import guard_channel_tradeoff
from repro.queueing.engset import EngsetSystem
from repro.queueing.erlang import ErlangLossSystem
from repro.traffic.presets import TRAFFIC_MODEL_3


def test_ablation_guard_channels(benchmark, bench_scale):
    """Guard channels trade new-call blocking for handover protection."""
    parameters = GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.5,
        buffer_size=bench_scale.effective_buffer_size(100),
        max_gprs_sessions=bench_scale.effective_max_sessions(20),
    )

    def run():
        return guard_channel_tradeoff(parameters, (0, 1, 2, 3, 4))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nguard channels: (new-call blocking, handover failure)")
    for row in rows:
        print(f"  g={row.guard_channels}: blocking {row.new_call_blocking:.5f}, "
              f"handover failure {row.handover_failure:.6f}")
    failures = [row.handover_failure for row in rows]
    blockings = [row.new_call_blocking for row in rows]
    assert failures == sorted(failures, reverse=True)
    assert blockings == sorted(blockings)
    # Four guard channels cut the handover failure probability substantially.
    assert failures[-1] < 0.5 * failures[0]


def test_ablation_finite_population(benchmark):
    """The Poisson (Erlang) assumption overestimates blocking for small populations."""

    def run():
        servers = 10
        service_rate = 1.0 / 120.0
        per_source_rate = 0.001
        results = []
        for sources in (12, 20, 50, 200, 1000):
            engset = EngsetSystem(
                sources=sources,
                request_rate=per_source_rate,
                service_rate=service_rate,
                servers=servers,
            )
            erlang = ErlangLossSystem(
                arrival_rate=sources * per_source_rate,
                service_rate=service_rate,
                servers=servers,
            )
            results.append((sources, engset.call_congestion(), erlang.blocking_probability()))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nfinite population vs Poisson blocking (10 channels):")
    for sources, engset_blocking, erlang_blocking in results:
        print(f"  N={sources:5d}: Engset {engset_blocking:.6f}  Erlang-B {erlang_blocking:.6f}")
    # The finite-source model always blocks less, and converges to Erlang-B.
    assert all(engset <= erlang + 1e-12 for _, engset, erlang in results)
    largest = results[-1]
    assert abs(largest[1] - largest[2]) / max(largest[2], 1e-12) < 0.1
