"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os
from pathlib import Path

from repro import obs
from repro.experiments.reporting import format_figure_result, format_scenario_result
from repro.experiments.scale import ExperimentScale
from repro.runtime import run_sweep, scenario

__all__ = [
    "run_once",
    "report",
    "run_scenario_once",
    "report_scenario",
    "persist_timings",
]

#: Environment override for where :func:`persist_timings` accumulates records.
BENCH_FILE_ENV = "GPRS_REPRO_BENCH_FILE"
#: Default timing ledger, next to the benchmark modules.  Records are the
#: same schema-versioned JSONL format the CLI's ``--ledger`` emits, so
#: benchmark telemetry and production telemetry share one format (and one
#: ``gprs-repro report`` / :func:`repro.obs.compare` toolchain).
BENCH_FILE = Path(__file__).with_name("BENCH_repetition.jsonl")


def persist_timings(name: str, record: dict, *, wall_s: float = 0.0) -> Path | None:
    """Append one run-ledger record for benchmark ``name``.

    ``record``'s integer values become ledger counters and its float values
    ledger gauges, so two records of the same benchmark diff through
    :func:`repro.obs.compare` exactly like two production runs; the raw
    record is also kept verbatim under ``args``.  When the ledger already
    holds an earlier record of this benchmark, the delta against the latest
    one is printed (visible with ``pytest -s`` and in CI logs) -- repeated
    runs accumulate a perf trajectory with built-in regression diffs.

    Persistence is best effort: an unwritable ledger (read-only checkout,
    sandboxed CI) returns ``None`` and never fails the benchmark that
    produced the numbers.  Override the path with the
    ``GPRS_REPRO_BENCH_FILE`` environment variable.

    Every record carries the process's cumulative resilience counters
    (retries, timeouts, pool respawns, degradation to serial) in its
    ``resilience`` block: a benchmark run that silently degraded to
    in-process execution times something other than the parallel path it
    claims to, so the record keeps the evidence a perf comparison needs to
    disqualify itself.  The ``store`` block does the same for the artifact
    store: a benchmark that unknowingly replayed warm store entries times
    the replay path, not the solve it claims to measure.
    """
    path = Path(os.environ.get(BENCH_FILE_ENV) or BENCH_FILE)
    counters = {
        key: value
        for key, value in record.items()
        if isinstance(value, int) and not isinstance(value, bool)
    }
    gauges = {
        key: float(value) for key, value in record.items() if isinstance(value, float)
    }
    totals = obs.current_registry().snapshot().get("counters", {})
    resilience = obs.resilience_block({"counters": totals})
    store = obs.store_block({"counters": totals})
    entry = obs.make_record(
        command="benchmark",
        target=name,
        args=dict(record),
        wall_s=wall_s,
        metrics={"counters": counters, "gauges": gauges, "histograms": {}},
        resilience=resilience,
        store=store,
    )
    previous = None
    try:
        if path.exists():
            candidates = [
                existing
                for existing in obs.read_ledger(str(path))
                if existing.get("target") == name
            ]
            previous = candidates[-1] if candidates else None
    except (OSError, ValueError):
        previous = None
    try:
        obs.append_record(str(path), entry)
    except OSError:
        return None
    if previous is not None:
        print()
        print(f"[{name}] vs previous run:")
        print(obs.render_compare(obs.compare(previous, entry)))
    return path


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The figure sweeps are deterministic and expensive (dozens of CTMC
    solutions), so repeating them for statistical timing would only slow the
    suite down without adding information.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(result) -> None:
    """Print the regenerated figure data (visible with ``pytest -s`` and in CI logs)."""
    print()
    print(format_figure_result(result))


def run_scenario_once(benchmark, name: str, scale: ExperimentScale | None = None,
                      *, jobs: int = 1):
    """Run one registered runtime scenario exactly once under benchmark timing.

    The cache is disabled so the benchmark always measures real solver work;
    cache behaviour itself is benchmarked separately (see
    ``test_bench_runtime.py``).
    """
    spec = scenario(name)
    return benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs={"scale": scale, "jobs": jobs, "cache": None},
        rounds=1,
        iterations=1,
    )


def report_scenario(result) -> None:
    """Print a scenario sweep result (visible with ``pytest -s`` and in CI logs)."""
    print()
    print(format_scenario_result(result))
