"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from repro.experiments.reporting import format_figure_result

__all__ = ["run_once", "report"]


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The figure sweeps are deterministic and expensive (dozens of CTMC
    solutions), so repeating them for statistical timing would only slow the
    suite down without adding information.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(result) -> None:
    """Print the regenerated figure data (visible with ``pytest -s`` and in CI logs)."""
    print()
    print(format_figure_result(result))
