"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from repro.experiments.reporting import format_figure_result, format_scenario_result
from repro.experiments.scale import ExperimentScale
from repro.runtime import run_sweep, scenario

__all__ = ["run_once", "report", "run_scenario_once", "report_scenario"]


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The figure sweeps are deterministic and expensive (dozens of CTMC
    solutions), so repeating them for statistical timing would only slow the
    suite down without adding information.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(result) -> None:
    """Print the regenerated figure data (visible with ``pytest -s`` and in CI logs)."""
    print()
    print(format_figure_result(result))


def run_scenario_once(benchmark, name: str, scale: ExperimentScale | None = None,
                      *, jobs: int = 1):
    """Run one registered runtime scenario exactly once under benchmark timing.

    The cache is disabled so the benchmark always measures real solver work;
    cache behaviour itself is benchmarked separately (see
    ``test_bench_runtime.py``).
    """
    spec = scenario(name)
    return benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs={"scale": scale, "jobs": jobs, "cache": None},
        rounds=1,
        iterations=1,
    )


def report_scenario(result) -> None:
    """Print a scenario sweep result (visible with ``pytest -s`` and in CI logs)."""
    print()
    print(format_scenario_result(result))
