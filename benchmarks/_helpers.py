"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.reporting import format_figure_result, format_scenario_result
from repro.experiments.scale import ExperimentScale
from repro.runtime import run_sweep, scenario

__all__ = [
    "run_once",
    "report",
    "run_scenario_once",
    "report_scenario",
    "persist_timings",
]

#: Environment override for where :func:`persist_timings` accumulates records.
BENCH_FILE_ENV = "GPRS_REPRO_BENCH_FILE"
#: Default timing ledger, next to the benchmark modules.
BENCH_FILE = Path(__file__).with_name("BENCH_repetition.json")


def persist_timings(name: str, record: dict) -> Path | None:
    """Append one timing record under ``name`` to the benchmark ledger.

    The ledger (``benchmarks/BENCH_repetition.json``, override with the
    ``GPRS_REPRO_BENCH_FILE`` environment variable) maps benchmark names to
    lists of timestamped records, so repeated runs accumulate a perf
    trajectory instead of overwriting each other.  Persistence is best
    effort: an unwritable ledger (read-only checkout, sandboxed CI) returns
    ``None`` and never fails the benchmark that produced the numbers.
    """
    path = Path(os.environ.get(BENCH_FILE_ENV) or BENCH_FILE)
    try:
        ledger = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(ledger, dict):
            ledger = {}
    except (OSError, ValueError):
        ledger = {}
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())}
    entry.update(record)
    ledger.setdefault(name, []).append(entry)
    try:
        temporary = path.with_suffix(".tmp")
        temporary.write_text(
            json.dumps(ledger, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(temporary, path)
    except OSError:
        return None
    return path


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The figure sweeps are deterministic and expensive (dozens of CTMC
    solutions), so repeating them for statistical timing would only slow the
    suite down without adding information.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(result) -> None:
    """Print the regenerated figure data (visible with ``pytest -s`` and in CI logs)."""
    print()
    print(format_figure_result(result))


def run_scenario_once(benchmark, name: str, scale: ExperimentScale | None = None,
                      *, jobs: int = 1):
    """Run one registered runtime scenario exactly once under benchmark timing.

    The cache is disabled so the benchmark always measures real solver work;
    cache behaviour itself is benchmarked separately (see
    ``test_bench_runtime.py``).
    """
    spec = scenario(name)
    return benchmark.pedantic(
        run_sweep,
        args=(spec,),
        kwargs={"scale": scale, "jobs": jobs, "cache": None},
        rounds=1,
        iterations=1,
    )


def report_scenario(result) -> None:
    """Print a scenario sweep result (visible with ``pytest -s`` and in CI logs)."""
    print()
    print(format_scenario_result(result))
