"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the *scaled*
experiment preset (see :class:`repro.experiments.scale.ExperimentScale`), checks
the qualitative shape the paper reports, and prints the regenerated series so
the run output doubles as the reproduction record (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.experiments.scale import ExperimentScale

# Make the sibling _helpers module importable regardless of how pytest was invoked.
sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Scaled-down configuration used by all analytical-figure benchmarks."""
    return ExperimentScale.default()


@pytest.fixture(scope="session")
def validation_scale() -> ExperimentScale:
    """Smaller configuration for the two figures that also run the simulator."""
    return ExperimentScale.default().replace(
        arrival_rates=(0.2, 0.6, 1.0),
        simulation_time_s=1500.0,
        simulation_warmup_s=150.0,
        simulation_batches=4,
        simulation_cells=5,
    )
