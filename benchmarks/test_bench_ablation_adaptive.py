"""Ablation bench for the adaptive PDCH allocation (the paper's future work).

Compares the model-driven adaptive reservation against fixed reservations over
a busy-hour load profile: the adaptive policy should match the throughput of
the best static reservation while holding fewer PDCHs on average.
"""

from __future__ import annotations

from repro.core.parameters import GprsModelParameters
from repro.experiments.dimensioning import QosProfile
from repro.experiments.extensions import adaptive_policy_comparison
from repro.traffic.presets import TRAFFIC_MODEL_3


def test_ablation_adaptive_allocation(benchmark, bench_scale):
    parameters = GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.5,
        buffer_size=bench_scale.effective_buffer_size(100),
        max_gprs_sessions=bench_scale.effective_max_sessions(20),
        gprs_fraction=0.05,
    )

    def run():
        return adaptive_policy_comparison(
            parameters,
            load_trajectory=(0.1, 0.4, 0.8, 1.0, 0.6, 0.2),
            static_reservations=(1, 2, 4),
            profile=QosProfile(max_throughput_degradation=0.5),
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    adaptive = comparison.adaptive_evaluation
    print("\nadaptive vs static PDCH reservation over the load profile "
          f"{comparison.trajectory}:")
    for reserved, evaluation in sorted(comparison.static_evaluations.items()):
        print(f"  static {reserved} PDCH: throughput/user "
              f"{evaluation.mean_throughput_per_user_kbit_s():.3f} kbit/s, "
              f"mean reserved {evaluation.mean_reserved_pdch():.2f}")
    print(f"  adaptive:       throughput/user "
          f"{adaptive.mean_throughput_per_user_kbit_s():.3f} kbit/s, "
          f"mean reserved {adaptive.mean_reserved_pdch():.2f}, "
          f"reallocations {adaptive.reallocations}")

    best_static = comparison.static_evaluations[comparison.best_static_reservation()]
    # Within 10% of the best static policy's throughput...
    assert comparison.adaptive_matches_best_static_throughput(tolerance=0.10)
    # ... while not reserving more PDCHs than that policy on average.
    assert adaptive.mean_reserved_pdch() <= best_static.mean_reserved_pdch() + 1e-9
    # The adaptive policy actually adapts (the load profile spans light and heavy load).
    assert adaptive.reallocations >= 1
