"""Figure 10: carried data traffic and GPRS session blocking for different limits M.

Paper shape to reproduce: raising the admission limit M removes GPRS session
blocking (below 1e-5 for the largest M) while the carried data traffic stays
below roughly two PDCHs, i.e. reserving two PDCHs satisfies essentially all
session requests up to one call per second.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure10


def test_figure10_session_limit(benchmark, bench_scale):
    result = run_once(benchmark, figure10, bench_scale, session_limits=(50, 100, 150))
    report(result)

    series = list(result.series)
    blocking = [np.array(entry.metric("gprs_blocking_probability")) for entry in series]
    carried = [np.array(entry.metric("carried_data_traffic")) for entry in series]

    # Larger session limits block fewer session requests at the highest load.
    assert blocking[1][-1] <= blocking[0][-1] + 1e-12
    assert blocking[2][-1] <= blocking[1][-1] + 1e-12
    # With the largest limit the blocking is negligible at low load and at
    # least halved at the highest load compared to the smallest limit (the
    # paper's full-size M = 150 drives it below 1e-5; the scaled preset keeps
    # the ordering and the collapse at low load).
    assert blocking[2][0] < 1e-3
    assert blocking[2][-1] < 0.5 * blocking[0][-1]
    # The smallest limit shows clearly visible blocking at high load.
    assert blocking[0][-1] > 1e-3
    # The carried data traffic saturates at a small number of PDCHs
    # (the paper's observation that two reserved PDCHs are enough).
    for curve in carried:
        assert np.all(curve < 4.0)
