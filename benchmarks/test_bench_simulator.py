"""Benchmark of the discrete-event simulator itself.

Not a paper figure, but the cost driver behind the validation experiments: the
bench measures the event throughput of the seven-cell simulation at the base
load and asserts the run produces statistically meaningful output (every
metric has a finite confidence interval).
"""

from __future__ import annotations

import math

from repro.core.parameters import GprsModelParameters
from repro.simulator.config import SimulationConfig
from repro.simulator.simulation import GprsNetworkSimulator
from repro.traffic.presets import TRAFFIC_MODEL_3


def test_simulator_event_throughput(benchmark):
    params = GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.5,
        buffer_size=20,
        max_gprs_sessions=10,
    )
    config = SimulationConfig(
        cell_parameters=params,
        number_of_cells=7,
        simulation_time_s=2000.0,
        warmup_time_s=200.0,
        batches=5,
        seed=20020527,
    )

    def run():
        return GprsNetworkSimulator(config).run()

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nevents processed: {results.events_processed}")
    assert results.events_processed > 10_000
    for metric in results.available_metrics():
        interval = results.interval(metric)
        assert math.isfinite(interval.mean)
        assert math.isfinite(interval.half_width)
