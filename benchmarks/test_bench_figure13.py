"""Figure 13: CDT and throughput per user for 10% GPRS users, 0/1/2/4 reserved PDCHs.

Paper shape to reproduce: the heaviest GPRS share carries the most data at low
load, the per-user throughput degrades fastest, and with no reserved PDCH the
throughput approaches zero under load while four reserved PDCHs keep it clearly
above zero.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure12, figure13


def test_figure13_ten_percent_gprs_users(benchmark, bench_scale):
    result = run_once(benchmark, figure13, bench_scale)
    report(result)

    throughput = {
        label: np.array(result.get(label).metric("throughput_per_user_kbit_s"))
        for label in result.labels()
    }
    carried = {
        label: np.array(result.get(label).metric("carried_data_traffic"))
        for label in result.labels()
    }

    # With no reserved PDCH the per-user throughput collapses under load ...
    zero = throughput["0 reserved PDCH"]
    four = throughput["4 reserved PDCH"]
    assert zero[-1] < 0.35 * zero[0]
    # ... while four reserved PDCHs retain a clearly higher share of it.
    assert four[-1] > 2.0 * zero[-1]

    # 10% GPRS users carry more data at low load than 5% GPRS users.
    five_percent = figure12(bench_scale)
    cdt_5 = np.array(five_percent.get("1 reserved PDCH").metric("carried_data_traffic"))
    cdt_10 = carried["1 reserved PDCH"]
    assert cdt_10[0] > cdt_5[0]
