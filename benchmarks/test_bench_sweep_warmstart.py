"""Benchmarks of sweep-aware incremental solving (warm vs. cold sweeps).

Three demonstrations, all on the figure 12 scenario:

* ``test_warm_sweep_speedup`` -- a paper-scale arrival-rate sweep (default
  preset sizes, 32-point figure grid) runs at least 2x faster warm than cold
  at the pipeline's default solver settings.  ``cold`` is exactly what
  ``--cold`` gives: independent per-point solves with fresh enumeration,
  paper-seeded handover balancing and a cold solver start.
* ``test_warm_matches_cold_when_converged`` -- with both paths converged to
  the solver's floor, warm-started measures agree with cold ones to 1e-8.
* ``test_warm_smoke_fewer_iterations`` -- the CI smoke check: on a small
  sweep the warm path spends strictly fewer solver iterations than the cold
  path (and agrees with it).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.model import GprsMarkovModel
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import sweep_arrival_rates
from repro.runtime import run_sweep, scenario

#: Dense figure grid: the x axis of the paper's figures sampled finely enough
#: to draw the curves, at the default-preset state-space sizes.
SWEEP_RATES = tuple(np.round(np.linspace(0.1, 1.0, 32), 6))


def test_warm_sweep_speedup():
    """Warm-started sweep must beat the cold sweep by at least 2x.

    Both pipelines are timed twice, interleaved, and compared on their best
    runs, so a transient load spike on a shared CI runner cannot fail the
    assertion by hitting only one side.
    """
    scale = ExperimentScale.default()
    spec = scenario("figure12").replace(arrival_rates=SWEEP_RATES)

    cold_seconds, warm_seconds = [], []
    cold = warm = None
    for _ in range(2):
        start = time.perf_counter()
        cold = run_sweep(spec, scale, cache=None, warm=False)
        cold_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm = run_sweep(
            spec, scale, cache=None, warm=True, chunk_size=len(SWEEP_RATES)
        )
        warm_seconds.append(time.perf_counter() - start)

    speedup = min(cold_seconds) / min(warm_seconds)
    print()
    print(
        f"figure12 sweep, {len(SWEEP_RATES)} points, default preset: "
        f"cold {min(cold_seconds):.2f}s, warm {min(warm_seconds):.2f}s, "
        f"speedup {speedup:.2f}x"
    )
    assert len(warm.points) == len(cold.points) == len(SWEEP_RATES)
    # Warm results track cold ones at the default solver tolerance.
    for cold_point, warm_point in zip(cold.points, warm.points):
        assert warm_point.values["packet_loss_probability"] == pytest.approx(
            cold_point.values["packet_loss_probability"], abs=1e-3
        )
    assert speedup >= 2.0


def test_warm_matches_cold_when_converged(benchmark):
    """Converged to the solver floor, warm and cold agree within 1e-8."""
    scale = ExperimentScale.default()
    spec = scenario("figure12")
    params = spec.parameters(scale)
    rates = tuple(np.round(np.linspace(0.1, 1.0, 8), 6))

    cold = sweep_arrival_rates(params, rates, solver_tol=1e-14, warm=False)
    warm = benchmark.pedantic(
        sweep_arrival_rates,
        args=(params, rates),
        kwargs={"solver_tol": 1e-14, "warm": True, "chunk_size": len(rates)},
        rounds=1,
        iterations=1,
    )
    worst = max(
        abs(cold_m.as_dict()[key] - warm_m.as_dict()[key])
        for cold_m, warm_m in zip(cold.measures, warm.measures)
        for key in cold_m.as_dict()
    )
    print()
    print(f"figure12 converged sweep, {len(rates)} points: worst |warm - cold| = {worst:.2e}")
    assert worst < 1e-8


def test_warm_smoke_fewer_iterations():
    """CI smoke: a warm-started solve does strictly fewer solver iterations."""
    params = scenario("figure12").parameters(ExperimentScale.smoke())
    previous = GprsMarkovModel(
        params.with_arrival_rate(0.5), solver_method="structured"
    ).solve()
    cold = GprsMarkovModel(
        params.with_arrival_rate(0.6), solver_method="structured"
    ).solve()
    warm = GprsMarkovModel(
        params.with_arrival_rate(0.6),
        solver_method="structured",
        initial_distribution=previous.steady_state.distribution,
        initial_handover_rates=previous.handover,
    ).solve()
    print()
    print(
        f"smoke sweep step: cold {cold.steady_state.iterations} sweeps, "
        f"warm {warm.steady_state.iterations} sweeps"
    )
    assert warm.steady_state.iterations < cold.steady_state.iterations
    assert warm.measures.packet_loss_probability == pytest.approx(
        cold.measures.packet_loss_probability, abs=1e-6
    )
