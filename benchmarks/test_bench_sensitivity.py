"""Sensitivity benches: how robust are the paper's conclusions to its fixed parameters.

These regenerate the sensitivity sweeps of :mod:`repro.experiments.sensitivity`
at the scaled preset and assert the qualitative direction of every effect.
"""

from __future__ import annotations

from repro.core.parameters import GprsModelParameters
from repro.experiments.sensitivity import (
    sweep_buffer_size,
    sweep_coding_scheme,
    sweep_tcp_threshold,
)
from repro.traffic.presets import TRAFFIC_MODEL_3
from repro.validation.shapes import is_monotone


def _parameters(scale) -> GprsModelParameters:
    return GprsModelParameters.from_traffic_model(
        TRAFFIC_MODEL_3,
        total_call_arrival_rate=0.8,
        buffer_size=scale.effective_buffer_size(100),
        max_gprs_sessions=scale.effective_max_sessions(20),
    )


def test_sensitivity_tcp_threshold(benchmark, bench_scale):
    """Loss probability grows as the flow-control threshold is relaxed towards eta = 1."""
    parameters = _parameters(bench_scale)

    def run():
        return sweep_tcp_threshold(parameters, (0.3, 0.5, 0.7, 0.9, 1.0))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    losses = result.series("packet_loss_probability")
    print("\npacket loss vs eta (0.3..1.0): " + ", ".join(f"{value:.4f}" for value in losses))
    assert losses[-1] == max(losses)
    assert losses[-1] > losses[0]


def test_sensitivity_buffer_size(benchmark, bench_scale):
    """A larger BSC buffer trades packet loss for queueing delay."""
    parameters = _parameters(bench_scale)

    def run():
        return sweep_buffer_size(parameters, (5, 10, 20, 40))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    losses = result.series("packet_loss_probability")
    delays = result.series("queueing_delay")
    print("\nbuffer size (5, 10, 20, 40):")
    print("  loss:  " + ", ".join(f"{value:.4f}" for value in losses))
    print("  delay: " + ", ".join(f"{value:.3f}" for value in delays))
    assert is_monotone(losses, increasing=False, tolerance=1e-9)
    assert is_monotone(delays, tolerance=1e-9)


def test_sensitivity_coding_scheme(benchmark, bench_scale):
    """Faster coding schemes raise the per-user throughput on an error-free link."""
    parameters = _parameters(bench_scale)

    def run():
        return sweep_coding_scheme(parameters, ("CS-1", "CS-2", "CS-3", "CS-4"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    throughput = result.series("throughput_per_user_kbit_s")
    print("\nthroughput/user by coding scheme (CS-1..CS-4): "
          + ", ".join(f"{value:.3f}" for value in throughput))
    assert is_monotone(throughput, tolerance=1e-9)
    assert throughput[-1] > throughput[0]
