"""Figure 12: CDT and throughput per user for 5% GPRS users, 0/1/2/4 reserved PDCHs.

Paper shape to reproduce: same qualitative behaviour as figure 11 but with
more data traffic overall; the 50%-degradation QoS profile is lost at a lower
call arrival rate than with 2% GPRS users (the crossover moves left).
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure11, figure12


def _supported_rate(series, rates, degradation=0.5):
    """Largest rate at which the per-user throughput is above (1-degradation) of no-load."""
    reference = series[0]
    supported = rates[0]
    for rate, value in zip(rates, series):
        if value >= (1 - degradation) * reference:
            supported = rate
        else:
            break
    return supported


def test_figure12_five_percent_gprs_users(benchmark, bench_scale):
    result = run_once(benchmark, figure12, bench_scale)
    report(result)
    rates = bench_scale.arrival_rates

    throughput = {
        label: np.array(result.get(label).metric("throughput_per_user_kbit_s"))
        for label in result.labels()
    }
    # Ordering by reservation level at the highest load.
    assert throughput["4 reserved PDCH"][-1] >= throughput["2 reserved PDCH"][-1] - 1e-9
    assert throughput["2 reserved PDCH"][-1] >= throughput["0 reserved PDCH"][-1] - 1e-9

    # The paper's QoS observation: with 5% GPRS users the 50%-degradation
    # profile is lost at a lower arrival rate than with 2% GPRS users
    # (for the same four reserved PDCHs).
    result_2pct = figure11(bench_scale)
    atu_2pct = np.array(result_2pct.get("4 reserved PDCH").metric(
        "throughput_per_user_kbit_s"))
    atu_5pct = throughput["4 reserved PDCH"]
    assert _supported_rate(atu_5pct, rates) <= _supported_rate(atu_2pct, rates) + 1e-9
