"""Figure 8: packet loss probability for traffic models 1 and 2, 1/2/4 reserved PDCHs.

Paper shape to reproduce: reserving more PDCHs lowers the loss probability,
and the burstier 32 kbit/s model (traffic model 2) suffers higher loss than
the 8 kbit/s model at the same reservation level.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure8


def test_figure8_packet_loss_probability(benchmark, bench_scale):
    result = run_once(benchmark, figure8, bench_scale)
    report(result)

    def loss(model_number: int, pdch: int) -> np.ndarray:
        label = f"traffic model {model_number}, {pdch} reserved PDCH"
        return np.array(result.get(label).metric("packet_loss_probability"))

    for model_number in (1, 2):
        # More reserved PDCHs never increase the loss probability.
        assert np.all(loss(model_number, 4) <= loss(model_number, 1) + 1e-9)
        assert np.all(loss(model_number, 2) <= loss(model_number, 1) + 1e-9)

    # The burstier traffic model 2 loses more packets than model 1 with one
    # reserved PDCH (compare the high-load end of the curves).
    assert loss(2, 1)[-1] >= loss(1, 1)[-1]
