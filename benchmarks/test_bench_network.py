"""Benchmarks of the multi-cell network layer (warm vs. cold outer iterations).

The network fixed point re-solves every cell once per outer iteration with
slowly drifting handover rates -- the ideal consumer of the warm-start
machinery.  Three demonstrations on the homogeneous seven-cell cluster:

* ``test_network_warm_outer_iterations_speedup`` -- at default-preset sizes
  (26k states per cell) the warm solve must beat the cold-per-iteration solve
  on wall clock and spend at most 75% of its inner solver iterations; the
  solver-call count (cells x outer iterations) is identical by construction.
* ``test_network_warm_matches_cold_when_converged`` -- warm and cold network
  solves agree on every per-cell measure to 1e-8.
* ``test_network_warm_smoke_fewer_iterations`` -- the CI smoke check: a
  3-cell smoke-preset solve spends strictly fewer inner iterations warm than
  cold and only its first outer iteration is cold.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.scale import ExperimentScale
from repro.network import NetworkModel, hexagonal_cluster
from repro.runtime import scenario


def _network_params(scale: ExperimentScale, rate: float = 0.5):
    return scenario("homogeneous-7").parameters(scale).with_arrival_rate(rate)


def test_network_warm_outer_iterations_speedup():
    """Warm outer iterations must beat cold-per-iteration solves.

    Both variants are timed twice, interleaved, and compared on their best
    runs so a load spike on a shared CI runner cannot fail the assertion by
    hitting only one side.
    """
    params = _network_params(ExperimentScale.default())
    topology = hexagonal_cluster(7)

    cold_seconds, warm_seconds = [], []
    cold = warm = None
    for _ in range(2):
        start = time.perf_counter()
        cold = NetworkModel(topology, params, solver_method="structured", warm=False).solve()
        cold_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm = NetworkModel(topology, params, solver_method="structured", warm=True).solve()
        warm_seconds.append(time.perf_counter() - start)

    speedup = min(cold_seconds) / min(warm_seconds)
    print()
    print(
        f"7-cell network, {params.state_space_size} states/cell, "
        f"{cold.outer_iterations} outer iteration(s), "
        f"{cold.solver_calls} solver calls: cold {min(cold_seconds):.2f}s "
        f"({cold.solver_iterations} inner iters), warm {min(warm_seconds):.2f}s "
        f"({warm.solver_iterations} inner iters), speedup {speedup:.2f}x"
    )
    assert cold.converged and warm.converged
    assert warm.solver_calls == cold.solver_calls
    assert cold.cold_solves == cold.solver_calls  # every cold solve is cold
    assert warm.cold_solves == 7  # only the first outer iteration
    assert warm.solver_iterations <= 0.75 * cold.solver_iterations
    assert speedup >= 1.3


def test_network_warm_matches_cold_when_converged():
    """Warm and cold network solves agree per cell to 1e-8."""
    params = _network_params(ExperimentScale.default())
    topology = hexagonal_cluster(7)
    cold = NetworkModel(topology, params, warm=False).solve()
    warm = NetworkModel(topology, params, warm=True).solve()
    worst = max(
        abs(cold_cell.measures.as_dict()[key] - warm_cell.measures.as_dict()[key])
        for cold_cell, warm_cell in zip(cold.cells, warm.cells)
        for key in cold_cell.measures.as_dict()
    )
    print()
    print(f"7-cell network, converged warm vs cold: worst |delta| = {worst:.2e}")
    assert worst < 1e-8


def test_network_warm_smoke_fewer_iterations():
    """CI smoke: a 3-cell smoke-preset solve benefits from warm outer iterations."""
    params = _network_params(ExperimentScale.smoke(), rate=0.6)
    topology = hexagonal_cluster(3)
    cold = NetworkModel(topology, params, solver_method="structured", warm=False).solve()
    warm = NetworkModel(topology, params, solver_method="structured", warm=True).solve()
    print()
    print(
        f"3-cell smoke solve: cold {cold.solver_iterations} inner iters, "
        f"warm {warm.solver_iterations} inner iters "
        f"({warm.cold_solves}/{warm.solver_calls} cold solves)"
    )
    assert cold.converged and warm.converged
    assert warm.cold_solves == 3
    assert warm.warm_solves == warm.solver_calls - 3
    assert warm.solver_iterations < cold.solver_iterations
    for cold_cell, warm_cell in zip(cold.cells, warm.cells):
        assert warm_cell.measures.packet_loss_probability == pytest.approx(
            cold_cell.measures.packet_loss_probability, abs=1e-8
        )
