"""Figure 6: validation of the Markov model against the detailed simulator.

Paper shape to reproduce: for every GPRS user share the carried data traffic
rises and then falls with increasing load (GSM priority squeezes the
on-demand PDCHs) and the throughput per user decreases monotonically; the
Markov-model curves track the simulation within (a small multiple of) its
confidence intervals.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure6


def test_figure6_model_vs_simulator(benchmark, validation_scale):
    result = run_once(
        benchmark,
        figure6,
        validation_scale,
        gprs_fractions=(0.05, 0.10),
        include_simulation=True,
    )
    report(result)

    for fraction in ("5%", "10%"):
        model = result.get(f"Markov model, {fraction} GPRS users")
        simulation = result.get(f"simulation, {fraction} GPRS users")
        model_atu = np.array(model.metric("throughput_per_user_kbit_s"))
        sim_atu = np.array(simulation.metric("throughput_per_user_kbit_s"))
        # Throughput per user degrades with load in both model and simulation.
        assert model_atu[-1] < model_atu[0]
        assert sim_atu[-1] < sim_atu[0]
        # Model and simulation agree on the order of magnitude at every point.
        ratio = model_atu / np.maximum(sim_atu, 1e-9)
        assert np.all(ratio > 0.4) and np.all(ratio < 2.5)

    # More GPRS users carry more data overall (at low load).
    cdt_5 = result.get("Markov model, 5% GPRS users").metric("carried_data_traffic")
    cdt_10 = result.get("Markov model, 10% GPRS users").metric("carried_data_traffic")
    assert cdt_10[0] > cdt_5[0]
