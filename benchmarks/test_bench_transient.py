"""Benchmarks of the transient layer (template reuse vs. cold rebuilds).

A schedule whose segments differ only in their arrival multipliers shares one
:class:`~repro.core.template.GeneratorTemplate`: the chain is enumerated once
and each segment only rewrites the three arrival scalars in the frozen CSR
``data`` array.  ``share_templates=False`` re-enumerates per segment -- the
cold A/B arm.  Because templates are bitwise-faithful, both arms produce the
identical trajectory, so the comparison is pure construction cost.

* ``test_transient_template_reuse_speedup`` -- at default-preset sizes
  (26k states) a many-segment schedule must be measurably faster with a
  shared template, and bitwise-identical to the cold arm.
* ``test_transient_template_reuse_smoke`` -- the CI smoke check: template
  accounting (one build, the rest rewrites), an early-stopped segment, and
  bitwise equality of the two arms at smoke size.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.scale import ExperimentScale
from repro.runtime import scenario
from repro.transient import (
    RateSchedule,
    ScheduleSegment,
    TransientModel,
    WorkloadProfile,
    flash_crowd,
)


def _many_segment_profile(segments: int) -> WorkloadProfile:
    """A staircase of distinct multipliers with near-zero propagation cost.

    Segment durations are tiny on purpose: the benchmark isolates generator
    *construction* (enumeration vs. data rewrite), which is what the shared
    template changes; propagation work is identical in both arms.
    """
    return WorkloadProfile(
        schedule=RateSchedule(
            name="staircase",
            segments=tuple(
                ScheduleSegment(
                    duration_s=0.01,
                    arrival_rate_multiplier=1.0 + 0.02 * index,
                )
                for index in range(segments)
            ),
        ),
        times=(0.01 * segments,),
        initial="empty",
    )


def test_transient_template_reuse_speedup():
    """Shared templates must beat per-segment cold rebuilds on wall clock.

    Both arms are timed twice, interleaved, and compared on their best runs
    so a load spike on a shared CI runner cannot fail the assertion by
    hitting only one side.  Propagator memoisation is disabled in both arms:
    the segments of the two arms are content-identical, so the shared cache
    would otherwise replay every propagation after the first run and the
    comparison would degenerate to construction cost alone (that reuse has
    its own benchmark in ``test_bench_repetition.py``).
    """
    params = scenario("figure12").parameters(
        ExperimentScale.default()
    ).with_arrival_rate(0.5)
    profile = _many_segment_profile(32)

    cold_seconds, warm_seconds = [], []
    cold = warm = None
    for _ in range(2):
        start = time.perf_counter()
        cold = TransientModel(
            profile, params, share_templates=False, memoise_propagators=False
        ).solve()
        cold_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm = TransientModel(profile, params, memoise_propagators=False).solve()
        warm_seconds.append(time.perf_counter() - start)

    speedup = min(cold_seconds) / min(warm_seconds)
    print()
    print(
        f"32-segment staircase, {params.state_space_size} states: "
        f"cold rebuilds {min(cold_seconds):.2f}s ({cold.templates_built} "
        f"enumerations), shared template {min(warm_seconds):.2f}s "
        f"({warm.templates_built} enumeration), speedup {speedup:.2f}x"
    )
    assert warm.templates_built == 1
    assert cold.templates_built == 32
    assert warm.matvecs == cold.matvecs
    assert np.array_equal(warm.final_distribution, cold.final_distribution)
    for metric in ("packet_loss_probability", "carried_data_traffic"):
        assert warm.series(metric) == cold.series(metric)
    assert speedup >= 1.5


def test_transient_template_reuse_smoke():
    """CI smoke: template accounting and bitwise warm == cold at smoke size."""
    params = scenario("flash-crowd").parameters(
        ExperimentScale.smoke()
    ).with_arrival_rate(0.4)
    profile = flash_crowd(
        spike_multiplier=2.5,
        lead_duration_s=5.0,
        spike_duration_s=5.0,
        recovery_duration_s=10.0,
        samples=4,
    )
    # Memoisation off for the same reason as the speedup benchmark above:
    # the smoke check is about template accounting and real matvec work.
    warm = TransientModel(profile, params, memoise_propagators=False).solve()
    cold = TransientModel(
        profile, params, share_templates=False, memoise_propagators=False
    ).solve()
    print()
    print(
        f"smoke flash crowd ({params.state_space_size} states): shared "
        f"{warm.templates_built} template for "
        f"{profile.schedule.number_of_segments} segments vs "
        f"{cold.templates_built} cold enumerations; {warm.matvecs} matvecs, "
        f"{warm.early_stopped_segments} early stop(s)"
    )
    assert warm.templates_built == 1
    assert cold.templates_built == profile.schedule.number_of_segments
    assert warm.early_stopped_segments >= 1
    assert np.array_equal(warm.final_distribution, cold.final_distribution)
    for metric in warm.points[0].values:
        assert warm.series(metric) == cold.series(metric)
