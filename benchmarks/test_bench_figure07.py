"""Figure 7: carried data traffic for traffic models 1 and 2, 1/2/4 reserved PDCHs.

Paper shape to reproduce: the carried data traffic is nearly independent of
the number of reserved PDCHs (the load is low enough to be carried either
way), and the 32 kbit/s model does not carry more traffic than four PDCHs can
ever provide.
"""

from __future__ import annotations

import numpy as np

from _helpers import report, run_once
from repro.experiments.figures import figure7


def test_figure7_carried_data_traffic(benchmark, bench_scale):
    result = run_once(benchmark, figure7, bench_scale)
    report(result)

    for model_number in (1, 2):
        curves = [
            np.array(result.get(
                f"traffic model {model_number}, {pdch} reserved PDCH"
            ).metric("carried_data_traffic"))
            for pdch in (1, 2, 4)
        ]
        # CDT is almost insensitive to the number of reserved PDCHs: the
        # largest pointwise spread between the three curves stays small
        # relative to the traffic carried.
        stacked = np.vstack(curves)
        spread = stacked.max(axis=0) - stacked.min(axis=0)
        assert np.all(spread <= 0.25 * np.maximum(stacked.max(axis=0), 0.2))
        # Carried data traffic increases with the offered load for these
        # low-load traffic models.
        for curve in curves:
            assert curve[-1] >= curve[0]
